"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_recovers_committed_data():
    quickstart = next(p for p in EXAMPLES if p.name == "quickstart.py")
    completed = subprocess.run(
        [sys.executable, str(quickstart)],
        capture_output=True, text=True, timeout=600,
    )
    assert "committed notes: 3" in completed.stdout
    assert "doomed note present: False" in completed.stdout
