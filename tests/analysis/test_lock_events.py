"""Lock/transaction lifecycle events in the trace ring: session-id
tagging, decodable lock words, report rendering, and the guarantee that
``tracing(False)`` keeps the metrics registry byte-identical."""

from repro.core import SystemConfig, open_engine
from repro.core.locking import decode_lock
from repro.obs import trace as ev
from repro.obs.report import render_report

_CONFIG = dict(
    npages=128, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)


def _run(tracing):
    engine = open_engine(SystemConfig(**_CONFIG), scheme="fast")
    engine.obs.tracing(tracing)
    with engine.session("alice") as session:
        with session.transaction() as txn:
            txn.insert(b"k1", b"v1")
            txn.insert(b"k2", b"v2")
        with session.transaction() as txn:
            txn.update(b"k1", b"v1b")
    return engine


def test_lock_events_carry_session_ids_and_decodable_words():
    engine = _run(tracing=True)
    trace = engine.obs.trace
    acquires = trace.events(kind=ev.LOCK_ACQUIRE)
    releases = trace.events(kind=ev.LOCK_RELEASE)
    assert acquires and releases
    sids = {event[3] for event in acquires}
    assert sids == {event[3] for event in releases}
    for event in acquires + releases:
        resource, mode = decode_lock(event[4])
        assert resource[0] in ("root", "page")
        assert mode in ("IS", "IX", "S", "X")


def test_txn_events_bracket_lock_activity():
    engine = _run(tracing=True)
    trace = engine.obs.trace
    begins = trace.events(kind=ev.TXN_BEGIN)
    commits = trace.events(kind=ev.TXN_COMMIT)
    assert len(begins) == len(commits) == 2
    # Strict 2PL: every lock is released by the time its transaction's
    # commit event lands.
    last_release = trace.events(kind=ev.LOCK_RELEASE)[-1][0]
    assert last_release < commits[-1][0]


def test_report_renders_lock_discipline_section(tmp_path):
    engine = _run(tracing=True)
    snapshot = engine.obs.export_json(str(tmp_path / "obs.json"))
    text = render_report(snapshot)
    assert "lock discipline:" in text
    assert "transactions: 2 begun, 2 committed, 0 aborted" in text
    assert "WARNING" not in text


def test_tracing_off_keeps_registry_byte_identical():
    traced = _run(tracing=True).obs.registry.snapshot()
    untraced = _run(tracing=False).obs.registry.snapshot()
    assert traced == untraced
