"""The DPOR schedule-space explorer: determinism, exhaustiveness,
reduction (strictly fewer schedules than naive DFS), the per-schedule
invariant + serializability oracle, seeded-bug detection, and the
schedule × crash-point product."""

import json

import pytest

from repro.analysis.corpus import mixed_explore_workloads, run_explored
from repro.analysis.explore import (
    DEFAULT_BUDGET, ExplorationError, Explorer, default_workloads, explore,
)
from repro.analysis.mutants import MUTANTS
from repro.core import SystemConfig


def test_default_locked_workload_explores_exhaustively():
    explorer = Explorer("fast")
    result = explorer.run()
    assert result["budget_exhausted"] is False
    assert result["schedules"] >= 1
    assert result["findings"] == []
    assert result["races"] == []
    assert explorer.stats["starved"] == 0


def test_exploration_is_deterministic_byte_identical_json():
    blobs = []
    for _ in range(2):
        result = explore("fast", budget=DEFAULT_BUDGET)
        blobs.append(json.dumps(result, sort_keys=True).encode())
    assert blobs[0] == blobs[1]


def _independent_reader_workloads():
    """Two locked clients, each one transaction of two searches over
    disjoint preloaded keys on well-separated leaves: every pair of
    steps is independent (S locks only), so DPOR needs exactly one
    schedule where naive DFS enumerates every interleaving."""
    payload = bytes(32)
    preload = [(b"r%03d" % i, payload) for i in range(0, 200, 10)]
    workloads = [
        [("txn", [("search", b"r000", None), ("search", b"r010", None)])],
        [("txn", [("search", b"r180", None), ("search", b"r190", None)])],
    ]
    return preload, workloads


def test_dpor_explores_strictly_fewer_schedules_than_naive():
    preload, workloads = _independent_reader_workloads()
    reduced = Explorer("fast", workloads=workloads, preload=preload)
    reduced_result = reduced.run()
    naive = Explorer("fast", workloads=workloads, preload=preload,
                     reduction=False)
    naive_result = naive.run()
    # 2 clients x 2 steps each: C(4, 2) = 6 naive interleavings.
    assert naive_result["schedules"] == 6
    assert reduced_result["schedules"] < naive_result["schedules"]
    assert reduced_result["schedules"] == 1
    # Reduction discards schedules, never findings.
    assert reduced_result["findings"] == naive_result["findings"] == []


def test_conflicting_workload_schedules_all_pass_oracle():
    # The default workload's shared hot key makes transactions
    # genuinely conflict; every explored schedule still has to satisfy
    # TC101-TC110 plus the commit-order serial-replay oracle.
    result = explore("fast", workloads=default_workloads(clients=2, ops=2))
    assert result["schedules"] >= 2
    assert result["findings"] == []


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_seeded_mutant_is_detected_within_default_budget(name):
    inject, expected_rule, workloads = MUTANTS[name]
    spec = workloads()
    with inject():
        result = explore(
            "fast", workloads=spec["workloads"],
            preload=spec.get("preload", ()),
            config=spec.get("config"),
        )
    fired = {line.split(": ")[1] for line in result["findings"]}
    assert expected_rule in fired, (
        "%s escaped exploration (findings: %r)" % (name, result["findings"])
    )


def test_mixed_isolation_workload_is_clean():
    result = explore("fast", workloads=mixed_explore_workloads(), budget=64)
    assert result["findings"] == []
    assert result["clients"] == 3


def test_crash_product_sweeps_distinct_schedules():
    explorer = Explorer("fast", budget=64, crash_schedules=2)
    result = explorer.run()
    assert explorer.stats["crash_points"] > 0
    assert result["findings"] == []


def test_group_commit_configs_are_rejected():
    config = SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512, group_commit=True,
    )
    with pytest.raises(ExplorationError, match="group_commit"):
        Explorer("fast", config=config)


def test_publish_files_schema_counters():
    from repro.obs.context import Observability
    from repro.pm.clock import SimClock

    explorer = Explorer("fast", budget=16)
    explorer.run()
    obs = Observability(SimClock())
    explorer.publish(obs)
    counters = obs.registry.counters()
    assert counters["explore.schedules"] == explorer.stats["schedules"]
    assert counters["explore.attempts"] == explorer.stats["attempts"]
    assert (obs.registry.gauge("explore.max_frontier").value
            == explorer.stats["max_frontier"])


def test_run_explored_is_clean_on_real_engine():
    findings, stats = run_explored(budget=32, crash_schedules=0)
    assert findings == []
    assert stats["runs"] == 2
    assert stats["schedules"] >= 2
