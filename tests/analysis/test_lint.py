"""Static rules PM001-PM006: exact output on known-bad fixtures, and a
zero-findings run over the real ``src/repro`` tree."""

import os

from repro.analysis.findings import (
    Finding, load_baseline, new_findings, save_baseline,
)
from repro.analysis.lint import lint_paths, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
SRC_REPRO = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro",
)


def _lint_fixture(name, module_layer="core"):
    with open(os.path.join(FIXTURES, name)) as fh:
        source = fh.read()
    return lint_source(source, file=name, module=module_layer + "/" + name)


def test_pm001_raw_store_outside_wrappers():
    assert [f.render() for f in _lint_fixture("pm001_raw_store.py")] == [
        "pm001_raw_store.py:5: PM001: raw PM store write_u64() outside "
        "the approved wrapper layers "
        "(pm/storage/wal/btree/htm/hashindex/testing)",
    ]


def test_pm001_silent_inside_wrapper_layers():
    with open(os.path.join(FIXTURES, "pm001_raw_store.py")) as fh:
        source = fh.read()
    findings = lint_source(
        source, file="pm001_raw_store.py",
        module="storage/pm001_raw_store.py",
    )
    assert findings == []


def test_pm002_store_without_flush_before_mark():
    assert [f.render() for f in _lint_fixture("pm002_unflushed_store.py")] == [
        "pm002_unflushed_store.py:7: PM002: PM store in commit() has no "
        "flush_range/clflush before the enclosing commit-mark emission",
    ]


def test_pm003_nondeterminism_sources():
    assert [f.render() for f in _lint_fixture("pm003_nondeterminism.py")] == [
        "pm003_nondeterminism.py:8: PM003: host wall-clock read "
        "time.time() in a simulation-path module (use the SimClock)",
        "pm003_nondeterminism.py:9: PM003: module-level random.random() "
        "(unseeded global PRNG); use a seeded random.Random(seed)",
        "pm003_nondeterminism.py:10: PM003: iteration directly over a "
        "set; order-sensitive code must sort (sorted(...)) for "
        "deterministic replay",
    ]


def test_pm003_exempts_cli_entry_points():
    source = "import time\n\n\ndef banner():\n    return time.time()\n"
    assert lint_source(
        source, file="__main__.py", module="bench/__main__.py",
    ) == []


def test_pm004_unregistered_metric_name():
    assert [
        f.render() for f in _lint_fixture("pm004_unregistered_metric.py")
    ] == [
        "pm004_unregistered_metric.py:5: PM004: metric name "
        "'engine.txn.banana' is not registered in repro.obs.schema",
    ]


def test_pm005_swallowed_lock_error_and_bare_except():
    assert [f.render() for f in _lint_fixture("pm005_swallowed.py")] == [
        "pm005_swallowed.py:7: PM005: swallowed exception handler "
        "(body is only pass)",
        "pm005_swallowed.py:14: PM005: bare except:",
    ]


def test_pm006_direct_acquire_outside_locking_module():
    assert [f.render() for f in _lint_fixture("pm006_direct_acquire.py")] == [
        "pm006_direct_acquire.py:11: PM006: direct lock_manager.acquire() "
        "outside LockingContext/commit_scope (no release-on-all-paths "
        "guarantee)",
        "pm006_direct_acquire.py:15: PM006: direct _locks.acquire() "
        "outside LockingContext/commit_scope (no release-on-all-paths "
        "guarantee)",
    ]


def test_pm006_silent_inside_core_locking():
    with open(os.path.join(FIXTURES, "pm006_direct_acquire.py")) as fh:
        source = fh.read()
    assert lint_source(
        source, file="locking.py", module="core/locking.py",
    ) == []


def test_pm006_allow_comment_suppresses():
    source = (
        "def f(locks, resource):\n"
        "    # repro: allow[PM006] self-test helper owns its own release\n"
        "    locks.acquire(1, resource, 'X')\n"
    )
    assert lint_source(source, file="x.py", module="core/x.py") == []


# ----------------------------------------------------------------------
# Suppressions and the baseline
# ----------------------------------------------------------------------

def test_allow_comment_suppresses_only_its_rule():
    source = (
        "def f(pm):\n"
        "    # repro: allow[PM001] exercising suppression in a test\n"
        "    pm.write_u64(0, 1)\n"
        "    pm.flush_range(0, 8)\n"
    )
    assert lint_source(source, file="x.py", module="core/x.py") == []
    wrong_rule = source.replace("PM001", "PM003")
    findings = lint_source(wrong_rule, file="x.py", module="core/x.py")
    assert [f.rule for f in findings] == ["PM001"]


def test_allow_without_justification_is_its_own_finding():
    source = (
        "def f(pm):\n"
        "    pm.write_u64(0, 1)  # repro: allow[PM001]\n"
        "    pm.flush_range(0, 8)\n"
    )
    findings = lint_source(source, file="x.py", module="core/x.py")
    assert [f.render() for f in findings] == [
        "x.py:2: PM000: allow[PM001] without a one-line justification",
    ]


def test_baseline_roundtrip_masks_old_findings(tmp_path):
    path = str(tmp_path / "baseline.json")
    old = Finding("PM001", "legacy store", file="a.py", line=3)
    save_baseline(path, [old])
    baseline = load_baseline(path)
    fresh = Finding("PM002", "new problem", file="b.py", line=9)
    moved = Finding("PM001", "legacy store", file="a.py", line=99)
    assert new_findings([old, moved, fresh], baseline) == [fresh]


def test_missing_baseline_is_empty():
    assert load_baseline("/nonexistent/baseline.json") == set()


# ----------------------------------------------------------------------
# The real tree is clean
# ----------------------------------------------------------------------

def test_src_repro_has_zero_findings():
    findings = lint_paths([SRC_REPRO])
    assert findings == [], "\n".join(f.render() for f in findings)
