"""The real system passes its own dynamic invariants, the analyzer's
self-test still fires every rule, and the harness integrations work."""

from repro.analysis import corpus, selftest
from repro.analysis.tracecheck import TraceChecker
from repro.bench.multiclient import run_multi_client
from repro.testing.crashsim import run_crash_sweep


def test_selftest_every_rule_fires():
    assert selftest.run() == []


def test_single_client_corpus_is_clean_fast():
    findings, stats = corpus.run_single_client("fast")
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["txns"] > 0 and stats["events"] > 0


def test_single_client_corpus_is_clean_fastplus():
    findings, stats = corpus.run_single_client("fastplus")
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["txns"] > 0


def test_scheduled_corpus_is_clean():
    findings, stats = corpus.run_scheduled("fast", clients=3, items=6)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["txns"] > 0  # TXN_BEGIN events from the session layer


def test_crash_swept_corpus_is_clean():
    findings, stats = corpus.run_crash_swept(
        "fast", items=3, stride=11, max_points=8,
    )
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["events"] > 0


def test_sharded_scheduled_corpus_is_clean_fast():
    findings, stats = corpus.run_sharded_scheduled(
        "fast", shards=2, clients=3, items=6,
    )
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["events"] > 0


def test_sharded_scheduled_corpus_is_clean_fastplus():
    findings, stats = corpus.run_sharded_scheduled(
        "fastplus", shards=2, clients=3, items=6,
    )
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["events"] > 0


def test_sharded_crash_swept_corpus_is_clean():
    findings, stats = corpus.run_sharded_crash_swept(
        "fast", shards=2, stride=13, max_points=10,
    )
    assert findings == [], "\n".join(f.render() for f in findings)
    assert stats["events"] > 0


def test_crash_sweep_checker_factory_hook():
    checkers = []

    def factory(engine):
        checker = TraceChecker.for_engine(engine)
        checkers.append(checker)
        return checker

    failures = run_crash_sweep(
        "fast", [("insert", b"k%d" % i, bytes(24)) for i in range(3)],
        stride=17, seeds=(0,), max_points=4, checker_factory=factory,
    )
    assert failures == []
    assert checkers, "factory was never called"
    for checker in checkers:
        assert checker.trace is None  # sealed at the crash
        assert checker.finish() == []


def test_multi_client_bench_trace_check_hook():
    result = run_multi_client(
        "fast", clients=2, items=5,
        checker_factory=lambda engine: TraceChecker.for_engine(
            engine, invariants=("flush", "atomic", "twopl"),
        ),
    )
    assert result["trace_check"]["findings"] == []
    stats = result["trace_check"]["stats"]
    assert stats["txns"] > 0 and stats["events"] > 0


def test_multi_client_bench_report_unchanged_without_checker():
    result = run_multi_client("fast", clients=2, items=5)
    assert "trace_check" not in result
