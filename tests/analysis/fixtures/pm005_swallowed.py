"""Known-bad fixture: swallowed lock errors (PM005)."""


def swallow(acquire):
    try:
        acquire()
    except LockConflict:
        pass


def ignore_everything(step):
    try:
        step()
    except:
        return None
