"""Known-bad fixture: nondeterminism on the simulation path (PM003)."""

import random
import time


def jitter(pages):
    start = time.time()
    delay = random.random()
    for page in {1, 2, 3}:
        pages.append(page)
    return start + delay
