"""Known-bad fixture for PM006: direct lock-manager acquisition.

The release-on-all-paths guarantee lives in
``repro.core.locking.LockingContext`` / ``commit_scope``; any other
call site that invokes ``.acquire`` directly can leak the lock on an
exception path.
"""


def grab(session, resource):
    session.lock_manager.acquire(session.sid, resource, "X")


def grab_via_field(engine, resource):
    engine._locks.acquire(7, resource, "S")
