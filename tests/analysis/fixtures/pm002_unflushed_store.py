"""Known-bad fixture: PM store never flushed before the commit mark (PM002)."""


class BrokenCommit:
    def commit(self):
        # repro: allow[PM001] fixture isolates the PM002 rule
        self.pm.write_u64(self.head, 1)
        self.log.commit(7)
