"""Known-bad fixture: metric name missing from the schema (PM004)."""


def record(obs):
    obs.inc("engine.txn.banana")
