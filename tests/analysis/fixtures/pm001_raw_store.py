"""Known-bad fixture: raw PM store outside the wrapper layers (PM001)."""


def reroute(pm, addr, value):
    pm.write_u64(addr, value)
    pm.flush_range(addr, 8)
