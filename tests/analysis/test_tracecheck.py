"""Dynamic invariants TC101-TC106: exact output on known-bad trace
fixtures, ring-drop detection, and live-range extraction."""

import json
import os

from repro.analysis.tracecheck import TraceChecker
from repro.core import SystemConfig, open_engine
from repro.obs import trace as ev
from repro.obs.trace import TraceRecorder

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Geometry every JSON fixture is written against.
LOG_RANGE = (0x10000, 0x14000)
COMMIT_WORD = 0x10008
PAGE_RANGE = (0, 0x10000)


def _run_fixture(name):
    with open(os.path.join(FIXTURES, name)) as fh:
        fixture = json.load(fh)
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    live = fixture.get("live")
    if live is not None:
        checker.begin_txn([tuple(r) for r in live])
    checker.feed([tuple(event) for event in fixture["events"]])
    findings = checker.finish()
    return [f.render() for f in findings], fixture["expect"]


def test_tc101_unflushed_log_line_at_mark():
    got, expect = _run_fixture("tc101_unflushed_log.json")
    assert got == expect


def test_tc102_non_atomic_commit_mark():
    got, expect = _run_fixture("tc102_wide_mark.json")
    assert got == expect


def test_tc103_pre_commit_live_overwrite():
    got, expect = _run_fixture("tc103_live_overwrite.json")
    assert got == expect


def test_tc103_unpersisted_pointer_swap():
    got, expect = _run_fixture("tc103_unflushed_swap.json")
    assert got == expect


def test_tc104_acquire_after_release():
    got, expect = _run_fixture("tc104_acquire_after_release.json")
    assert got == expect


def test_tc105_lock_held_at_commit():
    got, expect = _run_fixture("tc105_held_at_commit.json")
    assert got == expect


def test_tc106_persistent_waitfor_cycle():
    got, expect = _run_fixture("tc106_waitfor_cycle.json")
    assert got == expect


def test_tc107_snapshot_session_acquires_lock():
    got, expect = _run_fixture("tc107_snapshot_lock.json")
    assert got == expect


def test_tc107_snapshot_reads_younger_version():
    got, expect = _run_fixture("tc107_stale_snapshot_read.json")
    assert got == expect


def test_tc107_clean_snapshot_produces_no_findings():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.feed([
        (1, 0.0, ev.SNAPSHOT_BEGIN, 1, 100),
        (2, 0.0, ev.SNAPSHOT_READ, 1, 100),
        (3, 0.0, ev.SNAPSHOT_READ, 1, 40),
        (4, 0.0, ev.SNAPSHOT_END, 1, 0),
        # The same session may lock freely once its snapshot is closed.
        (5, 0.0, ev.TXN_BEGIN, 1, 0),
        (6, 0.0, ev.LOCK_ACQUIRE, 1, 2199023255811),
        (7, 0.0, ev.LOCK_RELEASE, 1, 2199023255811),
        (8, 0.0, ev.TXN_COMMIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc107_gated_on_snapshot_invariant():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE, invariants=("twopl",),
    )
    checker.feed([
        (1, 0.0, ev.SNAPSHOT_BEGIN, 1, 100),
        (2, 0.0, ev.SNAPSHOT_READ, 1, 200),
    ])
    assert checker.finish() == []


def test_tc108_commit_mark_without_prepare():
    got, expect = _run_fixture("tc108_commit_before_prepare.json")
    assert got == expect


def test_tc108_commit_mark_against_abort_decision():
    got, expect = _run_fixture("tc108_commit_against_abort.json")
    assert got == expect


def test_tc108_commit_before_decision():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 5, 0),
        (2, 0.0, ev.TWOPC_COMMIT, 5, 0),
    ])
    assert [f.render() for f in checker.finish()] == [
        "trace@2: TC108: shard 0 commit mark for gtid 5 before the "
        "coordinator decision"
    ]


def test_tc108_premature_commit_decision():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 5, 0),
        (2, 0.0, ev.TWOPC_DECISION, 5, (2 << 1) | 1),  # 2 participants
    ])
    assert [f.render() for f in checker.finish()] == [
        "trace@2: TC108: commit decision for gtid 5 with 1/2 "
        "participants prepared"
    ]


def test_tc108_clean_two_phase_exchange():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 5, 0),
        (2, 0.0, ev.TWOPC_PREPARE, 5, 1),
        (3, 0.0, ev.TWOPC_DECISION, 5, (2 << 1) | 1),
        (4, 0.0, ev.TWOPC_COMMIT, 5, 0),
        (5, 0.0, ev.TWOPC_COMMIT, 5, 1),
    ])
    assert checker.finish() == []


def test_tc108_gated_on_twopc_invariant():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE, invariants=("twopl",),
    )
    checker.feed([
        (1, 0.0, ev.TWOPC_COMMIT, 5, 0),
    ])
    assert checker.finish() == []


def test_shared_trace_skips_foreign_commit_marks():
    # Scoped to shard 0's geometry: shard 1's mark (no in-scope store
    # to the commit word) is out of scope, shard 0's own unflushed-line
    # violation still fires.
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE, shared_trace=True,
    )
    checker.feed([
        (1, 0.0, ev.COMMIT_MARK, 1, 0),      # another shard's mark
        (2, 0.0, ev.STORE, 0x10040, 16),     # our log line, never flushed
        (3, 0.0, ev.STORE, COMMIT_WORD, 8),
        (4, 0.0, ev.COMMIT_MARK, 2, 0),      # ours: TC101 fires
    ])
    findings = [f.render() for f in checker.finish()]
    assert len(findings) == 1 and "TC101" in findings[0]


def test_disciplined_commit_produces_no_findings():
    got, expect = _run_fixture("tc_good_commit.json")
    assert got == expect == []


def test_swap_completed_by_flush_and_fence_is_sanctioned():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.begin_txn([(0x100, 0x140)])
    checker.feed([
        (1, 0.0, ev.STORE, 0x100, 8),
        (2, 0.0, ev.CLFLUSH, 0x100, 0),
        (3, 0.0, ev.FENCE, 0, 0),
    ])
    assert checker.finish() == []


def test_rtm_window_stores_are_exempt():
    checker = TraceChecker(
        None, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    checker.begin_txn([(0x100, 0x140)])
    checker.feed([
        (1, 0.0, ev.RTM_BEGIN, 1, 0),
        (2, 0.0, ev.STORE, 0x100, 64),
        (3, 0.0, ev.RTM_COMMIT, 0, 0),
        (4, 0.0, ev.CLFLUSH, 0x100, 0),
        (5, 0.0, ev.FENCE, 0, 0),
    ])
    assert checker.finish() == []


def test_ring_drop_is_reported():
    trace = TraceRecorder(capacity=4)
    checker = TraceChecker(
        trace, log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE,
    )
    trace.record(ev.FENCE)
    checker.advance()          # cursor at seq 1
    for _ in range(8):         # seqs 2..9; ring keeps only 6..9
        trace.record(ev.FENCE)
    checker.advance()
    findings = checker.finish()
    assert [f.rule for f in findings] == ["TC000"]
    assert "dropped 4 events" in findings[0].message


def test_live_ranges_cover_roots_headers_and_cells():
    config = SystemConfig(
        npages=64, page_size=512, log_bytes=8192,
        heap_bytes=1 << 18, dram_bytes=1 << 15,
    )
    engine = open_engine(config, scheme="fast")
    payload = bytes(32)
    for i in range(8):
        engine.insert(b"lr%03d" % i, payload)
    ranges = TraceChecker.live_ranges_of(engine)
    assert ranges == sorted(ranges)
    # The named-root pointer region is always live.
    assert (engine.store.base + 16, engine.store.base + 64) in ranges
    # Each reachable page contributes its header split around the
    # reconstructible free-list head word (bytes 6-8 are exempt).
    for page_no in engine.reachable_pages():
        base = engine.store.page(page_no).base
        assert (base, base + 6) in ranges
        assert not any(
            start <= base + 6 < stop for start, stop in ranges
        )


def test_checker_for_engine_scopes_to_arena_geometry():
    config = SystemConfig(
        npages=64, page_size=512, log_bytes=8192,
        heap_bytes=1 << 18, dram_bytes=1 << 15,
    )
    engine = open_engine(config, scheme="fast")
    checker = TraceChecker.for_engine(engine)
    assert checker.log_range == (
        config.log_base, config.log_base + config.log_bytes,
    )
    assert checker.commit_word == config.log_base + 8
    assert checker.page_range == (0, 64 * 512)


# ----------------------------------------------------------------------
# TC110 — lockset race detection (Eraser-shape)
# ----------------------------------------------------------------------

PAGE_SIZE = 0x200


def _lockset_checker(**overrides):
    kwargs = dict(
        log_range=LOG_RANGE, commit_word=COMMIT_WORD,
        page_range=PAGE_RANGE, page_size=PAGE_SIZE,
    )
    kwargs.update(overrides)
    return TraceChecker(None, **kwargs)


def _s(resource, mode):
    from repro.core.locking import encode_lock

    return encode_lock(resource, mode)


def test_tc110_two_writers_with_empty_lockset():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.TXN_BEGIN, 2, 0),
        # Both writers store into page 1 holding only an S lock: their
        # X-candidate intersection is empty from the first store.
        (3, 0.0, ev.LOCK_ACQUIRE, 1, _s(("page", 1), "S")),
        (4, 0.0, ev.SCHED_PICK, 1, 0),
        (5, 0.0, ev.STORE, 0x240, 16),
        (6, 0.0, ev.LOCK_ACQUIRE, 2, _s(("page", 1), "S")),
        (7, 0.0, ev.SCHED_PICK, 2, 1),
        (8, 0.0, ev.STORE, 0x250, 16),
    ])
    assert [f.render() for f in checker.finish()] == [
        "trace@8: TC110: page 1 written by sessions 1,2 with an empty "
        "lockset (no consistent protecting X lock across writers)",
    ]


def test_tc110_consistent_x_lock_is_clean():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.LOCK_ACQUIRE, 1, _s(("page", 1), "X")),
        (3, 0.0, ev.SCHED_PICK, 1, 0),
        (4, 0.0, ev.STORE, 0x240, 16),
        (5, 0.0, ev.LOCK_RELEASE, 1, _s(("page", 1), "X")),
        (6, 0.0, ev.TXN_COMMIT, 1, 0),
        (7, 0.0, ev.TXN_BEGIN, 2, 0),
        (8, 0.0, ev.LOCK_ACQUIRE, 2, _s(("page", 1), "X")),
        (9, 0.0, ev.SCHED_PICK, 2, 1),
        (10, 0.0, ev.STORE, 0x250, 16),
        (11, 0.0, ev.LOCK_RELEASE, 2, _s(("page", 1), "X")),
        (12, 0.0, ev.TXN_COMMIT, 2, 0),
    ])
    assert checker.finish() == []


def test_tc110_set_actor_attributes_without_sched_pick():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.TXN_BEGIN, 2, 0),
        (3, 0.0, ev.LOCK_ACQUIRE, 1, _s(("page", 1), "S")),
        (4, 0.0, ev.LOCK_ACQUIRE, 2, _s(("page", 1), "S")),
    ])
    checker.set_actor(1)
    checker.feed([(5, 0.0, ev.STORE, 0x240, 16)])
    checker.set_actor(2)
    checker.feed([(6, 0.0, ev.STORE, 0x250, 16)])
    assert [f.rule for f in checker.finish()] == ["TC110"]


def test_tc110_unattributed_and_unowned_stores_are_exempt():
    checker = _lockset_checker()
    checker.feed([
        # No sched_pick/set_actor yet: preload-style stores are skipped.
        (1, 0.0, ev.STORE, 0x240, 16),
        (2, 0.0, ev.TXN_BEGIN, 1, 0),
        (3, 0.0, ev.TXN_BEGIN, 2, 0),
        # Attributed stores to a page NO session holds in any mode:
        # allocation-format traffic, sanctioned.
        (4, 0.0, ev.SCHED_PICK, 1, 0),
        (5, 0.0, ev.STORE, 0x440, 16),
        (6, 0.0, ev.SCHED_PICK, 2, 1),
        (7, 0.0, ev.STORE, 0x450, 16),
    ])
    assert checker.finish() == []


def test_tc110_dormant_without_page_geometry():
    checker = _lockset_checker(page_size=None)
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.TXN_BEGIN, 2, 0),
        (3, 0.0, ev.SCHED_PICK, 1, 0),
        (4, 0.0, ev.STORE, 0x240, 16),
        (5, 0.0, ev.SCHED_PICK, 2, 1),
        (6, 0.0, ev.STORE, 0x250, 16),
    ])
    assert checker.finish() == []


def test_tc110_gated_on_lockset_invariant():
    checker = _lockset_checker(
        invariants=("flush", "atomic", "twopl"),
    )
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.TXN_BEGIN, 2, 0),
        (3, 0.0, ev.LOCK_ACQUIRE, 1, _s(("page", 1), "S")),
        (4, 0.0, ev.SCHED_PICK, 1, 0),
        (5, 0.0, ev.STORE, 0x240, 16),
        (6, 0.0, ev.LOCK_ACQUIRE, 2, _s(("page", 1), "S")),
        (7, 0.0, ev.SCHED_PICK, 2, 1),
        (8, 0.0, ev.STORE, 0x250, 16),
    ])
    assert checker.finish() == []


# ---------------------------------------------------------------------------
# TC111 — DRAM page-cache coherence
# ---------------------------------------------------------------------------


def test_tc111_stale_hit_after_install_fires():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        # A committed header install rewrites page 1's first six bytes
        # while the frame is live ...
        (2, 0.0, ev.STORE, 0x200, 8),
        # ... and the next hit serves the pre-install bytes.
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert [f.render() for f in checker.finish()] == [
        "trace@3: TC111: cached read of page 1 served bytes older than "
        "the committed install at trace seq 2 (no invalidation between "
        "install and hit)",
    ]


def test_tc111_invalidate_between_install_and_hit_is_clean():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),
        (3, 0.0, ev.CACHE_INVAL, 1, ev.INVAL_INSTALL),
        (4, 0.0, ev.CACHE_FILL, 1, 0),
        (5, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_refill_clears_staleness():
    # A re-fill after the install re-reads the page from PM, so the
    # frame holds post-install bytes even without an explicit inval.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),
        (3, 0.0, ev.CACHE_FILL, 1, 0),
        (4, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_cell_store_outside_window_is_not_an_install():
    # Pre-commit record traffic lands past the six-byte header window
    # and must not mark the frame stale.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x3c0, 16),
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_free_list_head_store_is_carved_out():
    # Bytes 6-8 (the in-page free-list head) are rewritten in place
    # pre-commit and excluded from the install window, mirroring
    # TC103's live-range carve-out.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x206, 2),
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_install_on_other_page_is_clean():
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x400, 8),
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_hit_without_recorded_fill_is_exempt():
    # The checker may attach mid-stream: a hit on a frame it never saw
    # filled has no baseline to compare against.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.STORE, 0x200, 8),
        (2, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_dormant_without_page_geometry():
    checker = _lockset_checker(page_size=None)
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []


def test_tc111_gated_on_cache_invariant():
    checker = _lockset_checker(
        invariants=("flush", "atomic", "twopl", "lockset"),
    )
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),
        (3, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    assert checker.finish() == []
