"""The top-level package surface."""

import repro


def test_version_and_exports():
    assert repro.__version__
    assert set(repro.SCHEMES) == {"fast", "fastplus", "nvwal", "naive"}


def test_open_database_defaults():
    db = repro.open_database(scheme="fastplus")
    db.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES ('a', 'b')")
    assert db.query("SELECT v FROM t WHERE k = 'a'") == [("b",)]


def test_open_engine_roundtrip():
    engine = repro.open_engine(repro.SystemConfig(scheme="fast"))
    engine.insert(b"k", b"v")
    assert engine.search(b"k") == b"v"


def test_config_knobs_exported():
    config = repro.SystemConfig(
        latency=repro.LatencyProfile(read_ns=500, write_ns=700),
        cost=repro.CostModel(),
    )
    engine = repro.open_engine(config, scheme="fastplus")
    assert engine.pm.latency.read_ns == 500


def test_reopen_database_from_pm():
    db = repro.open_database(scheme="fast")
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES (7)")
    pm = db.engine.pm
    pm.crash()
    again = repro.open_database(pm=pm)
    assert again.query("SELECT COUNT(*) FROM t") == [(1,)]
