"""Reverse scans and VACUUM-style compaction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree, DirectContext
from repro.core import SystemConfig, engine_class, open_engine
from repro.db import Database, SqlError
from repro.pm import PersistentMemory
from repro.storage import PageStore
from tests.core.conftest import small_config


def make_tree(npages=512, page_size=512):
    pm = PersistentMemory(npages * page_size, cache_lines=1 << 16)
    store = PageStore.format(pm, 0, npages, page_size)
    ctx = DirectContext(store)
    tree = BTree()
    tree.create(ctx)
    return store, ctx, tree


# ----------------------------------------------------------------------
# scan_desc
# ----------------------------------------------------------------------


def test_scan_desc_reverses_scan():
    _, ctx, tree = make_tree()
    for i in range(300):
        tree.insert(ctx, b"%05d" % i, b"v%d" % i)
    forward = list(tree.scan(ctx))
    assert list(tree.scan_desc(ctx)) == forward[::-1]


def test_scan_desc_bounds():
    _, ctx, tree = make_tree()
    for i in range(100):
        tree.insert(ctx, b"%05d" % i, b"v")
    got = [k for k, _ in tree.scan_desc(ctx, lo=b"%05d" % 10, hi=b"%05d" % 15)]
    assert got == [b"%05d" % i for i in range(15, 9, -1)]


def test_scan_desc_empty_and_open_bounds():
    _, ctx, tree = make_tree()
    assert list(tree.scan_desc(ctx)) == []
    for i in range(20):
        tree.insert(ctx, b"%03d" % i, b"v")
    assert len(list(tree.scan_desc(ctx, lo=b"015"))) == 5
    assert len(list(tree.scan_desc(ctx, hi=b"004"))) == 5


@settings(max_examples=20, deadline=None)
@given(keys=st.sets(st.integers(0, 400), max_size=80))
def test_scan_desc_matches_sorted_model(keys):
    _, ctx, tree = make_tree()
    for key_no in keys:
        tree.insert(ctx, b"%05d" % key_no, b"v")
    expected = [b"%05d" % k for k in sorted(keys, reverse=True)]
    assert [k for k, _ in tree.scan_desc(ctx)] == expected


def test_scan_desc_resolves_overflow_values():
    _, ctx, tree = make_tree()
    tree.insert(ctx, b"a", b"small")
    tree.insert(ctx, b"b", b"B" * 1500)
    assert list(tree.scan_desc(ctx)) == [(b"b", b"B" * 1500), (b"a", b"small")]


# ----------------------------------------------------------------------
# compact / VACUUM
# ----------------------------------------------------------------------


def churn(engine, n=150):
    import random

    rng = random.Random(3)
    for i in range(n):
        engine.insert(b"%04d" % i, b"x" * rng.randrange(16, 80))
    for i in range(0, n, 2):
        engine.delete(b"%04d" % i)
    for i in range(1, n, 2):
        engine.insert(b"%04d" % i, b"y" * rng.randrange(16, 80), replace=True)


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_compact_preserves_data(scheme):
    engine = open_engine(small_config(scheme=scheme))
    churn(engine)
    before = dict(engine.scan())
    rewritten = engine.compact()
    assert rewritten > 0
    assert dict(engine.scan()) == before
    assert engine.verify() == len(before)


def test_compact_reduces_fragmentation():
    engine = open_engine(small_config(scheme="fast"))
    churn(engine)

    def total_waste():
        view = engine.read_view()
        return sum(
            page.total_free() - page.contiguous_free()
            for page in (view.page(no) for no in engine.reachable_pages())
            if page.page_type in (1, 2)
        )

    waste_before = total_waste()
    engine.compact()
    assert total_waste() < waste_before / 2


def test_compact_is_crash_safe():
    from repro.pm import DropAll

    config = small_config(scheme="fast")
    engine = open_engine(config)
    churn(engine)
    before = dict(engine.scan())
    engine.compact()
    engine.pm.crash(DropAll())
    recovered = engine_class("fast").attach(config, engine.pm)
    assert dict(recovered.scan()) == before


def test_sql_vacuum():
    db = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=65536, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(200):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, "v" * (i % 60 + 1)))
    db.execute("DELETE FROM t WHERE id < 100")
    result = db.execute("VACUUM")
    assert result.rowcount >= 0
    assert db.query("SELECT COUNT(*) FROM t") == [(100,)]


def test_sql_vacuum_rejected_in_transaction():
    db = Database.open(SystemConfig(
        scheme="fast", npages=512, page_size=1024,
        log_bytes=65536, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
    db.execute("BEGIN")
    with pytest.raises(SqlError):
        db.execute("VACUUM")
    db.execute("ROLLBACK")
