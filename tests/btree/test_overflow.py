"""Overflow-page chains: values larger than a page."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree, DirectContext
from repro.btree.cells import is_overflow_cell
from repro.core import engine_class, open_engine
from repro.pm import PersistentMemory
from repro.storage import PageStore
from tests.core.conftest import small_config


def make_tree(npages=512, page_size=512):
    pm = PersistentMemory(npages * page_size, cache_lines=1 << 16)
    store = PageStore.format(pm, 0, npages, page_size)
    ctx = DirectContext(store)
    tree = BTree()
    tree.create(ctx)
    return store, ctx, tree


def test_value_larger_than_page_round_trips():
    _, ctx, tree = make_tree()
    big = bytes(range(256)) * 8  # 2 KiB in 512 B pages
    tree.insert(ctx, b"big", big)
    assert tree.search(ctx, b"big") == big
    assert tree.verify(ctx) == 1


def test_huge_value_many_pages():
    _, ctx, tree = make_tree(npages=1024)
    huge = b"payload!" * 4000  # 32 KiB
    tree.insert(ctx, b"huge", huge)
    assert tree.search(ctx, b"huge") == huge


def test_spill_threshold_boundary():
    _, ctx, tree = make_tree()
    for size in (100, 127, 128, 129, 200, 511, 512, 513):
        key = b"s%03d" % size
        tree.insert(ctx, key, b"x" * size)
        assert tree.search(ctx, key) == b"x" * size
    assert tree.verify(ctx) == 8


def test_mixed_small_and_large_records():
    _, ctx, tree = make_tree()
    values = {}
    for i in range(60):
        size = 2000 if i % 7 == 0 else 20
        values[b"k%02d" % i] = bytes([i]) * size
    for key, value in values.items():
        tree.insert(ctx, key, value)
    assert tree.verify(ctx) == 60
    assert dict(tree.scan(ctx)) == values


def test_scan_resolves_overflow_values():
    _, ctx, tree = make_tree()
    tree.insert(ctx, b"a", b"small")
    tree.insert(ctx, b"b", b"B" * 1500)
    assert list(tree.scan(ctx)) == [(b"a", b"small"), (b"b", b"B" * 1500)]


def test_delete_frees_chain_pages():
    store, ctx, tree = make_tree()
    free_before = store.free_page_count()
    tree.insert(ctx, b"big", b"z" * 3000)
    used = free_before - store.free_page_count()
    assert used >= 6  # leaf-side + several overflow pages
    assert tree.delete(ctx, b"big")
    assert store.free_page_count() >= free_before - 2


def test_replace_frees_old_chain():
    store, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"a" * 3000)
    baseline = store.free_page_count()
    for round_no in range(8):
        tree.insert(ctx, b"k", bytes([round_no]) * 3000, replace=True)
    # Page usage is stable: old chains are recycled, not leaked.
    assert abs(store.free_page_count() - baseline) <= 2
    assert tree.search(ctx, b"k") == bytes([7]) * 3000


def test_replace_large_with_small_goes_inline():
    _, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"L" * 2000)
    tree.insert(ctx, b"k", b"tiny", replace=True)
    assert tree.search(ctx, b"k") == b"tiny"
    # The cell is inline again.
    view = ctx
    leaf = tree._descend(view, b"k")[-1].page
    _, slot = tree._leaf_search(leaf, b"k")
    assert not is_overflow_cell(leaf.record(slot))


def test_reachable_pages_include_chains():
    store, ctx, tree = make_tree()
    tree.insert(ctx, b"big", b"q" * 3000)
    pages = tree.reachable_pages(ctx)
    store.garbage_collect(pages)  # must not free chain pages
    assert tree.search(ctx, b"big") == b"q" * 3000


def test_oversized_key_rejected():
    from repro.storage.slotted_page import RecordTooLargeError

    _, ctx, tree = make_tree()
    with pytest.raises(RecordTooLargeError):
        tree.insert(ctx, b"K" * 400, b"v" * 1000)


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_overflow_values_survive_crash(scheme):
    config = small_config(scheme=scheme, npages=512)
    engine = open_engine(config)
    big = b"durable" * 400  # 2.8 KiB in 1 KiB pages
    engine.insert(b"big", big)
    engine.insert(b"small", b"s")
    pm = engine.pm
    pm.crash()
    recovered = engine_class(scheme).attach(config, pm)
    assert recovered.search(b"big") == big
    assert recovered.verify() == 2


def test_uncommitted_chain_is_collected_after_crash():
    from repro.pm import DropAll

    config = small_config(scheme="fast", npages=256)
    engine = open_engine(config)
    engine.insert(b"committed", b"c" * 1500)
    txn = engine.transaction()
    txn.insert(b"doomed", b"d" * 1500)
    pm = engine.pm
    pm.crash(DropAll())
    recovered = engine_class("fast").attach(config, pm)
    assert recovered.search(b"doomed") is None
    assert recovered.search(b"committed") == b"c" * 1500
    # The doomed chain's pages were reclaimed by recovery GC.
    committed_pages = recovered.reachable_pages()
    free_pages = recovered.store.free_page_count()
    assert free_pages + len(committed_pages) + 1 == recovered.store.npages


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 2500), min_size=1, max_size=12),
    seed=st.integers(0, 1000),
)
def test_random_sizes_match_model(sizes, seed):
    _, ctx, tree = make_tree(npages=1024)
    model = {}
    for i, size in enumerate(sizes):
        key = b"r%02d" % i
        value = bytes((i + j + seed) % 256 for j in range(size))
        tree.insert(ctx, key, value, replace=True)
        model[key] = value
    assert dict(tree.scan(ctx)) == model
    assert tree.verify(ctx) == len(model)
