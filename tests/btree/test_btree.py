"""Unit and property tests for the B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BTree, DirectContext, DuplicateKeyError
from repro.pm import PersistentMemory
from repro.storage import PageStore


def make_tree(npages=256, page_size=512, leaf_capacity=None):
    pm = PersistentMemory(npages * page_size, cache_lines=1 << 16)
    store = PageStore.format(pm, 0, npages, page_size)
    ctx = DirectContext(store)
    tree = BTree(leaf_capacity=leaf_capacity)
    tree.create(ctx)
    return pm, store, ctx, tree


def key_of(i):
    return b"%08d" % i


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------


def test_empty_tree_search_returns_none():
    _, _, ctx, tree = make_tree()
    assert tree.search(ctx, b"missing") is None
    assert tree.count(ctx) == 0


def test_insert_and_search_single():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"key", b"value")
    assert tree.search(ctx, b"key") == b"value"


def test_search_miss_between_keys():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"a", b"1")
    tree.insert(ctx, b"c", b"2")
    assert tree.search(ctx, b"b") is None


def test_duplicate_insert_raises():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"v1")
    with pytest.raises(DuplicateKeyError):
        tree.insert(ctx, b"k", b"v2")
    assert tree.search(ctx, b"k") == b"v1"


def test_insert_replace_overwrites():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"v1")
    tree.insert(ctx, b"k", b"v2", replace=True)
    assert tree.search(ctx, b"k") == b"v2"
    assert tree.count(ctx) == 1


def test_update_existing():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"old")
    assert tree.update(ctx, b"k", b"new")
    assert tree.search(ctx, b"k") == b"new"


def test_update_missing_returns_false():
    _, _, ctx, tree = make_tree()
    assert not tree.update(ctx, b"nope", b"v")


def test_delete_existing_and_missing():
    _, _, ctx, tree = make_tree()
    tree.insert(ctx, b"k", b"v")
    assert tree.delete(ctx, b"k")
    assert tree.search(ctx, b"k") is None
    assert not tree.delete(ctx, b"k")


def test_variable_length_records():
    _, _, ctx, tree = make_tree(page_size=1024)
    for i in range(30):
        tree.insert(ctx, key_of(i), bytes([i]) * (i * 7 % 90 + 1))
    for i in range(30):
        assert tree.search(ctx, key_of(i)) == bytes([i]) * (i * 7 % 90 + 1)


# ----------------------------------------------------------------------
# Splits and structure
# ----------------------------------------------------------------------


def test_sequential_inserts_split_and_stay_sorted():
    _, _, ctx, tree = make_tree()
    n = 300
    for i in range(n):
        tree.insert(ctx, key_of(i), b"v%d" % i)
    assert tree.verify(ctx) == n
    assert tree.height(ctx) > 1
    assert [k for k, _ in tree.scan(ctx)] == [key_of(i) for i in range(n)]


def test_reverse_order_inserts():
    _, _, ctx, tree = make_tree()
    n = 300
    for i in reversed(range(n)):
        tree.insert(ctx, key_of(i), b"x")
    assert tree.verify(ctx) == n


def test_random_order_inserts():
    import random

    rng = random.Random(7)
    keys = [key_of(i) for i in range(400)]
    rng.shuffle(keys)
    _, _, ctx, tree = make_tree()
    for k in keys:
        tree.insert(ctx, k, b"v")
    assert tree.verify(ctx) == 400
    for k in keys:
        assert tree.search(ctx, k) == b"v"


def test_leaf_capacity_limits_leaf_size():
    """With the FAST⁺ cap of 28 records, leaves split by count even
    with plenty of byte space."""
    _, store, ctx, tree = make_tree(page_size=4096, leaf_capacity=28)
    for i in range(29):
        tree.insert(ctx, key_of(i), b"v")
    assert tree.height(ctx) == 2
    for page_no in tree.reachable_pages(ctx):
        page = store.page(page_no)
        if page.page_type == 1:  # leaf
            assert page.nrecords <= 28
    assert tree.verify(ctx) == 29


def test_three_level_tree():
    _, _, ctx, tree = make_tree(npages=1024, page_size=256)
    n = 1200
    for i in range(n):
        tree.insert(ctx, key_of(i), b"v")
    assert tree.height(ctx) >= 3
    assert tree.verify(ctx) == n


def test_reachable_pages_covers_tree():
    _, store, ctx, tree = make_tree()
    for i in range(200):
        tree.insert(ctx, key_of(i), b"v" * 10)
    pages = tree.reachable_pages(ctx)
    assert len(pages) > 1
    # Garbage collection with exactly this set keeps the tree intact.
    store.garbage_collect(pages)
    assert tree.verify(DirectContext(store)) == 200


def test_split_preserves_values_not_just_keys():
    _, _, ctx, tree = make_tree()
    values = {key_of(i): bytes([i % 251]) * 20 for i in range(150)}
    for k, v in values.items():
        tree.insert(ctx, k, v)
    for k, v in values.items():
        assert tree.search(ctx, k) == v


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


def test_scan_full_range():
    _, _, ctx, tree = make_tree()
    for i in range(100):
        tree.insert(ctx, key_of(i), b"v")
    assert len(list(tree.scan(ctx))) == 100


def test_scan_bounded_range():
    _, _, ctx, tree = make_tree()
    for i in range(100):
        tree.insert(ctx, key_of(i), b"v")
    got = [k for k, _ in tree.scan(ctx, lo=key_of(10), hi=key_of(19))]
    assert got == [key_of(i) for i in range(10, 20)]


def test_scan_open_ended_bounds():
    _, _, ctx, tree = make_tree()
    for i in range(50):
        tree.insert(ctx, key_of(i), b"v")
    assert len(list(tree.scan(ctx, lo=key_of(40)))) == 10
    assert len(list(tree.scan(ctx, hi=key_of(9)))) == 10


def test_scan_empty_range():
    _, _, ctx, tree = make_tree()
    for i in range(20):
        tree.insert(ctx, key_of(i), b"v")
    assert list(tree.scan(ctx, lo=b"zzz")) == []


# ----------------------------------------------------------------------
# Deletes and fragmentation
# ----------------------------------------------------------------------


def test_delete_half_then_verify():
    _, _, ctx, tree = make_tree()
    for i in range(200):
        tree.insert(ctx, key_of(i), b"v" * 8)
    for i in range(0, 200, 2):
        assert tree.delete(ctx, key_of(i))
    assert tree.verify(ctx) == 100
    for i in range(200):
        expected = None if i % 2 == 0 else b"v" * 8
        assert tree.search(ctx, key_of(i)) == expected


def test_delete_everything():
    _, _, ctx, tree = make_tree()
    for i in range(150):
        tree.insert(ctx, key_of(i), b"v")
    for i in range(150):
        assert tree.delete(ctx, key_of(i))
    assert tree.count(ctx) == 0


def test_reinsert_after_delete_uses_freed_space():
    _, _, ctx, tree = make_tree(npages=64)
    for round_no in range(6):
        for i in range(80):
            tree.insert(ctx, key_of(i), bytes([round_no]) * 12)
        for i in range(80):
            tree.delete(ctx, key_of(i))
    assert tree.count(ctx) == 0


def test_update_grows_value_through_defrag_or_split():
    _, _, ctx, tree = make_tree(page_size=512)
    for i in range(40):
        tree.insert(ctx, key_of(i), b"s" * 8)
    for i in range(40):
        tree.insert(ctx, key_of(i), b"L" * 80, replace=True)
    assert tree.verify(ctx) == 40
    for i in range(40):
        assert tree.search(ctx, key_of(i)) == b"L" * 80


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "replace"]),
            st.integers(0, 60),
            st.binary(min_size=0, max_size=30),
        ),
        max_size=120,
    )
)
def test_btree_matches_dict_model(ops):
    _, _, ctx, tree = make_tree(npages=512, page_size=256)
    model = {}
    for op, key_no, value in ops:
        key = key_of(key_no)
        if op == "insert":
            tree.insert(ctx, key, value, replace=True)
            model[key] = value
        elif op == "replace" and key in model:
            tree.insert(ctx, key, value, replace=True)
            model[key] = value
        elif op == "delete":
            assert tree.delete(ctx, key) == (key in model)
            model.pop(key, None)
    assert tree.verify(ctx) == len(model)
    for key, value in model.items():
        assert tree.search(ctx, key) == value
    assert dict(tree.scan(ctx)) == model


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1 << 30))
def test_btree_random_bulk_with_verify(seed):
    import random

    rng = random.Random(seed)
    _, _, ctx, tree = make_tree(npages=1024, page_size=256)
    model = {}
    for _ in range(250):
        key = key_of(rng.randrange(500))
        value = bytes(rng.randrange(256) for _ in range(rng.randrange(20)))
        tree.insert(ctx, key, value, replace=True)
        model[key] = value
    assert tree.verify(ctx) == len(model)
    assert dict(tree.scan(ctx)) == model
