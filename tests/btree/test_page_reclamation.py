"""Empty-page reclamation on delete (tree shrinks back)."""

import pytest

from repro.btree import BTree, DirectContext
from repro.core import SystemConfig, open_engine
from repro.pm import PersistentMemory
from repro.storage import PageStore
from repro.testing import run_crash_sweep
from tests.core.conftest import small_config


def make_tree(npages=256, page_size=512):
    pm = PersistentMemory(npages * page_size, cache_lines=1 << 16)
    store = PageStore.format(pm, 0, npages, page_size)
    ctx = DirectContext(store)
    tree = BTree()
    tree.create(ctx)
    return store, ctx, tree


def test_delete_all_frees_pages():
    store, ctx, tree = make_tree()
    free_at_start = store.free_page_count()
    for i in range(300):
        tree.insert(ctx, b"%06d" % i, b"v" * 8)
    assert store.free_page_count() < free_at_start
    for i in range(300):
        assert tree.delete(ctx, b"%06d" % i)
    assert tree.count(ctx) == 0
    assert tree.verify(ctx) == 0
    # Nearly all pages return (the root and a few stragglers stay).
    assert store.free_page_count() >= free_at_start - 6


def test_root_collapses_after_mass_delete():
    store, ctx, tree = make_tree()
    for i in range(300):
        tree.insert(ctx, b"%06d" % i, b"v" * 8)
    assert tree.height(ctx) >= 2
    for i in range(300):
        tree.delete(ctx, b"%06d" % i)
    assert tree.height(ctx) <= 2


def test_interleaved_insert_delete_stays_bounded():
    store, ctx, tree = make_tree(npages=96)
    # Ten full fill/drain cycles must not exhaust a small arena.
    for cycle in range(10):
        for i in range(120):
            tree.insert(ctx, b"%06d" % i, bytes([cycle]) * 10)
        for i in range(120):
            assert tree.delete(ctx, b"%06d" % i)
    assert tree.verify(ctx) == 0


def test_partial_deletes_keep_remaining_reachable():
    store, ctx, tree = make_tree()
    for i in range(200):
        tree.insert(ctx, b"%06d" % i, b"v")
    for i in range(0, 200, 2):
        tree.delete(ctx, b"%06d" % i)
    assert tree.verify(ctx) == 100
    for i in range(1, 200, 2):
        assert tree.search(ctx, b"%06d" % i) == b"v"


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_engine_delete_all_then_reuse(scheme):
    engine = open_engine(small_config(scheme=scheme))
    for i in range(250):
        engine.insert(b"%05d" % i, b"value")
    for i in range(250):
        assert engine.delete(b"%05d" % i)
    assert engine.verify() == 0
    for i in range(250):
        engine.insert(b"%05d" % i, b"again")
    assert engine.verify() == 250


@pytest.mark.parametrize("scheme", ["fast", "fastplus"])
def test_crash_sweep_through_page_reclamation(scheme):
    """Crashes during empty-leaf unlinking and root collapse."""
    granularity = 64 if scheme == "fastplus" else 8
    config = SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )
    workload = [("insert", b"%04d" % i, b"x" * 40) for i in range(14)]
    workload += [("delete", b"%04d" % i, None) for i in range(14)]
    failures = run_crash_sweep(scheme, workload, config=config, stride=4)
    assert failures == [], failures[:3]
