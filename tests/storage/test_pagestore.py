"""Unit tests for the page store (arena manager)."""

import pytest

from repro.pm import DropAll, PersistentMemory
from repro.storage import OutOfPagesError, PAGE_INTERNAL, PAGE_LEAF, PageStore


def make_store(npages=8, page_size=512):
    pm = PersistentMemory(npages * page_size)
    return pm, PageStore.format(pm, 0, npages, page_size)


def test_format_and_attach():
    pm, store = make_store()
    again = PageStore.attach(pm, 0)
    assert again.npages == store.npages
    assert again.page_size == store.page_size


def test_attach_rejects_unformatted_memory():
    pm = PersistentMemory(4096)
    with pytest.raises(ValueError):
        PageStore.attach(pm, 0)


def test_geometry_validation():
    pm = PersistentMemory(4096)
    with pytest.raises(ValueError):
        PageStore(pm, 0, 4, 100)
    with pytest.raises(ValueError):
        PageStore(pm, 0, 1, 512)


def test_allocate_returns_initialized_page():
    _, store = make_store()
    page = store.allocate_page(PAGE_LEAF)
    assert page.page_type == PAGE_LEAF
    assert page.nrecords == 0


def test_allocate_all_then_exhausted():
    _, store = make_store(npages=4)
    for _ in range(3):
        store.allocate_page(PAGE_LEAF)
    with pytest.raises(OutOfPagesError):
        store.allocate_page(PAGE_LEAF)


def test_free_then_reallocate():
    _, store = make_store(npages=4)
    pages = [store.allocate_page(PAGE_LEAF) for _ in range(3)]
    freed_no = store.page_no_of(pages[1])
    store.free_page(freed_no)
    assert store.free_page_count() == 1
    again = store.allocate_page(PAGE_INTERNAL)
    assert store.page_no_of(again) == freed_no


def test_page_numbers_and_addresses():
    _, store = make_store(page_size=512)
    page = store.allocate_page(PAGE_LEAF)
    no = store.page_no_of(page)
    assert store.page_base(no) == page.base
    assert store.page(no).base == page.base


def test_page_base_bounds():
    _, store = make_store(npages=4)
    with pytest.raises(IndexError):
        store.page_base(0)  # header page is not addressable as data
    with pytest.raises(IndexError):
        store.page_base(4)


def test_roots_are_persistent_and_atomic():
    pm, store = make_store()
    store.set_root(0, 3)
    pm.crash(DropAll())
    assert PageStore.attach(pm, 0).root(0) == 3


def test_root_slot_bounds():
    _, store = make_store()
    with pytest.raises(IndexError):
        store.root(99)
    with pytest.raises(IndexError):
        store.set_root(-1, 1)


def test_free_list_survives_crash():
    pm, store = make_store(npages=6)
    a = store.allocate_page(PAGE_LEAF)
    store.free_page(store.page_no_of(a))
    before = store.free_page_count()
    pm.crash(DropAll())
    after = PageStore.attach(pm, 0).free_page_count()
    assert after == before


def test_garbage_collect_reclaims_orphans():
    pm, store = make_store(npages=6)
    kept = store.allocate_page(PAGE_LEAF)
    orphan = store.allocate_page(PAGE_LEAF)
    del orphan  # crash made it unreachable
    pm.crash()
    store = PageStore.attach(pm, 0)
    reachable = {store.page_no_of(kept)}
    store.garbage_collect(reachable)
    assert store.free_page_count() == store.npages - 2  # header + kept


def test_garbage_collect_keeps_reachable_pages():
    pm, store = make_store(npages=6)
    page = store.allocate_page(PAGE_LEAF)
    page.pending_insert(0, b"precious")
    page.apply_header(page.pending_header_image(), persist=True)
    store.garbage_collect({store.page_no_of(page)})
    assert store.page(store.page_no_of(page)).records() == [b"precious"]


def test_allocation_after_gc_does_not_hand_out_reachable():
    _, store = make_store(npages=5)
    keep = {store.page_no_of(store.allocate_page(PAGE_LEAF))}
    store.garbage_collect(keep)
    handed = set()
    while True:
        try:
            handed.add(store.page_no_of(store.allocate_page(PAGE_LEAF)))
        except OutOfPagesError:
            break
    assert handed.isdisjoint(keep)
