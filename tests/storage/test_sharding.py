"""Sharded pagestores: routing, cross-shard 2PC, the recovery matrix,
per-shard snapshot/GC isolation, and the lock facade."""

from zlib import crc32

import pytest

from repro.core import SystemConfig
from repro.storage.sharding import (
    SHARDABLE_SCHEMES,
    ShardRouter,
    shard_config,
    shard_span,
    total_arena_bytes,
)


def _config(**overrides):
    params = dict(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )
    params.update(overrides)
    return SystemConfig(**params)


def _keys_on(shard, nshards, count, tag=b"k"):
    """``count`` distinct keys that all route to ``shard``."""
    keys = []
    i = 0
    while len(keys) < count:
        key = tag + b"%05d" % i
        if crc32(key) % nshards == shard:
            keys.append(key)
        i += 1
    return keys


class SimulatedCrash(Exception):
    """Raised by test hooks standing in for a power cut."""


def _raiser(*_args, **_kwargs):
    raise SimulatedCrash


class TestLayout:
    def test_shard_slices_do_not_overlap(self):
        config = _config()
        span = shard_span(config)
        for index in range(4):
            cfg = shard_config(config, index)
            assert cfg.store_base == index * span
            assert cfg.twopc_base + cfg.twopc_bytes == (index + 1) * span

    def test_total_arena_covers_coordinator(self):
        config = _config()
        assert total_arena_bytes(config, 3) == 3 * shard_span(config) + 64

    def test_default_config_layout_unchanged(self):
        # base_offset/twopc_bytes default to zero: the unsharded layout
        # is byte-identical to what every golden baseline was built on.
        config = _config()
        assert config.store_base == 0
        assert config.log_base == config.store_bytes
        assert config.arena_bytes == (
            config.store_bytes + config.log_bytes + config.heap_bytes
        )


class TestRouting:
    @pytest.mark.parametrize("scheme", SHARDABLE_SCHEMES)
    def test_keys_land_on_their_shard(self, scheme):
        router = ShardRouter.create(_config(), 4, scheme=scheme)
        for i in range(32):
            key = b"r%05d" % i
            router.insert(key, b"v%d" % i)
            index = router.shard_of(key)
            assert router.shards[index].search(key) == b"v%d" % i
            for other in range(4):
                if other != index:
                    assert router.shards[other].search(key) is None

    def test_merged_scan_is_sorted_and_complete(self):
        router = ShardRouter.create(_config(), 4, scheme="fast")
        keys = [b"s%05d" % i for i in range(40)]
        for key in keys:
            router.insert(key, key)
        rows = router.scan()
        assert [k for k, _v in rows] == sorted(keys)
        assert router.verify() == 40

    def test_unshardable_scheme_rejected(self):
        for scheme in ("nvwal", "naive"):
            with pytest.raises(ValueError):
                ShardRouter.create(_config(), 2, scheme=scheme)

    def test_shards_share_one_clock_and_obs(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        assert router.shards[0].clock is router.shards[1].clock
        assert router.shards[0].obs is router.shards[1].obs is router.obs


class TestCommitProtocols:
    def test_single_shard_txn_skips_two_phase(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        keys = _keys_on(0, 2, 3)
        with router.session("w") as session:
            with session.transaction() as txn:
                for key in keys:
                    txn.insert(key, b"x")
        for key in keys:
            assert router.search(key) == b"x"
        counters = router.obs.snapshot()["registry"]["counters"]
        assert counters.get("twopc.prepare", 0) == 0
        assert counters.get("twopc.decision", 0) == 0

    def test_cross_shard_txn_commits_via_two_phase(self):
        router = ShardRouter.create(_config(), 4, scheme="fast")
        keys = [_keys_on(index, 4, 1)[0] for index in range(4)]
        with router.session("w") as session:
            with session.transaction() as txn:
                for key in keys:
                    txn.insert(key, b"x")
                assert txn.shards_touched == [0, 1, 2, 3]
        for key in keys:
            assert router.search(key) == b"x"
        counters = router.obs.snapshot()["registry"]["counters"]
        assert counters["twopc.prepare"] == 4
        assert counters["twopc.decision"] == 1
        assert counters["twopc.commit"] == 4
        # All records cleared after a completed exchange.
        for shard in router.shards:
            assert shard.twopc.prepared() is None
        assert router.coordinator.decided_commit() is None

    def test_fastplus_participant_bypasses_in_place_commit(self):
        router = ShardRouter.create(_config(), 2, scheme="fastplus")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        with router.session("w") as session:
            with session.transaction() as txn:
                txn.insert(k0, b"x")
                txn.insert(k1, b"y")
        counters = router.obs.snapshot()["registry"]["counters"]
        assert counters["twopc.prepare"] == 2
        assert router.search(k0) == b"x" and router.search(k1) == b"y"

    def test_cross_shard_rollback_leaves_nothing(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        with router.session("w") as session:
            txn = session.transaction()
            txn.insert(k0, b"x")
            txn.insert(k1, b"y")
            txn.rollback()
        assert router.search(k0) is None
        assert router.search(k1) is None
        assert router.verify() == 0

    def test_read_only_cross_shard_search(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        router.insert(k0, b"a")
        router.insert(k1, b"b")
        with router.session("r", read_only=True) as session:
            with session.transaction() as txn:
                assert txn.search(k0) == b"a"
                assert txn.search(k1) == b"b"


class TestRecoveryMatrix:
    """Each row of the presumed-abort recovery matrix, driven by
    failing the commit path at the exact protocol step."""

    def _cross_txn(self, router, value=b"v"):
        k0, k1 = _keys_on(0, 2, 1, b"m")[0], _keys_on(1, 2, 1, b"m")[0]
        session = router.session("w")
        txn = session.transaction()
        txn.insert(k0, value)
        txn.insert(k1, value)
        return session, txn, k0, k1

    def test_prepared_without_decision_presumed_abort(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        router.coordinator.decide_commit = _raiser  # crash pre-decision
        with pytest.raises(SimulatedCrash):
            txn.commit()
        for shard in router.shards:
            assert shard.twopc.prepared() is not None  # in doubt
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) is None
        assert recovered.search(k1) is None
        assert recovered.verify() == 0
        counters = recovered.obs.snapshot()["registry"]["counters"]
        assert counters["twopc.resolve.abort"] == 2
        for shard in recovered.shards:
            assert shard.twopc.prepared() is None

    def test_decided_commit_resolves_all_shards(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        # Crash after the decision persisted, before any commit mark.
        router.shards[0].commit_prepared = _raiser
        with pytest.raises(SimulatedCrash):
            txn.commit()
        assert router.coordinator.decided_commit() is not None
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) == b"v"
        assert recovered.search(k1) == b"v"
        counters = recovered.obs.snapshot()["registry"]["counters"]
        assert counters["twopc.resolve.commit"] == 2
        assert recovered.coordinator.decided_commit() is None

    def test_partial_commit_marks_resolve_commit(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        # Shard 0 commits; the crash hits before shard 1's mark.
        router.shards[1].commit_prepared = _raiser
        with pytest.raises(SimulatedCrash):
            txn.commit()
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) == b"v"
        assert recovered.search(k1) == b"v"  # all-or-nothing: both land
        counters = recovered.obs.snapshot()["registry"]["counters"]
        assert counters["twopc.resolve.commit"] == 1

    def test_stale_prepare_record_after_mark_is_cleared(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        # Crash between shard 1's commit mark and its record clear.
        router.shards[1].twopc.clear = _raiser
        with pytest.raises(SimulatedCrash):
            txn.commit()
        assert router.shards[1].twopc.prepared() is not None
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) == b"v"
        assert recovered.search(k1) == b"v"
        counters = recovered.obs.snapshot()["registry"]["counters"]
        # The mark already decided: no in-doubt resolution needed.
        assert counters.get("twopc.resolve.commit", 0) == 0
        assert counters.get("twopc.resolve.abort", 0) == 0
        for shard in recovered.shards:
            assert shard.twopc.prepared() is None

    def test_failed_prepare_aborts_already_prepared_legs(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        router.shards[1].prepare_commit = _raiser  # second leg fails
        with pytest.raises(SimulatedCrash):
            txn.commit()
        # Shard 0's prepare was rolled back in place — no reboot needed.
        assert router.shards[0].twopc.prepared() is None
        assert router.coordinator.decided_commit() is None
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) is None
        assert recovered.search(k1) is None

    def test_clean_attach_after_completed_exchange(self):
        config = _config()
        router = ShardRouter.create(config, 2, scheme="fast")
        session, txn, k0, k1 = self._cross_txn(router)
        txn.commit()
        session.close()
        recovered = ShardRouter.attach(config, 2, router.pm, scheme="fast")
        assert recovered.search(k0) == b"v"
        assert recovered.search(k1) == b"v"
        counters = recovered.obs.snapshot()["registry"]["counters"]
        assert counters.get("twopc.resolve.commit", 0) == 0
        assert counters.get("twopc.resolve.abort", 0) == 0


class TestPerShardSnapshots:
    def test_snapshot_pins_only_touched_shards(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        router.insert(k0, b"old")
        router.insert(k1, b"old")
        with router.session("r", read_only=True) as session:
            txn = session.transaction()
            assert txn.search(k0) == b"old"  # pins shard 0 only
            assert router.shards[0].version_manager.capture_active
            assert not router.shards[1].version_manager.capture_active
            txn.commit()

    def test_one_shards_snapshot_does_not_retain_other_shards(self):
        """Satellite regression: a long-lived snapshot on shard 0 must
        not make shard 1 stamp commits or retain pre-images."""
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0 = _keys_on(0, 2, 1)[0]
        keys1 = _keys_on(1, 2, 8)
        router.insert(k0, b"old")
        for key in keys1:
            router.insert(key, b"old")
        with router.session("r", read_only=True) as reader:
            txn = reader.transaction()
            assert txn.search(k0) == b"old"
            # Churn shard 1 while shard 0's snapshot stays pinned.
            with router.session("w") as writer:
                for round_no in range(3):
                    for key in keys1:
                        writer.insert(key, b"new%d" % round_no, replace=True)
            assert router.shards[1].version_manager.versions_live() == 0
            # The pinned shard still serves its snapshot value...
            router.insert(k0, b"new", replace=True)
            assert txn.search(k0) == b"old"
            txn.commit()
        # ...and unpinning drains shard 0's chains too.
        assert router.shards[0].version_manager.versions_live() == 0

    def test_per_shard_gc_runs_under_foreign_snapshot(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0 = _keys_on(0, 2, 1)[0]
        for key in _keys_on(1, 2, 12):
            router.insert(key, bytes(64))
        router.insert(k0, b"x")
        with router.session("r", read_only=True) as reader:
            txn = reader.transaction()
            txn.search(k0)  # pin shard 0
            # GC fans out per shard; shard 1 is unpinned and collects
            # with an empty protection set.
            router.garbage_collect()
            assert router.verify() == 13
            txn.commit()


class TestLockFacade:
    def test_disjoint_shards_use_distinct_managers(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        s0, s1 = router.session("a"), router.session("b")
        t0, t1 = s0.transaction(), s1.transaction()
        t0.insert(k0, b"x")
        t1.insert(k1, b"y")  # no conflict: different shards
        m0 = router.shards[0]._lock_manager
        m1 = router.shards[1]._lock_manager
        assert m0 is not None and m1 is not None and m0 is not m1
        t0.commit()
        t1.commit()
        s0.close()
        s1.close()
        assert router.search(k0) == b"x" and router.search(k1) == b"y"

    def test_release_all_spans_every_shard(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        k0, k1 = _keys_on(0, 2, 1)[0], _keys_on(1, 2, 1)[0]
        session = router.session("w")
        txn = session.transaction()
        txn.insert(k0, b"x")
        txn.insert(k1, b"y")
        assert router.lock_manager.release_all(session.sid) > 0
        # Idempotent once everything is gone.
        assert router.lock_manager.release_all(session.sid) == 0
        txn.rollback()
        session.close()

    def test_wait_edges_merge_across_shards(self):
        router = ShardRouter.create(_config(), 2, scheme="fast")
        assert router.lock_manager.wait_edges() == {}
        assert router.lock_manager.find_deadlock(1) is None


class TestPerShardPageCaches:
    def test_cache_off_router_has_no_caches(self):
        router = ShardRouter.create(_config(), nshards=2)
        assert router.page_caches == ()

    def test_each_shard_fronts_its_own_cache(self):
        router = ShardRouter.create(
            _config(dram_cache_pages=4), nshards=2,
        )
        caches = router.page_caches
        assert len(caches) == 2
        assert len(set(map(id, caches))) == 2
        for shard, cache in zip(router.shards, caches):
            assert cache.store is shard.store

    def test_routed_reads_fill_the_owning_shards_cache(self):
        nshards = 2
        router = ShardRouter.create(
            _config(dram_cache_pages=4), nshards=nshards,
        )
        for shard_no in range(nshards):
            for key in _keys_on(shard_no, nshards, 4):
                router.insert(key, b"v" * 16)
        fills_before = router.obs.registry.counters()["cache.fill"]
        for shard_no in range(nshards):
            for key in _keys_on(shard_no, nshards, 4):
                assert router.search(key) == b"v" * 16
        assert router.obs.registry.counters()["cache.fill"] > fills_before
        assert all(len(cache) > 0 for cache in router.page_caches)

    def test_cross_shard_commit_invalidates_both_owners(self):
        nshards = 2
        router = ShardRouter.create(
            _config(dram_cache_pages=4), nshards=nshards,
        )
        key0 = _keys_on(0, nshards, 1)[0]
        key1 = _keys_on(1, nshards, 1)[0]
        router.insert(key0, b"old0" * 4)
        router.insert(key1, b"old1" * 4)
        # Warm both shards' caches with the pre-update images.
        assert router.search(key0) == b"old0" * 4
        assert router.search(key1) == b"old1" * 4
        with router.session() as session:
            with session.transaction() as txn:
                txn.update(key0, b"new0" * 4)
                txn.update(key1, b"new1" * 4)
        # The 2PC installs ran inside each owning shard's commit path,
        # so neither shard's cache may serve the pre-commit bytes.
        assert router.search(key0) == b"new0" * 4
        assert router.search(key1) == b"new1" * 4
