"""Unit tests for copy-on-write defragmentation."""

from repro.pm import DropAll, PersistentMemory
from repro.storage import (
    PAGE_LEAF,
    PageFullError,
    PageStore,
    defragment_into,
)


def fragmented_page(store, page_size=512):
    """A page with records interleaved with reclaimed holes."""
    page = store.allocate_page(PAGE_LEAF)
    offsets = []
    index = 0
    while True:
        try:
            offset = page.pending_insert(index, bytes([65 + index]) * 30)
            page.flush_record(offset, 30)  # records durable before header
            offsets.append(offset)
            index += 1
        except PageFullError:
            break
    store.pm.sfence()
    page.apply_header(page.pending_header_image(), persist=True)
    victims = list(range(0, index, 2))
    for removed, victim in enumerate(victims):
        page.pending_delete(victim - removed)
    page.apply_header(page.pending_header_image(), persist=True)
    for victim in victims:
        page.reclaim_cell(offsets[victim])
    return page


def test_defragment_preserves_records():
    pm = PersistentMemory(16 * 512)
    store = PageStore.format(pm, 0, 16, 512)
    page = fragmented_page(store)
    before = page.records()
    fresh = defragment_into(store, page)
    assert fresh.records() == before


def test_defragment_makes_space_contiguous():
    pm = PersistentMemory(16 * 512)
    store = PageStore.format(pm, 0, 16, 512)
    page = fragmented_page(store)
    total = page.total_free()
    fresh = defragment_into(store, page)
    assert fresh.contiguous_free() >= total - 8  # allow rounding slack
    fresh.pending_insert(0, b"big" * 20)  # now fits contiguously


def test_defragment_leaves_source_intact():
    pm = PersistentMemory(16 * 512)
    store = PageStore.format(pm, 0, 16, 512)
    page = fragmented_page(store)
    before = page.records()
    defragment_into(store, page)
    assert page.records() == before


def test_defragment_survives_crash_as_orphan():
    """A crash right after defragmentation (before the parent pointer
    swap) must leave the original page authoritative."""
    pm = PersistentMemory(16 * 512)
    store = PageStore.format(pm, 0, 16, 512)
    page = fragmented_page(store)
    before = page.records()
    fresh = defragment_into(store, page)
    fresh_no = store.page_no_of(fresh)
    pm.crash(DropAll())
    store = PageStore.attach(pm, 0)
    assert store.page(store.page_no_of(page)).records() == before
    # The orphan is reclaimable.
    freed = store.garbage_collect({store.page_no_of(page)})
    assert freed >= 1
    del fresh_no


def test_defragment_carries_pending_view():
    """Defragmenting a page mid-transaction copies the pending view
    (paper: same-transaction reinsert into an overflowing page)."""
    pm = PersistentMemory(16 * 512)
    store = PageStore.format(pm, 0, 16, 512)
    page = store.allocate_page(PAGE_LEAF)
    page.pending_insert(0, b"committed")
    page.apply_header(page.pending_header_image(), persist=True)
    page.pending_insert(1, b"uncommitted")
    fresh = defragment_into(store, page)
    assert fresh.records() == [b"committed", b"uncommitted"]
