"""Tests for the tiered DRAM page cache (``repro.storage.cache``).

Three layers of guarantees:

* unit — clock/second-chance eviction, invalidation, read-only frames,
  the free -> reallocate -> read regression;
* equivalence — a cache-on engine's committed state (scan, verify,
  arena bytes) is identical to a cache-off run of the same workload,
  deterministically and under hypothesis;
* default-off — ``dram_cache_pages=0`` builds no cache at all: no
  object, no counters, no trace events, bit-identical arenas and
  simulated time across repeat runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig, open_engine
from repro.storage import PAGE_INTERNAL, PAGE_LEAF
from repro.storage.cache import TieredPageCache

SMALL = dict(
    npages=256, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)

SCHEMES = ("fast", "fastplus")


def make_engine(scheme="fast", cache_pages=8, **overrides):
    params = dict(SMALL, scheme=scheme, dram_cache_pages=cache_pages)
    params.update(overrides)
    return open_engine(SystemConfig(**params))


def arena_image(pm):
    """The arena as the CPU sees it: durable bytes with the dirty and
    in-flight line overlays applied."""
    image = bytearray(pm._durable)
    for line, entry in pm._inflight.items():
        image[line * 64:(line + 1) * 64] = entry.data
    for line, entry in pm._dirty.items():
        image[line * 64:(line + 1) * 64] = entry.data
    return bytes(image)


def cache_counters(engine):
    counters = engine.obs.registry.counters()
    return {
        name: value for name, value in counters.items()
        if name.startswith("cache.")
    }


# ----------------------------------------------------------------------
# Unit: construction and the clock ring
# ----------------------------------------------------------------------


def test_capacity_must_be_positive():
    engine = make_engine(cache_pages=8)
    with pytest.raises(ValueError):
        TieredPageCache(engine.store, 0)


def test_engine_attaches_cache_only_when_configured():
    assert make_engine(cache_pages=0).page_cache is None
    cached = make_engine(cache_pages=8)
    assert isinstance(cached.page_cache, TieredPageCache)
    assert cached.page_cache.capacity == 8


def test_nvwal_opts_out_of_the_cache_tier():
    engine = make_engine(scheme="nvwal", cache_pages=8)
    assert engine.page_cache is None


def test_fill_then_lookup_hits():
    engine = make_engine()
    cache = engine.page_cache
    page = engine.store.allocate_page(PAGE_LEAF)
    no = engine.store.page_no_of(page)
    assert cache.lookup(no) is None          # cold: one miss
    filled = cache.fill(no)
    assert filled.page_type == PAGE_LEAF
    assert cache.lookup(no) is not None      # warm: one hit
    counters = cache_counters(engine)
    assert counters["cache.hit"] == 1
    assert counters["cache.miss"] == 1
    assert counters["cache.fill"] == 1


def test_cached_frames_are_read_only():
    engine = make_engine()
    store = engine.store
    no = store.page_no_of(store.allocate_page(PAGE_LEAF))
    frame = engine.page_cache.fill(no)
    with pytest.raises(TypeError):
        frame.apply_header(frame.header_image())


def test_eviction_respects_capacity_and_second_chance():
    engine = make_engine(cache_pages=2)
    store = engine.store
    cache = engine.page_cache
    nos = [store.page_no_of(store.allocate_page(PAGE_LEAF))
           for _ in range(3)]
    cache.fill(nos[0])
    cache.fill(nos[1])
    # Reference page 0: its clock bit earns it a second chance, so the
    # third fill must evict page 1 instead.
    assert cache.lookup(nos[0]) is not None
    cache.fill(nos[2])
    assert len(cache) == 2
    assert cache.lookup(nos[0]) is not None
    assert cache.lookup(nos[1]) is None
    counters = cache_counters(engine)
    assert counters["cache.evict"] == 1
    assert counters["cache.invalidate"] == 0


def test_invalidate_drops_the_frame():
    engine = make_engine()
    store = engine.store
    cache = engine.page_cache
    no = store.page_no_of(store.allocate_page(PAGE_LEAF))
    cache.fill(no)
    cache.invalidate(no)
    assert cache.lookup(no) is None
    assert cache_counters(engine)["cache.invalidate"] == 1
    # Invalidating an uncached page is a no-op, not an error.
    cache.invalidate(no)
    assert cache_counters(engine)["cache.invalidate"] == 1


def test_free_reallocate_read_regression():
    """A freed page's frame must die with the page: reallocation can
    give the number a brand-new identity, and a cached read afterwards
    must see the new page, not the pre-free image."""
    engine = make_engine()
    store = engine.store
    cache = engine.page_cache
    page = store.allocate_page(PAGE_LEAF)
    no = store.page_no_of(page)
    cache.fill(no)
    assert cache.lookup(no) is not None
    store.free_page(no)                       # on_page_freed fires
    assert cache.lookup(no) is None
    again = store.allocate_page(PAGE_INTERNAL)
    assert store.page_no_of(again) == no      # same number, new page
    assert cache.fill(no).page_type == PAGE_INTERNAL
    counters = cache_counters(engine)
    assert counters["cache.invalidate"] == 1


def test_garbage_collect_invalidates_swept_pages():
    engine = make_engine()
    store = engine.store
    cache = engine.page_cache
    page = store.allocate_page(PAGE_LEAF)
    no = store.page_no_of(page)
    cache.fill(no)
    # The page hangs off no tree root, so a GC sweep reclaims it — and
    # its frame must go with it.
    engine.garbage_collect()
    assert cache.lookup(no) is None


# ----------------------------------------------------------------------
# Equivalence: cache on == cache off for committed state
# ----------------------------------------------------------------------


def _apply_ops(engine, ops):
    for kind, key, value in ops:
        if kind == "insert":
            with engine.transaction() as txn:
                txn.insert(key, value, replace=True)
        elif kind == "update":
            with engine.transaction() as txn:
                txn.update(key, value)
        elif kind == "delete":
            with engine.transaction() as txn:
                txn.delete(key)
        else:
            engine.search(key)
    engine.drain_group_commit()


_DETERMINISTIC_OPS = (
    [("insert", b"k%03d" % i, b"v%03d" % i) for i in range(48)]
    + [("search", b"k%03d" % (i % 48), None) for i in range(96)]
    + [("update", b"k%03d" % i, b"w%03d" % i) for i in range(0, 48, 3)]
    + [("search", b"k%03d" % (i % 48), None) for i in range(48)]
    + [("delete", b"k%03d" % i, None) for i in range(0, 48, 7)]
    + [("search", b"k%03d" % (i % 48), None) for i in range(48)]
)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_cached_and_uncached_commit_identical_state(scheme):
    plain = make_engine(scheme, cache_pages=0)
    cached = make_engine(scheme, cache_pages=8)
    _apply_ops(plain, _DETERMINISTIC_OPS)
    _apply_ops(cached, _DETERMINISTIC_OPS)
    assert cached.page_cache is not None
    assert cache_counters(cached)["cache.hit"] > 0
    assert list(cached.scan()) == list(plain.scan())
    assert cached.verify() == plain.verify()
    # Reads never dirty the arena: the two runs' PM bytes are equal.
    assert arena_image(cached.pm) == arena_image(plain.pm)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_cache_off_runs_are_bit_identical(scheme):
    """``dram_cache_pages=0`` must behave as if the cache layer did not
    exist: no counters, no trace events, and repeat runs agree on every
    arena byte and every simulated nanosecond."""
    first = make_engine(scheme, cache_pages=0)
    second = make_engine(scheme, cache_pages=0)
    _apply_ops(first, _DETERMINISTIC_OPS)
    _apply_ops(second, _DETERMINISTIC_OPS)
    assert cache_counters(first) == {}
    assert arena_image(first.pm) == arena_image(second.pm)
    assert first.pm.clock.now_ns == second.pm.clock.now_ns


_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "search"]),
        st.integers(min_value=0, max_value=23),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=60,
)


@given(ops=_ops_strategy)
@settings(max_examples=25, deadline=None)
def test_cache_equivalence_property(ops):
    decoded = [
        (kind, b"key%02d" % key, bytes([fill]) * 24)
        for kind, key, fill in ops
    ]
    plain = make_engine("fast", cache_pages=0)
    cached = make_engine("fast", cache_pages=4)
    _apply_ops(plain, decoded)
    _apply_ops(cached, decoded)
    assert list(cached.scan()) == list(plain.scan())
    assert arena_image(cached.pm) == arena_image(plain.pm)


# ----------------------------------------------------------------------
# Golden counters: the deterministic workload's exact cache profile
# ----------------------------------------------------------------------

# Keyed by (scheme, capacity): a roomy cache exercises the
# invalidation path (commits drop frames), a two-frame cache exercises
# the clock eviction path.  Both schemes read through the same tree
# shape under this workload, so their profiles happen to agree — the
# per-scheme parametrization is what pins that down.
_GOLDEN = {
    ("fast", 8): {
        "cache.hit": 374, "cache.miss": 10, "cache.fill": 10,
        "cache.evict": 0, "cache.invalidate": 6,
    },
    ("fastplus", 8): {
        "cache.hit": 374, "cache.miss": 10, "cache.fill": 10,
        "cache.evict": 0, "cache.invalidate": 6,
    },
    ("fast", 2): {
        "cache.hit": 366, "cache.miss": 18, "cache.fill": 18,
        "cache.evict": 14, "cache.invalidate": 2,
    },
    ("fastplus", 2): {
        "cache.hit": 366, "cache.miss": 18, "cache.fill": 18,
        "cache.evict": 14, "cache.invalidate": 2,
    },
}


@pytest.mark.parametrize("capacity", (8, 2))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_golden_cache_counters(scheme, capacity):
    engine = make_engine(scheme, cache_pages=capacity)
    _apply_ops(engine, _DETERMINISTIC_OPS)
    assert cache_counters(engine) == _GOLDEN[scheme, capacity]
