"""MVCC version chains: snapshot visibility, watermark GC, zero locks.

Read-only sessions (``engine.session(read_only=True)``) run snapshot
transactions over :mod:`repro.storage.versions`: each pins a snapshot
timestamp at begin, resolves every page read against the latest
version with commit timestamp ≤ that pin, and acquires no locks at
all.  These tests cover the visibility rules, the watermark garbage
collector (reclaim only past the minimum active snapshot), and the
do-nothing guarantee: with no reader open, the version machinery is
never even constructed.
"""

import pytest

from repro.core import TransactionError, open_engine
from repro.obs import trace as ev

from tests.core.conftest import small_config

SCHEMES = ("fast", "fastplus", "nvwal")


@pytest.fixture(params=SCHEMES)
def engine(request):
    return open_engine(small_config(scheme=request.param))


class TestSnapshotVisibility:
    def test_snapshot_pins_state_across_writer_commits(self, engine):
        engine.insert(b"k", b"old")
        reader = engine.session("r", read_only=True)
        txn = reader.transaction()
        assert txn.search(b"k") == b"old"
        with engine.session("w") as writer:
            writer.insert(b"k", b"new", replace=True)
            # The open snapshot stays pinned at its begin timestamp.
            assert txn.search(b"k") == b"old"
            txn.commit()
            # A fresh snapshot pins the new commit frontier.
            txn2 = reader.transaction()
            assert txn2.search(b"k") == b"new"
            txn2.commit()
        reader.close()

    def test_uncommitted_writes_invisible_to_snapshot(self, engine):
        engine.insert(b"k", b"old")
        with engine.session("w") as writer:
            wtxn = writer.transaction()
            wtxn.insert(b"k", b"dirty", replace=True)
            with engine.session("r", read_only=True) as reader:
                rtxn = reader.transaction()
                assert rtxn.search(b"k") == b"old"
                wtxn.commit()
                # Still the pre-commit image: the commit published a
                # version younger than the pinned snapshot.
                assert rtxn.search(b"k") == b"old"
                rtxn.commit()

    def test_snapshot_transactions_cannot_write(self, engine):
        engine.insert(b"k", b"v")
        with engine.session("r", read_only=True) as reader:
            txn = reader.transaction()
            with pytest.raises(TransactionError):
                txn.insert(b"x", b"y")
            with pytest.raises(TransactionError):
                txn.update(b"k", b"y")
            with pytest.raises(TransactionError):
                txn.delete(b"k")
            with pytest.raises(TransactionError):
                txn.create_tree(1)
            # The failed writes did not poison the snapshot.
            assert txn.search(b"k") == b"v"
            txn.commit()

    def test_readers_touch_no_lock_state(self, engine):
        engine.insert(b"k", b"v")
        with engine.session("r", read_only=True) as reader:
            txn = reader.transaction()
            assert txn.search(b"k") == b"v"
            txn.commit()
        # No lock manager was ever instantiated, no lock events traced —
        # zero IS/S traffic, not just zero conflicts.
        assert engine._lock_manager is None
        kinds = {record[2] for record in engine.obs.trace.events()}
        assert ev.LOCK_ACQUIRE not in kinds
        assert ev.SNAPSHOT_BEGIN in kinds
        assert ev.SNAPSHOT_READ in kinds
        assert ev.SNAPSHOT_END in kinds
        assert engine.registry.value("mvcc.snapshot_reads") > 0

    def test_no_reader_means_no_version_state(self, engine):
        with engine.session("w") as writer:
            for i in range(6):
                writer.insert(b"k%02d" % i, b"v" * 24)
        # Writer-only runs never construct the version manager (and so
        # stay byte-identical to the pre-MVCC engine).
        assert engine._versions is None
        assert engine.registry.value("mvcc.snapshot_reads") == 0


class TestWatermarkGC:
    def test_watermark_is_minimum_active_snapshot(self, engine):
        engine.insert(b"k", b"v0")
        versions = engine.version_manager
        older = engine.session("older", read_only=True)
        otxn = older.transaction()
        assert otxn.search(b"k") == b"v0"
        with engine.session("w") as writer:
            writer.insert(b"k", b"v1", replace=True)
        newer = engine.session("newer", read_only=True)
        ntxn = newer.transaction()
        assert ntxn.ctx.snapshot_ts > otxn.ctx.snapshot_ts
        assert versions.watermark() == otxn.ctx.snapshot_ts
        # Closing the *newer* snapshot must not advance the watermark
        # past the older one.
        ntxn.commit()
        newer.close()
        assert versions.watermark() == otxn.ctx.snapshot_ts
        otxn.commit()
        older.close()
        assert versions.watermark() == versions.last_commit_ts

    def test_long_lived_reader_pins_versions_under_churn(self, engine):
        engine.insert(b"k", b"v-original")
        with engine.session("r", read_only=True) as reader:
            txn = reader.transaction()
            assert txn.search(b"k") == b"v-original"
            with engine.session("w") as writer:
                for i in range(5):
                    writer.insert(b"k", b"v-churn-%d" % i, replace=True)
            versions = engine.version_manager
            # Every churn commit retained at least the leaf pre-image.
            assert versions.versions_live() >= 5
            assert engine.registry.value("mvcc.versions_live") >= 5
            # The reader still resolves its pinned version.
            assert txn.search(b"k") == b"v-original"
            txn.commit()

    def test_gc_with_active_reader_reclaims_nothing_it_can_see(self, engine):
        engine.insert(b"k", b"v0")
        with engine.session("r", read_only=True) as reader:
            txn = reader.transaction()
            assert txn.search(b"k") == b"v0"
            with engine.session("w") as writer:
                for i in range(3):
                    writer.insert(b"k", b"v%d" % (i + 1), replace=True)
            versions = engine.version_manager
            live_before = versions.versions_live()
            assert live_before > 0
            # Explicit collection is a no-op while the snapshot pins
            # the chain (every entry's superseded_ts > watermark).
            assert versions.collect() == 0
            assert versions.versions_live() == live_before
            assert txn.search(b"k") == b"v0"
            txn.commit()

    def test_gc_after_last_reader_reclaims_everything(self, engine):
        engine.insert(b"k", b"v0")
        reader = engine.session("r", read_only=True)
        txn = reader.transaction()
        assert txn.search(b"k") == b"v0"
        with engine.session("w") as writer:
            for i in range(4):
                writer.insert(b"k", b"v%d" % (i + 1), replace=True)
        versions = engine.version_manager
        retained = versions.versions_live()
        assert retained >= 4
        # Closing the last snapshot advances the watermark to the
        # commit frontier and reclaims every superseded version.
        txn.commit()
        reader.close()
        assert engine.registry.value("mvcc.gc_reclaimed") >= retained
        assert versions.versions_live() == 0
        assert engine.registry.value("mvcc.versions_live") == 0
        # Per page: back down to exactly the live version.
        root_no = versions.resolve_root(0, versions.last_commit_ts)
        assert versions.live_versions(root_no) == 1


class TestSchemeGating:
    def test_naive_rejects_read_only_sessions(self):
        engine = open_engine(small_config(scheme="naive"))
        with pytest.raises(TransactionError):
            engine.session("r", read_only=True)
