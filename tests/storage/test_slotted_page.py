"""Unit and property tests for the failure-atomic slotted page."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm import RTM
from repro.pm import CACHE_LINE, DropAll, PersistentMemory
from repro.storage import (
    PAGE_LEAF,
    PageFullError,
    RecordTooLargeError,
    SlottedPage,
    max_header_records,
)

PAGE_SIZE = 1024


def make_page(header_capacity=None, page_size=PAGE_SIZE):
    pm = PersistentMemory(64 * 1024)
    page = SlottedPage.initialize(
        pm, 0, page_size, PAGE_LEAF, header_capacity=header_capacity
    )
    return pm, page


def commit(page):
    """Commit pending changes the simplest correct way (direct apply)."""
    page.apply_header(page.pending_header_image(), persist=True)


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------


def test_fresh_page_is_empty():
    _, page = make_page()
    assert page.nrecords == 0
    assert page.content_start == PAGE_SIZE
    assert page.records() == []


def test_insert_then_read_back():
    _, page = make_page()
    page.pending_insert(0, b"hello")
    commit(page)
    assert page.nrecords == 1
    assert page.record(0) == b"hello"


def test_records_keep_slot_order():
    _, page = make_page()
    page.pending_insert(0, b"bb")
    page.pending_insert(0, b"aa")   # insert before
    page.pending_insert(2, b"cc")   # insert after
    commit(page)
    assert page.records() == [b"aa", b"bb", b"cc"]


def test_content_area_grows_backward():
    _, page = make_page()
    first = page.pending_insert(0, b"x" * 10)
    second = page.pending_insert(1, b"y" * 10)
    assert second < first < PAGE_SIZE


def test_max_header_records_matches_paper():
    # (64 - 8) / 2 = 28 records per cache-line-sized slot header.
    assert max_header_records(CACHE_LINE) == 28


def test_record_too_large_rejected():
    _, page = make_page()
    with pytest.raises(RecordTooLargeError):
        page.pending_insert(0, b"z" * PAGE_SIZE)


def test_page_full_raises():
    _, page = make_page(page_size=256)
    with pytest.raises(PageFullError):
        for i in range(100):
            page.pending_insert(i, b"w" * 40)


def test_header_capacity_enforced():
    _, page = make_page(header_capacity=28)
    for i in range(28):
        page.pending_insert(i, b"k")
    with pytest.raises(PageFullError):
        page.pending_insert(28, b"k")


# ----------------------------------------------------------------------
# Pending-header protocol (the paper's two-phase mutation)
# ----------------------------------------------------------------------


def test_pending_changes_invisible_in_durable_header():
    pm, page = make_page()
    page.pending_insert(0, b"ghost")
    fresh_view = SlottedPage(pm, 0, PAGE_SIZE)
    assert fresh_view.nrecords == 0


def test_pending_view_sees_own_changes():
    _, page = make_page()
    page.pending_insert(0, b"mine")
    assert page.nrecords == 1
    assert page.record(0) == b"mine"


def test_discard_pending_rolls_back():
    _, page = make_page()
    page.pending_insert(0, b"keep")
    commit(page)
    page.pending_insert(1, b"drop")
    page.discard_pending()
    assert page.records() == [b"keep"]
    assert page.free_list_consistent()


def test_crash_before_header_apply_is_invisible():
    pm, page = make_page()
    page.pending_insert(0, b"committed")
    commit(page)
    offset = page.pending_insert(1, b"uncommitted")
    page.flush_record(offset, len(b"uncommitted"))
    pm.sfence()
    pm.crash(DropAll())
    survivor = SlottedPage(pm, 0, PAGE_SIZE)
    assert survivor.records() == [b"committed"]


def test_update_is_out_of_place():
    pm, page = make_page()
    old_offset = page.pending_insert(0, b"version1")
    commit(page)
    new_offset = page.pending_update(0, b"version2")
    assert new_offset != old_offset
    # Old version still intact in PM until the new header commits.
    assert page.read_cell(old_offset) == b"version1"
    commit(page)
    assert page.record(0) == b"version2"


def test_delete_removes_slot():
    _, page = make_page()
    page.pending_insert(0, b"a")
    page.pending_insert(1, b"b")
    commit(page)
    page.pending_delete(0)
    commit(page)
    assert page.records() == [b"b"]


def test_pending_header_image_round_trip():
    _, page = make_page()
    page.pending_insert(0, b"r")
    image = page.pending_header_image()
    assert len(image) == 8 + 2  # fixed header + one slot
    page.apply_header(image, persist=True)
    assert page.record(0) == b"r"


def test_pending_header_image_requires_pending():
    _, page = make_page()
    with pytest.raises(RuntimeError):
        page.pending_header_image()


# ----------------------------------------------------------------------
# In-place commit via RTM
# ----------------------------------------------------------------------


def test_commit_pending_inplace():
    pm, page = make_page(header_capacity=28)
    rtm = RTM(pm)
    page.pending_insert(0, b"rtm-record")
    page.commit_pending_inplace(rtm)
    assert pm.stats.rtm_commits == 1
    assert page.records() == [b"rtm-record"]
    assert pm.is_durably_clean(0, 64)


def test_inplace_commit_is_durable():
    pm, page = make_page(header_capacity=28)
    rtm = RTM(pm)
    offset = page.pending_insert(0, b"durable")
    page.flush_record(offset, 7)
    pm.sfence()
    page.commit_pending_inplace(rtm)
    pm.crash(DropAll())
    survivor = SlottedPage(pm, 0, PAGE_SIZE)
    assert survivor.records() == [b"durable"]


def test_inplace_commit_header_never_tears():
    """With line-atomic writeback (the paper's assumption), a crash
    right after the RTM commit but before the flush leaves the header
    either fully old or fully new."""
    from repro.pm import PersistSubset

    for survives in (set(), {(0, 0)}):
        pm = PersistentMemory(64 * 1024, atomic_granularity=CACHE_LINE)
        page = SlottedPage.initialize(pm, 0, PAGE_SIZE, PAGE_LEAF, header_capacity=28)
        rtm = RTM(pm)
        for i in range(3):
            page.pending_insert(i, b"x%d" % i)
        image = page.pending_header_image()
        rtm.execute(lambda txn: txn.write(page.base, image))
        pm.crash(PersistSubset(survives))
        survivor = SlottedPage(pm, 0, PAGE_SIZE)
        assert survivor.nrecords in (0, 3)


# ----------------------------------------------------------------------
# Free list
# ----------------------------------------------------------------------


def test_reclaimed_cell_is_reused():
    _, page = make_page()
    offset = page.pending_insert(0, b"dead" * 8)
    page.pending_insert(1, b"live")
    commit(page)
    page.pending_delete(0)
    commit(page)
    page.reclaim_cell(offset)
    assert not page.free_list_consistent() is False or True  # sanity below
    assert page.free_list_consistent()
    # Exhaust contiguous space, then the freed chunk must be used.
    new_offset = None
    page.begin_pending()
    while True:
        try:
            new_offset = page.pending_insert(page.nrecords, b"fill" * 8)
        except PageFullError:
            break
        if new_offset == offset:
            break
    assert new_offset == offset


def test_free_list_consistency_check_detects_leak():
    _, page = make_page()
    offset = page.pending_insert(0, b"gone" * 4)
    page.pending_insert(1, b"live")
    commit(page)
    page.pending_delete(0)
    commit(page)
    # Cell dropped but not reclaimed: the free list under-accounts.
    assert not page.free_list_consistent()
    page.rebuild_free_list()
    assert page.free_list_consistent()
    del offset


def test_rebuild_free_list_after_crash():
    pm, page = make_page()
    keep_offsets = []
    for i in range(4):
        keep_offsets.append(page.pending_insert(i, bytes([i]) * 20))
    commit(page)
    page.pending_delete(1)
    commit(page)
    pm.crash()
    survivor = SlottedPage(pm, 0, PAGE_SIZE)
    survivor.rebuild_free_list()
    assert survivor.free_list_consistent()
    # The reclaimed gap is reusable.
    survivor.pending_insert(survivor.nrecords, b"n" * 8)


def test_needs_defrag_flag():
    _, page = make_page(page_size=256)
    offsets = []
    index = 0
    while True:
        try:
            offsets.append(page.pending_insert(index, b"f" * 28))
            index += 1
        except PageFullError:
            break
    commit(page)
    # Free every other record -> plenty of total space, no contiguity.
    victims = list(range(0, index, 2))
    for shift, victim in enumerate(victims):
        page.pending_delete(victim - shift)
    commit(page)
    for victim in victims:
        page.reclaim_cell(offsets[victim])
    with pytest.raises(PageFullError) as excinfo:
        page.pending_insert(0, b"g" * 60)
    assert excinfo.value.needs_defrag


def test_chunk_remainder_absorbed_into_cell():
    _, page = make_page()
    big = page.pending_insert(0, b"B" * 30)  # 34-byte chunk once freed
    page.pending_insert(1, b"live")
    commit(page)
    page.pending_delete(0)
    commit(page)
    page.reclaim_cell(big)
    # Free-list allocation is preferred; a 28-byte payload needs 32
    # bytes, so the 34-byte chunk is used and its 2-byte remainder
    # (too small for a chunk header) is absorbed into the cell.
    offset = page.pending_insert(page.nrecords, b"C" * 28)
    assert offset == big
    assert page.cell_allocated_size(offset) == 34
    commit(page)
    assert page.free_list_consistent()


def test_free_chunks_preferred_over_contiguous():
    """SQLite-style allocation order: freeblocks before the gap, so
    the content area does not creep into the offset array's room."""
    _, page = make_page()
    first = page.pending_insert(0, b"A" * 20)
    page.pending_insert(1, b"keep")
    commit(page)
    contiguous_before = page.contiguous_free()
    page.pending_delete(0)
    commit(page)
    page.reclaim_cell(first)
    offset = page.pending_insert(page.nrecords, b"B" * 20)
    assert offset == first                      # chunk reused
    assert page.contiguous_free() == contiguous_before  # gap untouched


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]),
                  st.integers(0, 100),
                  st.binary(min_size=1, max_size=24)),
        max_size=40,
    )
)
def test_page_matches_model_under_random_ops(ops):
    """A slotted page committed after every operation behaves exactly
    like a Python list."""
    pm = PersistentMemory(64 * 1024)
    page = SlottedPage.initialize(pm, 0, 2048, PAGE_LEAF)
    model = []
    for op, pos, payload in ops:
        try:
            if op == "insert":
                slot = pos % (len(model) + 1)
                page.pending_insert(slot, payload)
                commit(page)
                model.insert(slot, payload)
            elif model and op == "delete":
                slot = pos % len(model)
                old = page.slot_offset(slot)
                page.pending_delete(slot)
                commit(page)
                page.reclaim_cell(old)
                model.pop(slot)
            elif model and op == "update":
                slot = pos % len(model)
                old = page.slot_offset(slot)
                page.pending_update(slot, payload)
                commit(page)
                page.reclaim_cell(old)
                model[slot] = payload
        except PageFullError:
            continue
        assert page.records() == model
        assert page.free_list_consistent()


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=40), max_size=28))
def test_header_image_encode_decode_identity(payloads):
    pm = PersistentMemory(64 * 1024)
    page = SlottedPage.initialize(pm, 0, 4096, PAGE_LEAF)
    for i, payload in enumerate(payloads):
        page.pending_insert(i, payload)
    if payloads:
        image = page.pending_header_image()
        page.apply_header(image, persist=True)
        assert page.header_image() == image
    assert page.records() == payloads
