"""Connections: the SQL face of engine sessions.

``Database.connect()`` hands out an independent transaction scope over
the same engine and catalog, serialized by the lock manager — several
"clients" of one database, the shape SQLite calls connections.
"""

import pytest

from repro.core import LockConflict, SystemConfig
from repro.db import Database, SqlError


@pytest.fixture
def db():
    database = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    return database


class TestConnectionLifecycle:
    def test_connect_shares_engine_and_catalog(self, db):
        conn = db.connect("reader")
        assert conn.engine is db.engine
        assert conn.catalog is db.catalog
        assert conn.session is not None
        assert conn.session.name == "reader"
        conn.close()

    def test_connection_sees_committed_data(self, db):
        db.execute("INSERT INTO t VALUES (1, 'one')")
        with db.connect() as conn:
            assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
                [("one",)]

    def test_close_releases_session(self, db):
        conn = db.connect()
        session = conn.session
        conn.close()
        assert session.closed
        assert db.engine.sessions() == []

    def test_close_rolls_back_open_transaction(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (9, 'gone')")
        conn.close()
        assert db.execute("SELECT COUNT(*) FROM t").rows == [(0,)]


class TestConcurrentConnections:
    def test_two_connections_interleave_transactions(self, db):
        # Seed enough rows that the two hot rows live on different
        # pages (page-granularity locks).
        for i in range(40):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 40))
        c1, c2 = db.connect("alice"), db.connect("bob")
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c1.execute("UPDATE t SET v = 'a' WHERE id = 0")
        c2.execute("UPDATE t SET v = 'b' WHERE id = 39")
        c1.execute("COMMIT")
        c2.execute("COMMIT")
        assert db.execute("SELECT v FROM t WHERE id = 0").rows == [("a",)]
        assert db.execute("SELECT v FROM t WHERE id = 39").rows == [("b",)]
        c1.close(), c2.close()

    def test_conflicting_connections_raise_lock_conflict(self, db):
        db.execute("INSERT INTO t VALUES (1, 'orig')")
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("UPDATE t SET v = 'first' WHERE id = 1")
        c2.execute("BEGIN")
        with pytest.raises(LockConflict):
            c2.execute("UPDATE t SET v = 'second' WHERE id = 1")
        c1.execute("COMMIT")
        # The loser retries after the winner commits.
        c2.execute("UPDATE t SET v = 'second' WHERE id = 1")
        c2.execute("COMMIT")
        assert db.execute("SELECT v FROM t WHERE id = 1").rows == \
            [("second",)]
        c1.close(), c2.close()

    def test_connection_transaction_independent_of_parent(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        assert conn.in_transaction
        assert not db.in_transaction
        with pytest.raises(SqlError):
            conn.execute("BEGIN")  # still one txn per connection
        conn.execute("ROLLBACK")
        conn.close()


class TestReadOnlyConnections:
    def test_read_only_connection_reads_committed_data(self, db):
        db.execute("INSERT INTO t VALUES (1, 'one')")
        with db.connect("snap", read_only=True) as conn:
            assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
                [("one",)]

    def test_read_only_connection_rejects_writes(self, db):
        from repro.core import TransactionError

        with db.connect("snap", read_only=True) as conn:
            with pytest.raises(TransactionError):
                conn.execute("INSERT INTO t VALUES (2, 'nope')")

    def test_read_only_connection_never_blocks_on_writer(self, db):
        # A writer holding an X lock on the row's page cannot stall a
        # snapshot connection — it reads the committed version instead.
        db.execute("INSERT INTO t VALUES (1, 'orig')")
        writer = db.connect("writer")
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 'dirty' WHERE id = 1")
        with db.connect("snap", read_only=True) as conn:
            assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
                [("orig",)]
            writer.execute("COMMIT")
            # Autocommit snapshots pin per statement: the next SELECT
            # begins a fresh snapshot at the new commit frontier.
            assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
                [("dirty",)]
        writer.close()

    def test_read_only_transaction_pins_one_snapshot(self, db):
        db.execute("INSERT INTO t VALUES (1, 'orig')")
        conn = db.connect("snap", read_only=True)
        conn.execute("BEGIN")
        assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
            [("orig",)]
        db.execute("UPDATE t SET v = 'newer' WHERE id = 1")
        # Same BEGIN … COMMIT scope: still the pinned snapshot.
        assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
            [("orig",)]
        conn.execute("COMMIT")
        assert conn.execute("SELECT v FROM t WHERE id = 1").rows == \
            [("newer",)]
        conn.close()
