"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.db.errors import ParseError
from repro.db.sql import ast
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def test_tokenize_kinds():
    assert kinds("SELECT a FROM t WHERE x = 1.5") == [
        "KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD",
        "IDENT", "OP", "FLOAT",
    ]


def test_string_literal_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"


def test_blob_literal():
    tokens = tokenize("x'DEADBEEF'")
    assert tokens[0].kind == "BLOB"
    assert tokens[0].value == bytes.fromhex("DEADBEEF")


def test_quoted_identifier():
    tokens = tokenize('"Select"')
    assert tokens[0].kind == "IDENT"
    assert tokens[0].value == "Select"


def test_comments_skipped():
    assert kinds("SELECT -- comment\n 1") == ["KEYWORD", "INT"]


def test_number_forms():
    values = [t.value for t in tokenize("1 2.5 .5 1e3 1.5E-2")[:-1]]
    assert values == [1, 2.5, 0.5, 1000.0, 0.015]


def test_unterminated_string_raises():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_bad_character_raises():
    with pytest.raises(ParseError):
        tokenize("SELECT @")


def test_keywords_case_insensitive():
    assert tokenize("select")[0].value == "SELECT"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def node(sql):
    return parse(sql).node


def test_parse_create_table():
    stmt = node("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, w REAL)")
    assert isinstance(stmt, ast.CreateTable)
    assert stmt.name == "t"
    assert [c.name for c in stmt.columns] == ["id", "name", "w"]
    assert stmt.columns[0].primary_key
    assert not stmt.columns[1].primary_key


def test_parse_create_if_not_exists():
    stmt = node("CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY)")
    assert stmt.if_not_exists


def test_parse_drop():
    assert node("DROP TABLE t").name == "t"
    assert node("DROP TABLE IF EXISTS t").if_exists


def test_parse_insert_values():
    stmt = node("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    assert isinstance(stmt, ast.Insert)
    assert len(stmt.rows) == 2
    assert stmt.columns is None


def test_parse_insert_with_columns_and_params():
    stmt = parse("INSERT INTO t (id, name) VALUES (?, ?)")
    assert stmt.node.columns == ("id", "name")
    assert stmt.param_count == 2


def test_parse_insert_or_replace():
    assert node("INSERT OR REPLACE INTO t VALUES (1)").replace


def test_parse_select_star():
    stmt = node("SELECT * FROM t")
    assert stmt.items == (("*", None),)
    assert stmt.where is None


def test_parse_select_where_order_limit():
    stmt = node(
        "SELECT a, b AS bee FROM t WHERE a >= 5 AND b < 9 "
        "ORDER BY a DESC LIMIT 10 OFFSET 2"
    )
    assert stmt.order_by == (ast.OrderBy("a", True),)
    assert isinstance(stmt.limit, ast.Literal)
    assert isinstance(stmt.offset, ast.Literal)
    assert stmt.items[1][1] == "bee"


def test_parse_aggregates():
    stmt = node("SELECT COUNT(*), MAX(age) FROM t")
    assert stmt.items[0][0] == ast.Aggregate("COUNT", None)
    assert stmt.items[1][0] == ast.Aggregate("MAX", ast.ColumnRef("age"))


def test_parse_update():
    stmt = node("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
    assert isinstance(stmt, ast.Update)
    assert stmt.assignments[0][0] == "a"


def test_parse_delete():
    stmt = node("DELETE FROM t WHERE id BETWEEN 1 AND 5")
    assert isinstance(stmt.where, ast.Between)


def test_parse_txn_statements():
    assert isinstance(node("BEGIN"), ast.Begin)
    assert isinstance(node("BEGIN TRANSACTION"), ast.Begin)
    assert isinstance(node("COMMIT"), ast.Commit)
    assert isinstance(node("ROLLBACK"), ast.Rollback)


def test_expression_precedence():
    stmt = node("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
    assert stmt.where.op == "OR"
    assert stmt.where.right.op == "AND"


def test_arithmetic_precedence():
    stmt = node("SELECT a FROM t WHERE a = 1 + 2 * 3")
    plus = stmt.where.right
    assert plus.op == "+"
    assert plus.right.op == "*"


def test_is_null_and_not_between():
    where = node("SELECT a FROM t WHERE a IS NOT NULL").where
    assert isinstance(where, ast.IsNull) and where.negated
    where = node("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2").where
    assert isinstance(where, ast.Between) and where.negated


def test_parenthesised_expression():
    where = node("SELECT a FROM t WHERE (a = 1 OR a = 2) AND b = 3").where
    assert where.op == "AND"
    assert where.left.op == "OR"


def test_trailing_semicolon_ok():
    node("SELECT * FROM t;")


def test_errors():
    for bad in (
        "SELECT",                       # incomplete
        "CREATE TABLE t",               # missing columns
        "INSERT t VALUES (1)",          # missing INTO
        "SELECT * FROM t WHERE",        # dangling WHERE
        "UPDATE t SET",                 # dangling SET
        "SELECT * FROM t alias 42",     # trailing after alias
        "SELECT SUM(*) FROM t",         # SUM(*) invalid
        "FROB x",                       # unknown statement
    ):
        with pytest.raises(ParseError):
            parse(bad)


def test_param_count_tracked():
    assert parse("SELECT * FROM t WHERE a = ? AND b = ?").param_count == 2


def test_parse_create_index():
    stmt = node("CREATE INDEX by_dept ON emp (dept)")
    assert isinstance(stmt, ast.CreateIndex)
    assert (stmt.name, stmt.table, stmt.columns) == ("by_dept", "emp", ("dept",))
    assert not stmt.if_not_exists
    assert node("CREATE INDEX IF NOT EXISTS i ON t (c)").if_not_exists


def test_parse_create_multicolumn_index():
    stmt = node("CREATE INDEX ix ON t (a, b, c)")
    assert stmt.columns == ("a", "b", "c")


def test_parse_like_in_functions():
    where = node("SELECT a FROM t WHERE a LIKE 'x%'").where
    assert isinstance(where, ast.Like) and not where.negated
    where = node("SELECT a FROM t WHERE a NOT LIKE 'x%'").where
    assert where.negated
    where = node("SELECT a FROM t WHERE a IN (1, 2, 3)").where
    assert isinstance(where, ast.InList) and len(where.options) == 3
    where = node("SELECT a FROM t WHERE a NOT IN (1)").where
    assert where.negated
    expr = node("SELECT LENGTH(a), COALESCE(b, 0) FROM t").items
    assert expr[0][0] == ast.FuncCall("LENGTH", (ast.ColumnRef("a"),))
    assert expr[1][0].name == "COALESCE"


def test_parse_unknown_function_rejected():
    with pytest.raises(ParseError):
        parse("SELECT FROBNICATE(a) FROM t")


def test_parse_drop_index():
    stmt = node("DROP INDEX by_dept")
    assert isinstance(stmt, ast.DropIndex)
    assert node("DROP INDEX IF EXISTS by_dept").if_exists


def test_parse_group_by():
    stmt = node("SELECT g, COUNT(*) FROM t GROUP BY g")
    assert stmt.group_by == "g"
    assert stmt.having is None


def test_parse_group_by_having_order():
    stmt = node(
        "SELECT g, SUM(x) FROM t WHERE x > 0 GROUP BY g "
        "HAVING COUNT(*) > 2 ORDER BY g DESC LIMIT 3"
    )
    assert stmt.group_by == "g"
    assert stmt.having is not None
    assert stmt.order_by[0].descending
    assert stmt.limit is not None


def test_parse_join():
    stmt = node(
        "SELECT e.name FROM emp e JOIN dept AS d ON e.dept_id = d.id "
        "ORDER BY e.id DESC, d.id"
    )
    assert stmt.table_alias == "e"
    assert stmt.join.table == "dept"
    assert stmt.join.alias == "d"
    assert isinstance(stmt.join.on, ast.Binary)
    assert stmt.order_by[0] == ast.OrderBy("e.id", True)
    assert stmt.order_by[1] == ast.OrderBy("d.id", False)


def test_parse_qualified_column_refs():
    where = node("SELECT a FROM t WHERE t.a = 1").where
    assert where.left == ast.ColumnRef("a", table="t")


def test_parse_create_index_errors():
    for bad in ("CREATE INDEX ON t (c)", "CREATE INDEX i ON t",
                "CREATE INDEX i t (c)", "DROP INDEX"):
        with pytest.raises(ParseError):
            parse(bad)


def test_parse_vacuum_and_savepoints():
    assert isinstance(node("VACUUM"), ast.Vacuum)
    assert node("SAVEPOINT sp").name == "sp"
    assert node("RELEASE SAVEPOINT sp").name == "sp"
    assert node("RELEASE sp").name == "sp"
    assert isinstance(node("ROLLBACK TO sp"), ast.RollbackTo)
    assert isinstance(node("ROLLBACK TO SAVEPOINT sp"), ast.RollbackTo)
    assert isinstance(node("ROLLBACK"), ast.Rollback)
