"""End-to-end tests of the SQL database over every durable engine."""

import pytest

from repro.core import SystemConfig
from repro.db import (
    ConstraintError,
    Database,
    SchemaError,
    SqlError,
    TypeError_,
)


def small_config(scheme="fastplus", **overrides):
    params = dict(
        scheme=scheme, npages=512, page_size=1024, log_bytes=32768,
        heap_bytes=1 << 21, dram_bytes=128 * 1024,
    )
    params.update(overrides)
    return SystemConfig(**params)


@pytest.fixture(params=["fast", "fastplus", "nvwal"])
def db(request):
    database = Database.open(small_config(scheme=request.param))
    database.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)"
    )
    return database


# ----------------------------------------------------------------------
# DDL
# ----------------------------------------------------------------------


def test_create_and_list_tables(db):
    db.execute("CREATE TABLE other (k TEXT PRIMARY KEY, v BLOB)")
    assert db.tables() == ["other", "users"]


def test_create_duplicate_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")


def test_create_if_not_exists(db):
    db.execute("CREATE TABLE IF NOT EXISTS users (id INTEGER PRIMARY KEY)")


def test_drop_table(db):
    db.execute("DROP TABLE users")
    assert db.tables() == []
    with pytest.raises(SchemaError):
        db.query("SELECT * FROM users")


def test_drop_if_exists_missing_ok(db):
    db.execute("DROP TABLE IF EXISTS nothere")


def test_table_requires_single_pk(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE TABLE bad (a INTEGER, b TEXT)")
    with pytest.raises(SchemaError):
        db.execute(
            "CREATE TABLE bad2 (a INTEGER PRIMARY KEY, b TEXT PRIMARY KEY)"
        )


# ----------------------------------------------------------------------
# INSERT / SELECT
# ----------------------------------------------------------------------


def test_insert_and_point_select(db):
    db.execute("INSERT INTO users VALUES (?, ?, ?)", (1, "ada", 36))
    assert db.query("SELECT * FROM users WHERE id = 1") == [(1, "ada", 36)]


def test_insert_partial_columns_null_fill(db):
    db.execute("INSERT INTO users (id) VALUES (5)")
    assert db.query("SELECT name, age FROM users WHERE id = 5") == [(None, None)]


def test_multi_row_insert(db):
    result = db.execute("INSERT INTO users VALUES (1, 'a', 1), (2, 'b', 2)")
    assert result.rowcount == 2


def test_duplicate_pk_rejected(db):
    db.execute("INSERT INTO users VALUES (1, 'x', 0)")
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO users VALUES (1, 'y', 0)")
    # the failed autocommit statement must not corrupt the table
    assert db.query("SELECT name FROM users WHERE id = 1") == [("x",)]


def test_insert_or_replace(db):
    db.execute("INSERT INTO users VALUES (1, 'x', 0)")
    db.execute("INSERT OR REPLACE INTO users VALUES (1, 'y', 9)")
    assert db.query("SELECT name, age FROM users WHERE id = 1") == [("y", 9)]


def test_null_pk_rejected(db):
    with pytest.raises(ConstraintError):
        db.execute("INSERT INTO users VALUES (NULL, 'x', 0)")


def test_type_checking(db):
    with pytest.raises(TypeError_):
        db.execute("INSERT INTO users VALUES (1, 2, 3)")  # name not TEXT
    with pytest.raises(TypeError_):
        db.execute("INSERT INTO users VALUES ('x', 'y', 3)")  # id not INT


def test_param_count_mismatch(db):
    with pytest.raises(SqlError):
        db.execute("INSERT INTO users VALUES (?, ?, ?)", (1,))


def test_range_scan_uses_key_order(db):
    for i in (5, 1, 9, 3, 7):
        db.execute("INSERT INTO users VALUES (?, ?, ?)", (i, "u%d" % i, i * 10))
    rows = db.query("SELECT id FROM users WHERE id BETWEEN 3 AND 7")
    assert rows == [(3,), (5,), (7,)]


def test_select_projection_and_expression(db):
    db.execute("INSERT INTO users VALUES (1, 'ada', 36)")
    assert db.query("SELECT age * 2 + 1 FROM users WHERE id = 1") == [(73,)]


def test_select_order_by_non_key(db):
    db.execute("INSERT INTO users VALUES (1, 'c', 3), (2, 'a', 1), (3, 'b', 2)")
    rows = db.query("SELECT name FROM users ORDER BY name")
    assert rows == [("a",), ("b",), ("c",)]


def test_select_limit_offset(db):
    for i in range(10):
        db.execute("INSERT INTO users VALUES (?, 'n', 0)", (i,))
    rows = db.query("SELECT id FROM users ORDER BY id LIMIT 3 OFFSET 4")
    assert rows == [(4,), (5,), (6,)]


def test_aggregates(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', NULL)")
    assert db.query("SELECT COUNT(*) FROM users") == [(3,)]
    assert db.query("SELECT COUNT(age) FROM users") == [(2,)]
    assert db.query("SELECT SUM(age), MIN(age), MAX(age) FROM users") == [(30, 10, 20)]
    assert db.query("SELECT AVG(age) FROM users") == [(15.0,)]


def test_aggregate_on_empty_table(db):
    assert db.query("SELECT COUNT(*), SUM(age) FROM users") == [(0, None)]


def test_is_null_predicates(db):
    db.execute("INSERT INTO users VALUES (1, NULL, 5), (2, 'x', NULL)")
    assert db.query("SELECT id FROM users WHERE name IS NULL") == [(1,)]
    assert db.query("SELECT id FROM users WHERE age IS NOT NULL") == [(1,)]


def test_comparison_with_null_never_matches(db):
    db.execute("INSERT INTO users VALUES (1, 'x', NULL)")
    assert db.query("SELECT id FROM users WHERE age = 5") == []
    assert db.query("SELECT id FROM users WHERE age != 5") == []


def test_unknown_column_rejected(db):
    db.execute("INSERT INTO users VALUES (1, 'x', 1)")
    with pytest.raises(SchemaError):
        db.query("SELECT bogus FROM users")


# ----------------------------------------------------------------------
# UPDATE / DELETE
# ----------------------------------------------------------------------


def test_update_rows(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 10), (2, 'b', 20)")
    result = db.execute("UPDATE users SET age = age + 5 WHERE age >= 10")
    assert result.rowcount == 2
    assert db.query("SELECT age FROM users ORDER BY id") == [(15,), (25,)]


def test_update_primary_key_moves_row(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 10)")
    db.execute("UPDATE users SET id = 99 WHERE id = 1")
    assert db.query("SELECT id FROM users") == [(99,)]


def test_update_pk_conflict_rejected(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 0), (2, 'b', 0)")
    with pytest.raises(ConstraintError):
        db.execute("UPDATE users SET id = 2 WHERE id = 1")


def test_delete_with_predicate(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)")
    assert db.execute("DELETE FROM users WHERE age > 15").rowcount == 2
    assert db.query("SELECT id FROM users") == [(1,)]


def test_delete_all(db):
    db.execute("INSERT INTO users VALUES (1, 'a', 1)")
    db.execute("DELETE FROM users")
    assert db.query("SELECT COUNT(*) FROM users") == [(0,)]


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------


def test_explicit_transaction_commit(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO users VALUES (1, 'a', 1)")
    db.execute("INSERT INTO users VALUES (2, 'b', 2)")
    db.execute("COMMIT")
    assert db.query("SELECT COUNT(*) FROM users") == [(2,)]


def test_explicit_transaction_rollback(db):
    db.execute("INSERT INTO users VALUES (1, 'keep', 1)")
    db.execute("BEGIN")
    db.execute("INSERT INTO users VALUES (2, 'drop', 2)")
    db.execute("ROLLBACK")
    assert db.query("SELECT name FROM users") == [("keep",)]


def test_transaction_sees_own_writes(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO users VALUES (1, 'mine', 1)")
    assert db.query("SELECT name FROM users WHERE id = 1") == [("mine",)]
    db.execute("COMMIT")


def test_ddl_rolls_back(db):
    db.execute("BEGIN")
    db.execute("CREATE TABLE temp (k INTEGER PRIMARY KEY)")
    db.execute("ROLLBACK")
    assert "temp" not in db.tables()


def test_nested_begin_rejected(db):
    db.execute("BEGIN")
    with pytest.raises(SqlError):
        db.execute("BEGIN")
    db.execute("ROLLBACK")


def test_stray_commit_rejected(db):
    with pytest.raises(SqlError):
        db.execute("COMMIT")


def test_close_rolls_back_open_transaction(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO users VALUES (1, 'x', 1)")
    db.close()
    assert db.query("SELECT COUNT(*) FROM users") == [(0,)]


# ----------------------------------------------------------------------
# Scale + misc
# ----------------------------------------------------------------------


def test_thousand_rows_round_trip(db):
    for i in range(1000):
        db.execute("INSERT INTO users VALUES (?, ?, ?)", (i, "user%04d" % i, i % 90))
    assert db.query("SELECT COUNT(*) FROM users") == [(1000,)]
    assert db.query("SELECT name FROM users WHERE id = 567") == [("user0567",)]
    assert db.engine.verify(root_slot=db.catalog.get("users").root_slot) == 1000


def test_text_primary_key(db):
    db.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO kv VALUES ('banana', 'y'), ('apple', 'x')")
    assert db.query("SELECT k FROM kv") == [("apple",), ("banana",)]


def test_real_primary_key_with_int_literal(db):
    db.execute("CREATE TABLE m (t REAL PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO m VALUES (3, 1)")  # coerced to 3.0
    assert db.query("SELECT v FROM m WHERE t = 3.0") == [(1,)]


def test_blob_values(db):
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, payload BLOB)")
    db.execute("INSERT INTO b VALUES (1, x'00FF10')")
    assert db.query("SELECT payload FROM b") == [(bytes.fromhex("00FF10"),)]


def test_statement_cache_mode():
    db = Database.open(small_config(), cache_statements=True)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES (?)", (1,))
    db.execute("INSERT INTO t VALUES (?)", (2,))
    assert db.query("SELECT COUNT(*) FROM t") == [(2,)]


def test_executemany(db):
    inserted = db.executemany(
        "INSERT INTO users VALUES (?, ?, ?)",
        [(i, "u", 0) for i in range(20)],
    )
    assert inserted == 20


def test_sql_time_is_charged(db):
    before = db.clock.elapsed("sql")
    db.execute("INSERT INTO users VALUES (1, 'x', 1)")
    assert db.clock.elapsed("sql") > before


# ----------------------------------------------------------------------
# Crash recovery through the SQL layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_sql_database_survives_crash(scheme):
    config = small_config(scheme=scheme)
    db = Database.open(config)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(50):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, "v%d" % i))
    pm = db.engine.pm
    pm.crash()
    recovered = Database.open(config, pm=pm)
    assert recovered.query("SELECT COUNT(*) FROM t") == [(50,)]
    assert recovered.query("SELECT v FROM t WHERE id = 33") == [("v33",)]
    recovered.execute("INSERT INTO t VALUES (50, 'after')")
    assert recovered.query("SELECT COUNT(*) FROM t") == [(51,)]
