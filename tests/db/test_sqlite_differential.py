"""Differential testing against the real SQLite (stdlib ``sqlite3``).

The paper implements its schemes *inside* SQLite; our SQL layer is a
reimplementation of the surface the evaluation drives.  These tests run
identical statement streams against both engines and require identical
results — a strong oracle for parser/planner/executor semantics.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig
from repro.db import Database

SCHEMA = "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score INTEGER)"


def make_pair():
    ours = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 20, dram_bytes=64 * 1024,
    ))
    theirs = sqlite3.connect(":memory:")
    ours.execute(SCHEMA)
    theirs.execute(SCHEMA)
    return ours, theirs


def run_both(ours, theirs, sql, params=()):
    mine = ours.execute(sql, params).rows
    other = theirs.execute(sql, params).fetchall()
    return mine, other


def check(ours, theirs, sql, params=()):
    mine, other = run_both(ours, theirs, sql, params)
    assert mine == other, (sql, mine, other)


BASE_ROWS = [
    (1, "ada", 90), (2, "grace", 85), (3, "alan", 70),
    (4, "edsger", 95), (5, "barbara", 85), (6, None, 60),
]


def seeded_pair():
    ours, theirs = make_pair()
    for row in BASE_ROWS:
        ours.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        theirs.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    return ours, theirs


SELECTS = [
    "SELECT * FROM t ORDER BY id",
    "SELECT name FROM t WHERE id = 3",
    "SELECT id FROM t WHERE score > 80 ORDER BY id",
    "SELECT id FROM t WHERE score >= 85 AND id < 5 ORDER BY id",
    "SELECT id FROM t WHERE id BETWEEN 2 AND 4 ORDER BY id",
    "SELECT id FROM t WHERE name IS NULL",
    "SELECT id FROM t WHERE name IS NOT NULL ORDER BY id",
    "SELECT id, score * 2 FROM t WHERE id = 1",
    "SELECT id FROM t WHERE score = 85 OR id = 1 ORDER BY id",
    "SELECT id FROM t WHERE NOT id = 1 ORDER BY id",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(name) FROM t",
    "SELECT SUM(score), MIN(score), MAX(score) FROM t",
    "SELECT AVG(score) FROM t",
    "SELECT id FROM t ORDER BY id DESC LIMIT 2",
    "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 3",
    "SELECT name FROM t WHERE id > 100",
    "SELECT id FROM t WHERE score + 10 = 95",
    "SELECT id FROM t WHERE id = 2 + 1",
    "SELECT id FROM t WHERE -id = -4",
]


@pytest.mark.parametrize("sql", SELECTS)
def test_select_matches_sqlite(sql):
    ours, theirs = seeded_pair()
    check(ours, theirs, sql)


def test_update_then_state_matches():
    ours, theirs = seeded_pair()
    for db in (ours, theirs):
        db.execute("UPDATE t SET score = score + 5 WHERE score < 90")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")


def test_delete_then_state_matches():
    ours, theirs = seeded_pair()
    for db in (ours, theirs):
        db.execute("DELETE FROM t WHERE score = 85 OR name IS NULL")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")


def test_order_by_non_key_with_nulls():
    ours, theirs = seeded_pair()
    check(ours, theirs, "SELECT id FROM t ORDER BY name")


def test_insert_or_replace_semantics():
    ours, theirs = seeded_pair()
    for db in (ours, theirs):
        db.execute("INSERT OR REPLACE INTO t VALUES (3, 'replaced', 1)")
    check(ours, theirs, "SELECT * FROM t WHERE id = 3")


def test_params_in_predicates():
    ours, theirs = seeded_pair()
    check(ours, theirs, "SELECT id FROM t WHERE score > ? AND id <= ? "
                        "ORDER BY id", (80, 4))


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(0, 30),
            st.integers(-100, 100),
        ),
        min_size=1,
        max_size=25,
    ),
    threshold=st.integers(-50, 120),
)
def test_random_dml_streams_match(ops, threshold):
    """Random insert/update/delete streams leave identical tables."""
    ours, theirs = make_pair()
    for op, key, score in ops:
        if op == "insert":
            sql = "INSERT OR REPLACE INTO t VALUES (?, ?, ?)"
            params = (key, "n%d" % key, score)
        elif op == "update":
            sql = "UPDATE t SET score = ? WHERE id = ?"
            params = (score, key)
        else:
            sql = "DELETE FROM t WHERE id = ?"
            params = (key,)
        ours.execute(sql, params)
        theirs.execute(sql, params)
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    check(ours, theirs, "SELECT COUNT(*), SUM(score) FROM t")
    check(ours, theirs, "SELECT id FROM t WHERE score > ? ORDER BY id",
          (threshold,))


def test_transaction_rollback_matches():
    ours, theirs = seeded_pair()
    theirs.isolation_level = None
    for db, begin in ((ours, "BEGIN"), (theirs, "BEGIN")):
        db.execute(begin)
        db.execute("INSERT INTO t VALUES (50, 'temp', 0)")
        db.execute("ROLLBACK")
    check(ours, theirs, "SELECT COUNT(*) FROM t")
