"""Unit and property tests for row/key serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.errors import TypeError_
from repro.db.records import (
    decode_key,
    decode_row,
    encode_key,
    encode_row,
    read_varint,
    write_varint,
)

sql_value = st.one_of(
    st.none(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)


def test_varint_round_trip():
    for value in (0, 1, 127, 128, 300, 1 << 20, 1 << 40):
        out = bytearray()
        write_varint(value, out)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)


def test_row_round_trip_basic():
    row = (1, "text", 3.5, b"\x00\x01", None)
    assert decode_row(encode_row(row)) == row


def test_empty_row():
    assert decode_row(encode_row(())) == ()


def test_bool_rejected():
    with pytest.raises(TypeError_):
        encode_row((True,))
    with pytest.raises(TypeError_):
        encode_key(False)


def test_unsupported_type_rejected():
    with pytest.raises(TypeError_):
        encode_row(({},))


@settings(max_examples=100, deadline=None)
@given(row=st.lists(sql_value, max_size=8))
def test_row_round_trip_property(row):
    assert decode_row(encode_row(tuple(row))) == tuple(row)


# ----------------------------------------------------------------------
# Key encoding: order preservation
# ----------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=-(2**62), max_value=2**62),
    b=st.integers(min_value=-(2**62), max_value=2**62),
)
def test_int_keys_preserve_order(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@settings(max_examples=100, deadline=None)
@given(
    a=st.floats(allow_nan=False, allow_infinity=False),
    b=st.floats(allow_nan=False, allow_infinity=False),
)
def test_float_keys_preserve_order(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@settings(max_examples=100, deadline=None)
@given(a=st.text(max_size=30), b=st.text(max_size=30))
def test_text_keys_preserve_order(a, b):
    assert (encode_key(a) < encode_key(b)) == (a < b)


@settings(max_examples=60, deadline=None)
@given(value=st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=30),
    st.binary(max_size=30),
))
def test_key_round_trip(value):
    assert decode_key(encode_key(value)) == value


def test_float_key_round_trip():
    for value in (0.0, 1.5, -1.5, 1e300, -1e300, 1e-300):
        assert decode_key(encode_key(value)) == value


def test_key_types_are_disjoint():
    # Different types never collide byte-wise (distinct tags).
    assert encode_key(1)[0] != encode_key(1.0)[0]
    assert encode_key("1")[0] != encode_key(b"1")[0]
