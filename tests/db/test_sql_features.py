"""LIKE / IN / scalar functions / multi-column indexes — all verified
differentially against the real SQLite."""

import sqlite3

import pytest

from repro.core import SystemConfig
from repro.db import Database


def make_pair(schema):
    ours = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    theirs = sqlite3.connect(":memory:")
    ours.execute(schema)
    theirs.execute(schema)
    return ours, theirs


def check(ours, theirs, sql, params=()):
    mine = ours.execute(sql, params).rows
    other = theirs.execute(sql, params).fetchall()
    assert mine == other, (sql, mine, other)


@pytest.fixture
def pair():
    ours, theirs = make_pair(
        "CREATE TABLE p (id INTEGER PRIMARY KEY, name TEXT, cat TEXT, "
        "price INTEGER)"
    )
    rows = [
        (1, "apple", "fruit", 3), (2, "apricot", "fruit", 5),
        (3, "banana", "fruit", 2), (4, "Broccoli", "veg", 4),
        (5, "carrot", "veg", 1), (6, "chard", "veg", 2),
        (7, "anise_star", "spice", 9), (8, None, "spice", 7),
    ]
    for row in rows:
        ours.execute("INSERT INTO p VALUES (?, ?, ?, ?)", row)
        theirs.execute("INSERT INTO p VALUES (?, ?, ?, ?)", row)
    return ours, theirs


LIKE_QUERIES = [
    "SELECT id FROM p WHERE name LIKE 'a%' ORDER BY id",
    "SELECT id FROM p WHERE name LIKE '%an%' ORDER BY id",
    "SELECT id FROM p WHERE name LIKE '_pple' ORDER BY id",
    "SELECT id FROM p WHERE name LIKE 'BROCCOLI' ORDER BY id",  # case-insensitive
    "SELECT id FROM p WHERE name NOT LIKE '%a%' ORDER BY id",
    "SELECT id FROM p WHERE name LIKE 'anise!_star' ORDER BY id",  # no escape
]


@pytest.mark.parametrize("sql", LIKE_QUERIES)
def test_like_matches_sqlite(pair, sql):
    check(*pair, sql)


IN_QUERIES = [
    "SELECT id FROM p WHERE cat IN ('fruit', 'spice') ORDER BY id",
    "SELECT id FROM p WHERE id IN (1, 3, 99) ORDER BY id",
    "SELECT id FROM p WHERE cat NOT IN ('veg') ORDER BY id",
    "SELECT id FROM p WHERE price IN (2) ORDER BY id",
    "SELECT id FROM p WHERE name IN ('apple', NULL) ORDER BY id",
    "SELECT id FROM p WHERE name NOT IN ('apple') ORDER BY id",
]


@pytest.mark.parametrize("sql", IN_QUERIES)
def test_in_matches_sqlite(pair, sql):
    check(*pair, sql)


FUNC_QUERIES = [
    "SELECT LENGTH(name) FROM p WHERE id = 1",
    "SELECT LENGTH(name) FROM p WHERE id = 8",   # NULL propagates
    "SELECT UPPER(name), LOWER(name) FROM p WHERE id = 4",
    "SELECT ABS(price - 5) FROM p ORDER BY id",
    "SELECT COALESCE(name, 'unnamed') FROM p WHERE id = 8",
    "SELECT COALESCE(NULL, NULL, price) FROM p WHERE id = 5",
    "SELECT id FROM p WHERE LENGTH(name) = 5 ORDER BY id",
    "SELECT id FROM p WHERE UPPER(cat) = 'VEG' ORDER BY id",
]


@pytest.mark.parametrize("sql", FUNC_QUERIES)
def test_functions_match_sqlite(pair, sql):
    check(*pair, sql)


# ----------------------------------------------------------------------
# Multi-column indexes
# ----------------------------------------------------------------------


def test_multicolumn_index_results_match_sqlite():
    ours, theirs = make_pair(
        "CREATE TABLE e (id INTEGER PRIMARY KEY, dept TEXT, grade INTEGER, "
        "pay INTEGER)"
    )
    ddl = "CREATE INDEX by_dept_grade ON e (dept, grade)"
    ours.execute(ddl)
    theirs.execute(ddl)
    for i in range(90):
        params = (i, "d%d" % (i % 3), i % 5, 100 + i)
        ours.execute("INSERT INTO e VALUES (?, ?, ?, ?)", params)
        theirs.execute("INSERT INTO e VALUES (?, ?, ?, ?)", params)
    for sql in (
        "SELECT id FROM e WHERE dept = 'd1' AND grade = 2 ORDER BY id",
        "SELECT id FROM e WHERE dept = 'd0' ORDER BY id",
        "SELECT id FROM e WHERE dept = 'd2' AND grade >= 3 ORDER BY id",
        "SELECT id FROM e WHERE dept = 'd1' AND grade BETWEEN 1 AND 3 "
        "AND pay > 120 ORDER BY id",
        "SELECT COUNT(*) FROM e WHERE dept = 'd0' AND grade = 4",
    ):
        check(ours, theirs, sql)


def test_multicolumn_index_is_used():
    """Equality on both leading columns must beat the single-column
    prefix scan (fewer simulated loads)."""
    single = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    double = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    schema = "CREATE TABLE e (id INTEGER PRIMARY KEY, a TEXT, b INTEGER)"
    single.execute(schema)
    double.execute(schema)
    single.execute("CREATE INDEX i1 ON e (a)")
    double.execute("CREATE INDEX i2 ON e (a, b)")
    for db in (single, double):
        for i in range(300):
            db.execute("INSERT INTO e VALUES (?, ?, ?)", (i, "same", i % 100))

    def cost(db):
        before = db.clock.now_ns
        rows = db.query("SELECT id FROM e WHERE a = 'same' AND b = 42")
        assert len(rows) == 3
        return db.clock.now_ns - before

    assert cost(double) < 0.6 * cost(single)


def test_multicolumn_index_maintenance():
    ours, theirs = make_pair(
        "CREATE TABLE e (id INTEGER PRIMARY KEY, a TEXT, b INTEGER)"
    )
    for db in (ours, theirs):
        db.execute("CREATE INDEX ix ON e (a, b)")
        db.execute("INSERT INTO e VALUES (1, 'x', 1), (2, 'x', 2), (3, 'y', 1)")
        db.execute("UPDATE e SET b = 9 WHERE id = 2")
        db.execute("DELETE FROM e WHERE id = 3")
    check(ours, theirs, "SELECT id FROM e WHERE a = 'x' AND b = 9")
    check(ours, theirs, "SELECT id FROM e WHERE a = 'y' AND b = 1")
    # Index/table consistency at the storage level.
    index = ours.catalog.indexes()["ix"]
    entries = sum(1 for _ in ours.engine.scan(root_slot=index.root_slot))
    assert entries == 2


def test_multi_key_order_by_matches_sqlite():
    ours, theirs = make_pair(
        "CREATE TABLE o (id INTEGER PRIMARY KEY, a TEXT, b INTEGER)"
    )
    rows = [(i, "g%d" % (i % 3), (7 - i) % 5) for i in range(25)]
    for params in rows:
        ours.execute("INSERT INTO o VALUES (?, ?, ?)", params)
        theirs.execute("INSERT INTO o VALUES (?, ?, ?)", params)
    for sql in (
        "SELECT id FROM o ORDER BY a, b, id",
        "SELECT id FROM o ORDER BY a DESC, b ASC, id",
        "SELECT id FROM o ORDER BY b DESC, a DESC, id DESC",
        "SELECT a, b FROM o ORDER BY a, b LIMIT 7",
    ):
        check(ours, theirs, sql)
