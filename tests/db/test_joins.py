"""Two-table inner joins, verified against SQLite."""

import sqlite3

import pytest

from repro.core import SystemConfig
from repro.db import Database, SqlError


def make_pair():
    ours = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    theirs = sqlite3.connect(":memory:")
    for db in (ours, theirs):
        db.execute("CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)")
        db.execute(
            "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept_id INTEGER, "
            "name TEXT, pay INTEGER)"
        )
    depts = [(1, "eng"), (2, "ops"), (3, "empty")]
    emps = [
        (10, 1, "ada", 120), (11, 1, "grace", 130), (12, 2, "alan", 110),
        (13, 2, "edsger", 140), (14, None, "ghost", 50), (15, 9, "orphan", 60),
    ]
    for row in depts:
        ours.execute("INSERT INTO dept VALUES (?, ?)", row)
        theirs.execute("INSERT INTO dept VALUES (?, ?)", row)
    for row in emps:
        ours.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
        theirs.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
    return ours, theirs


def check(ours, theirs, sql, params=()):
    mine = ours.execute(sql, params).rows
    other = theirs.execute(sql, params).fetchall()
    assert mine == other, (sql, mine, other)


JOIN_QUERIES = [
    # join on the inner table's primary key (point-lookup path)
    "SELECT emp.name, dept.name FROM emp JOIN dept ON emp.dept_id = dept.id "
    "ORDER BY emp.id",
    # reversed outer/inner
    "SELECT emp.name FROM dept JOIN emp ON emp.dept_id = dept.id "
    "ORDER BY emp.id",
    # aliases
    "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
    "ORDER BY e.id",
    "SELECT e.name FROM emp AS e JOIN dept AS d ON e.dept_id = d.id "
    "WHERE d.name = 'eng' ORDER BY e.id",
    # WHERE over both sides
    "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
    "WHERE e.pay > 115 AND d.name = 'eng' ORDER BY e.id",
    # INNER JOIN keyword form
    "SELECT e.id FROM emp e INNER JOIN dept d ON e.dept_id = d.id "
    "ORDER BY e.id",
    # expressions over joined columns
    "SELECT e.pay + d.id FROM emp e JOIN dept d ON e.dept_id = d.id "
    "ORDER BY e.id",
    # LIMIT after join
    "SELECT e.id FROM emp e JOIN dept d ON e.dept_id = d.id "
    "ORDER BY e.id LIMIT 2",
    # non-equi ON (falls back to nested loop)
    "SELECT e.id, d.id FROM emp e JOIN dept d ON e.pay > 100 + d.id * 10 "
    "ORDER BY e.id, d.id",
]


@pytest.mark.parametrize("sql", JOIN_QUERIES)
def test_join_matches_sqlite(sql):
    ours, theirs = make_pair()
    check(ours, theirs, sql)


def test_join_star_projection():
    ours, theirs = make_pair()
    check(
        ours, theirs,
        "SELECT * FROM emp JOIN dept ON emp.dept_id = dept.id ORDER BY emp.id",
    )


def test_join_null_keys_never_match():
    ours, theirs = make_pair()
    check(
        ours, theirs,
        "SELECT emp.id FROM emp JOIN dept ON emp.dept_id = dept.id "
        "WHERE emp.name = 'ghost'",
    )


def test_join_uses_secondary_index_on_inner():
    ours, theirs = make_pair()
    for db in (ours, theirs):
        db.execute("CREATE INDEX emp_by_dept ON emp (dept_id)")
    check(
        ours, theirs,
        "SELECT d.name, e.name FROM dept d JOIN emp e ON d.id = e.dept_id "
        "ORDER BY e.id",
    )


def test_ambiguous_unqualified_column_rejected():
    ours, _ = make_pair()
    with pytest.raises(SqlError):
        ours.execute(
            "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"
        )


def test_unqualified_unambiguous_column_ok():
    ours, theirs = make_pair()
    check(
        ours, theirs,
        "SELECT pay FROM emp JOIN dept ON emp.dept_id = dept.id ORDER BY pay",
    )


def test_group_by_with_join_unsupported():
    ours, _ = make_pair()
    with pytest.raises(SqlError):
        ours.execute(
            "SELECT d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "GROUP BY name"
        )


def test_join_point_lookup_is_cheap():
    """The PK-equi-join must not scan the whole inner table per row."""
    ours, _ = make_pair()
    for i in range(300):
        ours.execute("INSERT INTO dept VALUES (?, ?)", (100 + i, "d%d" % i))
    before = ours.clock.now_ns
    rows = ours.query(
        "SELECT e.id FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.id"
    )
    cost_indexed = ours.clock.now_ns - before
    assert len(rows) == 4
    before = ours.clock.now_ns
    ours.query(
        "SELECT e.id, d.id FROM emp e JOIN dept d ON e.pay > d.id ORDER BY e.id, d.id"
    )
    cost_nested = ours.clock.now_ns - before
    assert cost_indexed < 0.3 * cost_nested
