"""Crash consistency through the SQL layer.

The engine-level crash sweeps prove single-tree atomicity; these tests
crash *SQL statements* that touch several structures at once (table +
secondary index + schema tree) and verify that recovery leaves them
mutually consistent — the multi-object transaction story of paper
Section 2.2's critique of single-node schemes.
"""

import random

import pytest

from repro.core import SystemConfig
from repro.db import Database
from repro.pm.crash import RandomPersist
from repro.testing.crashsim import CrashPoint, CrashablePM


def config():
    return SystemConfig(
        scheme="fast", npages=512, page_size=512, log_bytes=32768,
        heap_bytes=1 << 20, dram_bytes=64 * 512, atomic_granularity=8,
    )


def build(cfg):
    from repro.core import engine_class

    pm = CrashablePM(
        cfg.arena_bytes, latency=cfg.latency, cost=cfg.cost,
        atomic_granularity=cfg.atomic_granularity, cache_lines=cfg.cache_lines,
    )
    engine = engine_class(cfg.scheme).create(cfg, pm=pm)
    return Database(engine), pm


STATEMENTS = [
    ("INSERT INTO t VALUES (?, ?, ?)", lambda i: (i, "tag%d" % (i % 3), i * 2)),
    ("INSERT INTO t VALUES (?, ?, ?)", lambda i: (i, "tag%d" % (i % 3), i * 2)),
    ("UPDATE t SET tag = 'moved' WHERE id = ?", lambda i: (max(0, i - 2),)),
    ("DELETE FROM t WHERE id = ?", lambda i: (max(0, i - 1),)),
]


def run_sql_to_crash(budget, seed):
    cfg = config()
    db, pm = build(cfg)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, v INTEGER)")
    db.execute("CREATE INDEX by_tag ON t (tag)")
    committed = []
    crashed = False
    pm.budget = budget
    pm.events = 0
    pm.armed = True
    try:
        for i in range(14):
            sql, make_params = STATEMENTS[i % len(STATEMENTS)]
            db.execute(sql, make_params(i))
            committed.append((sql, make_params(i)))
    except CrashPoint:
        crashed = True
    finally:
        pm.armed = False
    if not crashed:
        return None
    pm.crash(RandomPersist(rng=random.Random(seed)))
    recovered = Database.open(cfg, pm=pm)
    return recovered


def check_table_index_consistency(db):
    """Every row is indexed exactly once; every index entry has a row."""
    rows = db.query("SELECT id, tag FROM t")
    table = db.catalog.get("t")
    index = db.catalog.indexes()["by_tag"]
    from repro.db.records import decode_composite, encode_composite

    entries = [
        key for key, _ in db.engine.scan(root_slot=index.root_slot)
    ]
    expected = sorted(
        encode_composite([tag, row_id]) for row_id, tag in rows
    )
    assert sorted(entries) == expected, (
        "index/table divergence: %d entries vs %d rows" % (len(entries), len(rows))
    )
    # Structure of both trees intact.
    db.engine.verify(root_slot=table.root_slot)
    db.engine.verify(root_slot=index.root_slot)


@pytest.mark.parametrize("budget", [40, 90, 150, 230, 310, 400, 520, 640])
def test_sql_crash_points_keep_index_consistent(budget):
    recovered = run_sql_to_crash(budget, seed=budget * 3 + 1)
    if recovered is None:
        pytest.skip("workload finished before the crash budget")
    check_table_index_consistency(recovered)


def test_sql_crash_sweep_sampled():
    failures = []
    for budget in range(25, 900, 35):
        recovered = run_sql_to_crash(budget, seed=budget)
        if recovered is None:
            break
        try:
            check_table_index_consistency(recovered)
        except AssertionError as err:
            failures.append((budget, str(err)))
    assert failures == [], failures[:3]


def test_crash_during_create_index_backfill():
    """CREATE INDEX over existing rows is itself one transaction: a
    crash mid-backfill must leave either no index or a complete one."""
    cfg = config()
    db, pm = build(cfg)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, v INTEGER)")
    for i in range(30):
        db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, "g%d" % (i % 4), i))
    for budget in range(50, 2000, 120):
        pm_copy = None  # each iteration rebuilds (simpler than snapshotting)
        cfg2 = config()
        db2, pm2 = build(cfg2)
        db2.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, v INTEGER)")
        for i in range(30):
            db2.execute("INSERT INTO t VALUES (?, ?, ?)", (i, "g%d" % (i % 4), i))
        pm2.budget = budget
        pm2.events = 0
        pm2.armed = True
        crashed = False
        try:
            db2.execute("CREATE INDEX by_tag ON t (tag)")
        except CrashPoint:
            crashed = True
        finally:
            pm2.armed = False
        if not crashed:
            break
        pm2.crash(RandomPersist(rng=random.Random(budget)))
        recovered = Database.open(cfg2, pm=pm2)
        assert recovered.query("SELECT COUNT(*) FROM t") == [(30,)]
        indexes = recovered.catalog.indexes()
        if "by_tag" in indexes:
            check_table_index_consistency(recovered)
        del pm_copy
