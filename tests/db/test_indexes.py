"""Secondary indexes: DDL, maintenance, planner use, recovery."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig
from repro.db import Database, SchemaError
from repro.db.records import (
    composite_lower_bound,
    composite_prefix_range,
    composite_upper_bound,
    decode_composite,
    encode_composite,
    encode_key,
)


def make_db(**overrides):
    params = dict(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    )
    params.update(overrides)
    return Database.open(SystemConfig(**params))


@pytest.fixture
def db():
    database = make_db()
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept TEXT, salary INTEGER)"
    )
    for i in range(60):
        database.execute(
            "INSERT INTO emp VALUES (?, ?, ?)", (i, "d%d" % (i % 5), 1000 + i)
        )
    return database


# ----------------------------------------------------------------------
# Composite key encoding
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    a=st.tuples(st.text(max_size=12), st.integers(-1000, 1000)),
    b=st.tuples(st.text(max_size=12), st.integers(-1000, 1000)),
)
def test_composite_order_matches_tuple_order(a, b):
    assert (encode_composite(a) < encode_composite(b)) == (a < b)


@settings(max_examples=50, deadline=None)
@given(parts=st.lists(
    st.one_of(st.none(), st.integers(-(2**40), 2**40),
              st.text(max_size=15), st.binary(max_size=15)),
    min_size=1, max_size=3,
))
def test_composite_round_trip(parts):
    decoded = decode_composite(encode_composite(parts))
    assert decoded == [encode_key(p) for p in parts]


@settings(max_examples=60, deadline=None)
@given(
    value=st.text(max_size=10),
    other=st.text(max_size=10),
    pk=st.integers(0, 1000),
)
def test_prefix_range_covers_exactly_matching_firsts(value, other, pk):
    lo, hi = composite_prefix_range([value])
    key = encode_composite([other, pk])
    assert (lo <= key <= hi) == (other == value)


@settings(max_examples=60, deadline=None)
@given(bound=st.integers(-100, 100), first=st.integers(-100, 100),
       pk=st.integers(0, 50))
def test_lower_and_upper_bounds(bound, first, pk):
    key = encode_composite([first, pk])
    assert (key >= composite_lower_bound(bound)) == (first >= bound)
    assert (key <= composite_upper_bound(bound)) == (first <= bound)


# ----------------------------------------------------------------------
# DDL + maintenance
# ----------------------------------------------------------------------


def test_create_index_backfills(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd3'") == [(12,)]


def test_index_maintained_by_insert(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("INSERT INTO emp VALUES (100, 'd3', 1)")
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd3'") == [(13,)]


def test_index_maintained_by_update(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("UPDATE emp SET dept = 'moved' WHERE id = 7")
    assert db.query("SELECT id FROM emp WHERE dept = 'moved'") == [(7,)]
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd2'") == [(11,)]


def test_index_maintained_by_delete(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("DELETE FROM emp WHERE dept = 'd1'")
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd1'") == [(0,)]
    assert db.query("SELECT COUNT(*) FROM emp") == [(48,)]


def test_index_maintained_by_insert_or_replace(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("INSERT OR REPLACE INTO emp VALUES (3, 'replaced', 1)")
    assert db.query("SELECT id FROM emp WHERE dept = 'replaced'") == [(3,)]
    # The stale entry for the old dept of row 3 is gone.
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd3'") == [(11,)]


def test_index_range_queries(db):
    db.execute("CREATE INDEX by_salary ON emp (salary)")
    rows = db.query(
        "SELECT id FROM emp WHERE salary >= 1055 AND salary <= 1058 ORDER BY id"
    )
    assert rows == [(55,), (56,), (57,), (58,)]


def test_duplicate_index_name_rejected(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    with pytest.raises(SchemaError):
        db.execute("CREATE INDEX by_dept ON emp (salary)")
    db.execute("CREATE INDEX IF NOT EXISTS by_dept ON emp (dept)")


def test_index_on_missing_column_rejected(db):
    with pytest.raises(SchemaError):
        db.execute("CREATE INDEX bad ON emp (nope)")


def test_drop_index(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("DROP INDEX by_dept")
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd0'") == [(12,)]
    db.execute("DROP INDEX IF EXISTS by_dept")
    with pytest.raises(SchemaError):
        db.execute("DROP INDEX by_dept")


def test_drop_table_drops_its_indexes(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("DROP TABLE emp")
    assert db.catalog.indexes() == {}


def test_index_ddl_rolls_back(db):
    db.execute("BEGIN")
    db.execute("CREATE INDEX temp_idx ON emp (dept)")
    db.execute("ROLLBACK")
    assert "temp_idx" not in db.catalog.indexes()
    assert db.query("SELECT COUNT(*) FROM emp WHERE dept = 'd0'") == [(12,)]


def test_indexed_nulls(db):
    db.execute("CREATE INDEX by_dept ON emp (dept)")
    db.execute("INSERT INTO emp (id, salary) VALUES (200, 5)")
    assert db.query("SELECT id FROM emp WHERE dept IS NULL") == [(200,)]
    db.execute("DELETE FROM emp WHERE id = 200")
    assert db.query("SELECT COUNT(*) FROM emp") == [(60,)]


# ----------------------------------------------------------------------
# The planner actually uses the index
# ----------------------------------------------------------------------


def test_index_lookup_is_cheaper_than_full_scan():
    plain = make_db()
    indexed = make_db()
    for database in (plain, indexed):
        database.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, v INTEGER)"
        )
        for i in range(400):
            database.execute(
                "INSERT INTO t VALUES (?, ?, ?)", (i, "tag%03d" % i, i)
            )
    indexed.execute("CREATE INDEX by_tag ON t (tag)")
    def cost(database):
        before = database.clock.now_ns
        result = database.query("SELECT v FROM t WHERE tag = 'tag123'")
        assert result == [(123,)]
        return database.clock.now_ns - before
    assert cost(indexed) < 0.5 * cost(plain)


# ----------------------------------------------------------------------
# Crash recovery keeps table and index consistent
# ----------------------------------------------------------------------


def test_index_survives_crash():
    config = SystemConfig(
        scheme="fast", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    )
    db = Database.open(config)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT)")
    db.execute("CREATE INDEX by_tag ON t (tag)")
    for i in range(50):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, "g%d" % (i % 3)))
    pm = db.engine.pm
    pm.crash()
    recovered = Database.open(config, pm=pm)
    assert recovered.query("SELECT COUNT(*) FROM t WHERE tag = 'g1'") == [(17,)]
    recovered.execute("INSERT INTO t VALUES (50, 'g1')")
    assert recovered.query("SELECT COUNT(*) FROM t WHERE tag = 'g1'") == [(18,)]


# ----------------------------------------------------------------------
# Differential: indexed queries match SQLite exactly
# ----------------------------------------------------------------------


def test_indexed_results_match_sqlite():
    ours = make_db()
    theirs = sqlite3.connect(":memory:")
    schema = "CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, v INTEGER)"
    ours.execute(schema)
    theirs.execute(schema)
    for sql in ("CREATE INDEX by_tag ON t (tag)",
                "CREATE INDEX by_v ON t (v)"):
        ours.execute(sql)
        theirs.execute(sql)
    for i in range(80):
        params = (i, "tag%d" % (i % 7), i * 3 % 50)
        ours.execute("INSERT INTO t VALUES (?, ?, ?)", params)
        theirs.execute("INSERT INTO t VALUES (?, ?, ?)", params)
    for sql in (
        "SELECT id FROM t WHERE tag = 'tag3' ORDER BY id",
        "SELECT id FROM t WHERE v >= 10 AND v < 20 ORDER BY id",
        "SELECT COUNT(*) FROM t WHERE tag = 'tag5'",
        "SELECT id FROM t WHERE tag = 'tag1' AND v > 25 ORDER BY id",
    ):
        assert ours.execute(sql).rows == theirs.execute(sql).fetchall(), sql


def test_group_by_matches_sqlite():
    ours = make_db()
    theirs = sqlite3.connect(":memory:")
    schema = "CREATE TABLE s (id INTEGER PRIMARY KEY, g TEXT, x INTEGER)"
    ours.execute(schema)
    theirs.execute(schema)
    rows = [(i, "g%d" % (i % 4), i * 7 % 30) for i in range(40)]
    rows.append((99, None, None))
    for params in rows:
        ours.execute("INSERT INTO s VALUES (?, ?, ?)", params)
        theirs.execute("INSERT INTO s VALUES (?, ?, ?)", params)
    for sql in (
        "SELECT g, COUNT(*) FROM s GROUP BY g ORDER BY g",
        "SELECT g, SUM(x), MIN(x), MAX(x) FROM s GROUP BY g ORDER BY g",
        "SELECT g, AVG(x) FROM s GROUP BY g ORDER BY g",
        "SELECT g, COUNT(*) FROM s GROUP BY g HAVING COUNT(*) > 5 ORDER BY g",
        "SELECT g, COUNT(x) FROM s WHERE x > 3 GROUP BY g ORDER BY g",
        "SELECT g, COUNT(*) FROM s GROUP BY g ORDER BY g DESC",
        "SELECT g, COUNT(*) FROM s GROUP BY g HAVING SUM(x) >= 50 ORDER BY g",
    ):
        assert ours.execute(sql).rows == theirs.execute(sql).fetchall(), sql
