"""Savepoints: partial rollback inside a transaction (engine + SQL),
verified against SQLite where the surface overlaps."""

import sqlite3

import pytest

from repro.core import SystemConfig, TransactionError, open_engine
from repro.db import Database, SqlError
from tests.core.conftest import small_config


@pytest.fixture(params=["fast", "fastplus", "nvwal"])
def engine(request):
    return open_engine(small_config(scheme=request.param))


# ----------------------------------------------------------------------
# Engine level
# ----------------------------------------------------------------------


def test_rollback_to_discards_later_writes(engine):
    with engine.transaction() as txn:
        txn.insert(b"before", b"1")
        token = txn.savepoint()
        txn.insert(b"after", b"2")
        assert txn.search(b"after") == b"2"
        txn.rollback_to(token)
        assert txn.search(b"after") is None
        assert txn.search(b"before") == b"1"
    assert engine.search(b"before") == b"1"
    assert engine.search(b"after") is None
    assert engine.verify() == 1


def test_rollback_to_is_resumable(engine):
    with engine.transaction() as txn:
        token = txn.savepoint()
        txn.insert(b"a", b"1")
        txn.rollback_to(token)
        txn.insert(b"b", b"2")   # keep working after partial rollback
    assert engine.search(b"a") is None
    assert engine.search(b"b") == b"2"


def test_nested_savepoints(engine):
    with engine.transaction() as txn:
        txn.insert(b"k0", b"0")
        outer = txn.savepoint()
        txn.insert(b"k1", b"1")
        inner = txn.savepoint()
        txn.insert(b"k2", b"2")
        txn.rollback_to(inner)
        assert txn.search(b"k2") is None
        assert txn.search(b"k1") == b"1"
        txn.rollback_to(outer)
        assert txn.search(b"k1") is None
        assert txn.search(b"k0") == b"0"
    assert engine.verify() == 1


def test_savepoint_across_splits(engine):
    """Rolling back over structural changes (splits, new pages)."""
    with engine.transaction() as txn:
        for i in range(20):
            txn.insert(b"pre%04d" % i, b"x" * 30)
        token = txn.savepoint()
        for i in range(120):  # forces splits after the savepoint
            txn.insert(b"post%04d" % i, b"y" * 30)
        txn.rollback_to(token)
    assert engine.verify() == 20
    assert engine.search(b"post0000") is None
    assert engine.search(b"pre0007") == b"x" * 30


def test_savepoint_before_splits_keeps_them(engine):
    with engine.transaction() as txn:
        for i in range(120):
            txn.insert(b"k%04d" % i, b"z" * 30)
        token = txn.savepoint()
        txn.insert(b"doomed", b"d")
        txn.rollback_to(token)
    assert engine.verify() == 120


def test_savepoint_with_deletes_and_updates(engine):
    with engine.transaction() as txn:
        for i in range(30):
            txn.insert(b"%03d" % i, b"v%d" % i)
        token = txn.savepoint()
        for i in range(0, 30, 2):
            txn.delete(b"%03d" % i)
        txn.insert(b"001", b"changed", replace=True)
        txn.rollback_to(token)
    assert engine.verify() == 30
    assert engine.search(b"000") == b"v0"
    assert engine.search(b"001") == b"v1"


def test_commit_after_rollback_to_only_keeps_prefix(engine):
    with engine.transaction() as txn:
        txn.insert(b"keep", b"1")
        token = txn.savepoint()
        for i in range(60):
            txn.insert(b"drop%03d" % i, b"x" * 20)
        txn.rollback_to(token)
        txn.insert(b"also", b"2")
    pm = engine.pm
    pm.crash()
    from repro.core import engine_class

    recovered = engine_class(engine.scheme).attach(
        small_config(scheme=engine.scheme), pm
    )
    assert recovered.verify() == 2
    assert recovered.search(b"keep") == b"1"
    assert recovered.search(b"also") == b"2"


def test_savepoint_across_multiple_trees(engine):
    """One savepoint covers writes to several root slots: rolling back
    rewinds every tree, not just slot 0."""
    with engine.transaction() as txn:
        txn.create_tree(1)
        txn.create_tree(2)
        txn.insert(b"a", b"t0")
        txn.insert(b"a", b"t1", root_slot=1)
        token = txn.savepoint()
        txn.insert(b"b", b"t0")
        txn.insert(b"b", b"t1", root_slot=1)
        txn.insert(b"b", b"t2", root_slot=2)
        txn.delete(b"a", root_slot=1)
        txn.rollback_to(token)
        assert txn.search(b"b") is None
        assert txn.search(b"b", root_slot=1) is None
        assert txn.search(b"b", root_slot=2) is None
        assert txn.search(b"a", root_slot=1) == b"t1"
    assert engine.search(b"a") == b"t0"
    assert engine.search(b"a", root_slot=1) == b"t1"
    assert engine.search(b"b", root_slot=2) is None


def test_session_transaction_savepoints(engine):
    """Savepoints work inside a lock-managed session transaction, and a
    partial rollback keeps the session's locks (strict 2PL: locks only
    drop at commit/rollback of the whole transaction)."""
    with engine.session() as session:
        txn = session.transaction()
        txn.insert(b"keep", b"1")
        token = txn.savepoint()
        txn.insert(b"drop", b"2")
        txn.rollback_to(token)
        assert engine.lock_manager.locks_of(session.sid)
        txn.commit()
    assert engine.search(b"keep") == b"1"
    assert engine.search(b"drop") is None


def test_naive_engine_rejects_savepoints():
    engine = open_engine(small_config(scheme="naive"))
    txn = engine.transaction()
    with pytest.raises(TransactionError):
        txn.savepoint()
    engine._active = None


# ----------------------------------------------------------------------
# SQL level (differential where possible)
# ----------------------------------------------------------------------


def make_pair():
    ours = Database.open(SystemConfig(
        scheme="fastplus", npages=1024, page_size=1024,
        log_bytes=32768, heap_bytes=1 << 21, dram_bytes=128 * 1024,
    ))
    theirs = sqlite3.connect(":memory:")
    theirs.isolation_level = None
    schema = "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"
    ours.execute(schema)
    theirs.execute(schema)
    return ours, theirs


def both(ours, theirs, sql, params=()):
    ours.execute(sql, params)
    theirs.execute(sql, params)


def check(ours, theirs, sql):
    assert ours.execute(sql).rows == theirs.execute(sql).fetchall(), sql


def test_sql_savepoint_matches_sqlite():
    ours, theirs = make_pair()
    both(ours, theirs, "BEGIN")
    both(ours, theirs, "INSERT INTO t VALUES (1, 'one')")
    both(ours, theirs, "SAVEPOINT sp1")
    both(ours, theirs, "INSERT INTO t VALUES (2, 'two')")
    both(ours, theirs, "SAVEPOINT sp2")
    both(ours, theirs, "INSERT INTO t VALUES (3, 'three')")
    both(ours, theirs, "ROLLBACK TO sp2")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    both(ours, theirs, "ROLLBACK TO SAVEPOINT sp1")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    both(ours, theirs, "INSERT INTO t VALUES (9, 'nine')")
    both(ours, theirs, "COMMIT")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")


def test_sql_release_forgets_savepoint():
    ours, _ = make_pair()
    ours.execute("BEGIN")
    ours.execute("SAVEPOINT sp")
    ours.execute("RELEASE sp")
    with pytest.raises(SqlError):
        ours.execute("ROLLBACK TO sp")
    ours.execute("ROLLBACK")


def test_sql_savepoint_requires_transaction():
    ours, _ = make_pair()
    with pytest.raises(SqlError):
        ours.execute("SAVEPOINT sp")


def test_sql_rollback_to_unknown_savepoint():
    ours, _ = make_pair()
    ours.execute("BEGIN")
    with pytest.raises(SqlError):
        ours.execute("ROLLBACK TO nope")
    ours.execute("ROLLBACK")


def test_sql_release_inside_nested_savepoints():
    """RELEASE of a middle savepoint also forgets everything nested
    inside it, while the outer savepoints stay addressable (SQLite
    semantics, checked differentially)."""
    ours, theirs = make_pair()
    both(ours, theirs, "BEGIN")
    both(ours, theirs, "INSERT INTO t VALUES (1, 'one')")
    both(ours, theirs, "SAVEPOINT outer_sp")
    both(ours, theirs, "INSERT INTO t VALUES (2, 'two')")
    both(ours, theirs, "SAVEPOINT mid")
    both(ours, theirs, "INSERT INTO t VALUES (3, 'three')")
    both(ours, theirs, "SAVEPOINT inner_sp")
    both(ours, theirs, "INSERT INTO t VALUES (4, 'four')")
    both(ours, theirs, "RELEASE mid")
    # mid and inner_sp are gone; the rows they guarded are kept.
    with pytest.raises(SqlError):
        ours.execute("ROLLBACK TO mid")
    with pytest.raises(SqlError):
        ours.execute("ROLLBACK TO inner_sp")
    # outer_sp still works and rewinds past the released region.
    both(ours, theirs, "ROLLBACK TO outer_sp")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    both(ours, theirs, "COMMIT")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")


def test_sql_rollback_to_missing_after_transaction_cycle():
    """Savepoints do not leak across transactions: a name defined in a
    committed (or rolled-back) transaction is missing in the next one."""
    ours, _ = make_pair()
    ours.execute("BEGIN")
    ours.execute("SAVEPOINT sp")
    ours.execute("COMMIT")
    ours.execute("BEGIN")
    with pytest.raises(SqlError):
        ours.execute("ROLLBACK TO sp")
    ours.execute("ROLLBACK")


def test_sql_savepoint_spans_multiple_tables():
    """One savepoint guards writes to several tables (= several engine
    trees); ROLLBACK TO rewinds all of them."""
    ours, theirs = make_pair()
    schema = "CREATE TABLE u (id INTEGER PRIMARY KEY, v TEXT)"
    ours.execute(schema)
    theirs.execute(schema)
    both(ours, theirs, "BEGIN")
    both(ours, theirs, "INSERT INTO t VALUES (1, 'keep-t')")
    both(ours, theirs, "INSERT INTO u VALUES (1, 'keep-u')")
    both(ours, theirs, "SAVEPOINT sp")
    both(ours, theirs, "INSERT INTO t VALUES (2, 'drop-t')")
    both(ours, theirs, "INSERT INTO u VALUES (2, 'drop-u')")
    both(ours, theirs, "DELETE FROM u WHERE id = 1")
    both(ours, theirs, "ROLLBACK TO sp")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    check(ours, theirs, "SELECT * FROM u ORDER BY id")
    both(ours, theirs, "COMMIT")
    check(ours, theirs, "SELECT * FROM t ORDER BY id")
    check(ours, theirs, "SELECT * FROM u ORDER BY id")


def test_sql_savepoint_covers_ddl():
    ours, _ = make_pair()
    ours.execute("BEGIN")
    ours.execute("SAVEPOINT sp")
    ours.execute("CREATE TABLE extra (id INTEGER PRIMARY KEY)")
    assert "extra" in ours.tables()
    ours.execute("ROLLBACK TO sp")
    assert "extra" not in ours.tables()
    ours.execute("COMMIT")
