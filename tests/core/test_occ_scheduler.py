"""Scheduled OCC clients: mixed-isolation determinism, stride-1 crash
sweeps through grouped and sharded OCC commits, and hypothesis
equivalence of mixed schedules against serial replay in commit order."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig, open_engine
from repro.core.scheduler import Scheduler
from repro.storage.sharding import ShardRouter
from repro.testing.crashsim import (
    run_scheduler_crash_sweep,
    run_sharded_crash_sweep,
)


def _config(**overrides):
    params = dict(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512, scheme="fast",
    )
    params.update(overrides)
    return SystemConfig(**params)


def _mixed_run(config=None, items=8):
    """Two OCC writers + a 2PL writer + an MVCC reader on hot keys."""
    from repro.bench.multiclient import client_workload

    config = config or _config()
    engine = open_engine(config, scheme="fast")
    for i in range(10):
        engine.insert(b"mk%05d" % i, b"seed")
    scheduler = Scheduler(engine)
    for index in (0, 1):
        scheduler.add_client(
            client_workload(index, items=items, key_space=12),
            isolation="occ",
        )
    scheduler.add_client(client_workload(2, items=items, key_space=12))
    scheduler.add_client(
        client_workload(3, items=items, read_ratio=1.0, key_space=12),
        isolation="read_only",
    )
    report = scheduler.run()
    counters = engine.obs.snapshot()["registry"]["counters"]
    events = engine.trace.events()
    return report, counters, events, dict(engine.scan())


class TestMixedSchedules:
    def test_all_items_commit(self):
        report, counters, _events, _state = _mixed_run()
        assert report["commits"] == 4 * 8
        assert counters["occ.begin"] > 0
        assert counters["occ.validation"] > 0
        assert counters["occ.commit"] > 0

    def test_byte_identical_reruns(self):
        a = _mixed_run()
        b = _mixed_run()
        assert a[0] == b[0]      # full scheduler report, commit order incl.
        assert a[1] == b[1]      # every counter, exactly
        assert a[2] == b[2]      # the entire trace event stream
        assert a[3] == b[3]

    def test_grouped_schedule_commits_everything(self):
        config = replace(_config(), group_commit=True, group_commit_size=4)
        report, counters, _events, _state = _mixed_run(config=config)
        assert report["commits"] == 4 * 8
        assert counters["occ.commit"] > 0
        assert counters["group.close"] > 0

    def test_grouped_matches_ungrouped_state(self):
        config = replace(_config(), group_commit=True, group_commit_size=4)
        plain = _mixed_run()
        grouped = _mixed_run(config=config)
        assert grouped[0]["commits"] == plain[0]["commits"]
        assert grouped[3] == plain[3]


class TestOccCrashSweeps:
    """Stride-1 sweeps: recovery must equal the committed prefix at
    every memory event, with OCC clients in the interleaving."""

    def _workloads(self):
        occ = [
            ("txn", [
                ("insert", b"shared%02d" % i, b"from-occ"),
                ("insert", b"o%02d" % i, b"x" * 16),
            ])
            for i in range(3)
        ]
        locked = [
            ("txn", [
                ("insert", b"shared%02d" % i, b"from-2pl"),
                ("delete", b"o%02d" % i, None),
            ])
            for i in range(2)
        ]
        return [{"items": occ, "isolation": "occ"}, locked]

    def test_scheduled_sweep_clean(self):
        failures = run_scheduler_crash_sweep(
            "fast", self._workloads(), stride=1, seeds=(0,),
        )
        assert failures == []

    def test_grouped_sweep_clean(self):
        config = replace(_config(), group_commit=True, group_commit_size=2)
        failures = run_scheduler_crash_sweep(
            "fast", self._workloads(), config=config, stride=1, seeds=(0,),
        )
        assert failures == []

    def test_sharded_sweep_clean(self):
        failures = run_sharded_crash_sweep(
            "fast", self._workloads(), shards=2, stride=1, seeds=(0,),
        )
        assert failures == []


# -- hypothesis: mixed schedules == serial replay of the commit order --

_KEYS = [b"h%02d" % i for i in range(12)]

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "delete", "search"]),
        st.integers(0, len(_KEYS) - 1),
        st.binary(min_size=1, max_size=16),
    ),
    min_size=1, max_size=4,
)

_clients = st.lists(
    st.tuples(
        st.sampled_from(["locked", "occ", "occ", "read_only"]),
        st.lists(_ops, min_size=1, max_size=6),
    ),
    min_size=1, max_size=4,
)


def _items_for(isolation, raw):
    """Scheduler items for one client.  Read-only clients may only
    search, so their schedule collapses to the read positions."""
    if isolation == "read_only":
        return [
            ("search", _KEYS[key_no], None)
            for ops in raw
            for _kind, key_no, _value in ops
        ]
    return [
        ("txn", [
            (kind, _KEYS[key_no], value if kind == "insert" else None)
            for kind, key_no, value in ops
        ])
        for ops in raw
    ]


@settings(max_examples=20, deadline=None)
@given(clients=_clients, shards=st.integers(1, 4))
def test_mixed_isolation_matches_serial_replay(clients, shards):
    router = ShardRouter.create(_config(), shards, scheme="fast")
    scheduler = Scheduler(router)
    workloads = []
    for isolation, raw in clients:
        items = _items_for(isolation, raw)
        workloads.append(items)
        scheduler.add_client(items, isolation=isolation)
    scheduler.run()

    # Replay exactly the committed items, in commit order, through a
    # plain unsharded engine with the same op semantics the scheduler
    # uses (replace-inserts, tolerant deletes).
    engine = open_engine(_config(), scheme="fast")
    for name, item_idx in scheduler.commit_order:
        item = workloads[int(name[1:])][item_idx]
        ops = item[1] if item[0] == "txn" else [item]
        with engine.transaction() as txn:
            for kind, key, value in ops:
                if kind == "insert":
                    txn.insert(key, value, replace=True)
                elif kind == "delete":
                    txn.delete(key)
                else:
                    txn.search(key)

    assert dict(router.scan()) == dict(engine.scan())
    assert router.verify() == engine.verify()
