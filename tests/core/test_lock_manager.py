"""Unit tests for the multi-granularity lock manager."""

import pytest

from repro.core.locking import (
    LOCK_IS,
    LOCK_IX,
    LOCK_S,
    LOCK_X,
    LockConflict,
    LockManager,
    page_resource,
    root_resource,
)


@pytest.fixture
def locks():
    return LockManager()


PAGE = page_resource(7)
ROOT = root_resource(0)


class TestCompatibility:
    def test_shared_modes_coexist(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        locks.acquire(2, PAGE, LOCK_S)
        locks.acquire(3, PAGE, LOCK_IS)
        assert locks.holds(2, PAGE) == LOCK_S

    def test_intent_modes_coexist(self, locks):
        locks.acquire(1, ROOT, LOCK_IX)
        locks.acquire(2, ROOT, LOCK_IX)
        locks.acquire(3, ROOT, LOCK_IS)

    def test_x_excludes_everything(self, locks):
        locks.acquire(1, PAGE, LOCK_X)
        for mode in (LOCK_IS, LOCK_IX, LOCK_S, LOCK_X):
            with pytest.raises(LockConflict):
                locks.acquire(2, PAGE, mode)

    def test_s_blocks_ix_and_x(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        with pytest.raises(LockConflict):
            locks.acquire(2, PAGE, LOCK_IX)
        with pytest.raises(LockConflict):
            locks.acquire(2, PAGE, LOCK_X)

    def test_conflict_names_holders(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        locks.acquire(2, PAGE, LOCK_S)
        with pytest.raises(LockConflict) as info:
            locks.acquire(3, PAGE, LOCK_X)
        assert set(info.value.holders) == {1, 2}
        assert info.value.resource == PAGE
        assert info.value.mode == LOCK_X


class TestUpgrades:
    def test_reacquire_weaker_is_noop(self, locks):
        locks.acquire(1, PAGE, LOCK_X)
        assert locks.acquire(1, PAGE, LOCK_S) == LOCK_X
        assert locks.holds(1, PAGE) == LOCK_X

    def test_s_to_x_upgrade(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        assert locks.acquire(1, PAGE, LOCK_X) == LOCK_X

    def test_ix_plus_s_escalates_to_x(self, locks):
        # No SIX mode: the combination escalates straight to X.
        locks.acquire(1, ROOT, LOCK_IX)
        assert locks.acquire(1, ROOT, LOCK_S) == LOCK_X

    def test_upgrade_blocked_by_sharer(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        locks.acquire(2, PAGE, LOCK_S)
        with pytest.raises(LockConflict) as info:
            locks.acquire(1, PAGE, LOCK_X)
        assert info.value.holders == (2,)
        # The held S lock is untouched by the failed upgrade.
        assert locks.holds(1, PAGE) == LOCK_S


class TestRelease:
    def test_release_all_frees_everything(self, locks):
        locks.acquire(1, PAGE, LOCK_X)
        locks.acquire(1, ROOT, LOCK_IX)
        assert locks.release_all(1) == 2
        assert locks.holds(1, PAGE) is None
        locks.acquire(2, PAGE, LOCK_X)  # no conflict anymore

    def test_release_all_idempotent(self, locks):
        locks.acquire(1, PAGE, LOCK_S)
        assert locks.release_all(1) == 1
        assert locks.release_all(1) == 0

    def test_try_acquire(self, locks):
        assert locks.try_acquire(1, PAGE, LOCK_X)
        assert not locks.try_acquire(2, PAGE, LOCK_S)
        assert locks.holds(2, PAGE) is None


class TestWaitGraph:
    def test_blockers(self, locks):
        locks.acquire(1, PAGE, LOCK_X)
        assert locks.blockers(2, PAGE, LOCK_S) == (1,)
        assert locks.blockers(2, page_resource(99), LOCK_S) == ()

    def test_two_party_deadlock(self, locks):
        a, b = page_resource(1), page_resource(2)
        locks.acquire(1, a, LOCK_X)
        locks.acquire(2, b, LOCK_X)
        locks.start_wait(1, b, LOCK_X)
        assert locks.find_deadlock(1) is None  # 2 is not waiting yet
        locks.start_wait(2, a, LOCK_X)
        cycle = locks.find_deadlock(2)
        assert cycle is not None and set(cycle) == {1, 2}

    def test_three_party_cycle(self, locks):
        r = [page_resource(n) for n in range(3)]
        for owner in range(3):
            locks.acquire(owner, r[owner], LOCK_X)
        locks.start_wait(0, r[1], LOCK_X)
        locks.start_wait(1, r[2], LOCK_X)
        locks.start_wait(2, r[0], LOCK_X)
        cycle = locks.find_deadlock(2)
        assert cycle is not None and set(cycle) == {0, 1, 2}

    def test_waiting_chain_without_cycle(self, locks):
        a, b = page_resource(1), page_resource(2)
        locks.acquire(1, a, LOCK_X)
        locks.acquire(2, b, LOCK_X)
        locks.start_wait(3, a, LOCK_S)
        locks.start_wait(2, a, LOCK_S)
        assert locks.find_deadlock(3) is None
        assert locks.find_deadlock(2) is None

    def test_stop_wait_clears_edge(self, locks):
        a, b = page_resource(1), page_resource(2)
        locks.acquire(1, a, LOCK_X)
        locks.acquire(2, b, LOCK_X)
        locks.start_wait(1, b, LOCK_X)
        locks.start_wait(2, a, LOCK_X)
        locks.stop_wait(1)
        assert locks.find_deadlock(2) is None

    def test_release_all_clears_wait(self, locks):
        locks.acquire(1, PAGE, LOCK_X)
        locks.start_wait(2, PAGE, LOCK_S)
        locks.release_all(2)
        assert locks.waiting(2) is None


class TestObsCounters:
    def test_counters_flow_to_registry(self):
        from repro.obs.registry import MetricsRegistry
        from repro.pm.clock import SimClock
        from repro.obs.context import Observability

        obs = Observability(SimClock(), registry=MetricsRegistry())
        locks = LockManager(obs=obs)
        locks.acquire(1, PAGE, LOCK_S)
        locks.acquire(1, PAGE, LOCK_X)   # upgrade
        with pytest.raises(LockConflict):
            locks.acquire(2, PAGE, LOCK_S)
        locks.release_all(1)
        counters = obs.registry.counters("lock.")
        assert counters["lock.acquire"] == 1
        assert counters["lock.upgrade"] == 1
        assert counters["lock.conflict"] == 1
        assert counters["lock.release"] == 1
