"""Property-based crash testing: hypothesis drives the workload AND
the crash point, exploring operation sequences the fixed workloads in
``test_crash_recovery`` do not."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig
from repro.testing import run_to_crash_point


def config(granularity):
    return SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete"]),
        st.integers(0, 25),
        st.binary(min_size=0, max_size=48),
    ),
    min_size=1,
    max_size=18,
)


def to_workload(raw):
    return [
        (kind, b"k%02d" % key_no, value if kind == "insert" else None)
        for kind, key_no, value in raw
    ]


@settings(max_examples=25, deadline=None)
@given(raw=ops, budget=st.integers(1, 600), seed=st.integers(0, 1 << 16))
def test_fast_random_workload_random_crash(raw, budget, seed):
    result = run_to_crash_point(
        "fast", to_workload(raw), budget, config=config(8), seed=seed
    )
    assert result.ok, result.violations


@settings(max_examples=25, deadline=None)
@given(raw=ops, budget=st.integers(1, 600), seed=st.integers(0, 1 << 16))
def test_fastplus_random_workload_random_crash(raw, budget, seed):
    result = run_to_crash_point(
        "fastplus", to_workload(raw), budget, config=config(64), seed=seed
    )
    assert result.ok, result.violations


@settings(max_examples=20, deadline=None)
@given(raw=ops, budget=st.integers(1, 700), seed=st.integers(0, 1 << 16))
def test_nvwal_random_workload_random_crash(raw, budget, seed):
    result = run_to_crash_point(
        "nvwal", to_workload(raw), budget, config=config(8), seed=seed
    )
    assert result.ok, result.violations
