"""Crash-injection tests: the executable form of paper Section 4.4.

Every durable scheme must survive a crash at *every* memory event of a
mixed workload, under adversarial writeback orderings.  The naive
in-place engine must demonstrably fail — that asymmetry is the paper's
motivation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig, engine_class
from repro.pm.crash import DropAll, PersistAll
from repro.testing import crash_points_in, run_crash_sweep, run_to_crash_point

WORKLOAD = (
    [("insert", b"%04d" % i, b"value-%04d" % i) for i in range(10)]
    + [("delete", b"0004", None), ("insert", b"0007", b"updated"),
       ("insert", b"0002", b"rewritten")]
)

SPLIT_WORKLOAD = [
    ("insert", b"%04d" % i, b"x" * 40) for i in range(30)
]


def config(granularity=8):
    return SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )


# ----------------------------------------------------------------------
# Exhaustive sweeps (every crash point, stride 1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "nvwal"])
def test_exhaustive_crash_sweep_word_atomic(scheme):
    """FAST and NVWAL need only 8-byte atomic writes."""
    failures = run_crash_sweep(scheme, WORKLOAD, config=config(8), stride=1)
    assert failures == [], failures[:3]


def test_exhaustive_crash_sweep_fastplus_line_atomic():
    """FAST⁺ relies on failure-atomic cache-line writes (Section 3.2)."""
    failures = run_crash_sweep("fastplus", WORKLOAD, config=config(64), stride=1)
    assert failures == [], failures[:3]


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_crash_sweep_through_splits(scheme):
    """Crashes during B-tree splits (paper Figure 4's case analysis)."""
    granularity = 64 if scheme == "fastplus" else 8
    failures = run_crash_sweep(
        scheme, SPLIT_WORKLOAD, config=config(granularity), stride=5,
    )
    assert failures == [], failures[:3]


# ----------------------------------------------------------------------
# Deterministic adversarial policies
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
@pytest.mark.parametrize("policy", [DropAll(), PersistAll()])
def test_extreme_writeback_orderings(scheme, policy):
    granularity = 64 if scheme == "fastplus" else 8
    failures = run_crash_sweep(
        scheme, WORKLOAD, config=config(granularity),
        stride=4, policies=[policy],
    )
    assert failures == [], failures[:3]


# ----------------------------------------------------------------------
# The asymmetry the paper argues for
# ----------------------------------------------------------------------


def test_naive_inplace_corrupts_under_word_atomicity():
    """Without logging or RTM, in-place header overwrites tear."""
    failures = run_crash_sweep(
        "naive", SPLIT_WORKLOAD, config=config(8), stride=2,
    )
    assert failures, "expected the naive engine to corrupt at some crash point"


def test_fastplus_unsafe_without_line_atomicity():
    """The in-place commit *needs* the cache-line guarantee: under the
    8-byte-only model some crash point must tear the slot header."""
    failures = run_crash_sweep(
        "fastplus", SPLIT_WORKLOAD, config=config(8), stride=1,
    )
    assert failures, "expected FAST+ to be unsafe with 8-byte atomicity"


# ----------------------------------------------------------------------
# Recovery specifics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_orphan_pages_are_garbage_collected(scheme):
    """Crash mid-split leaks the new sibling; recovery reclaims it."""
    granularity = 64 if scheme == "fastplus" else 8
    cfg = config(granularity)
    total = crash_points_in(scheme, SPLIT_WORKLOAD, config=cfg)
    free_counts = set()
    for budget in range(total // 3, total // 3 + 12):
        result = run_to_crash_point(scheme, SPLIT_WORKLOAD, budget, config=cfg)
        assert result.ok, result.violations
    del free_counts


def test_recovery_is_idempotent():
    """Crashing during recovery-side checkpointing must be safe:
    re-running recovery replays the same frames."""
    cfg = config(8)
    scheme = "fast"
    total = crash_points_in(scheme, WORKLOAD, config=cfg)
    # Crash late (inside commit/checkpoint machinery), recover twice.
    result = run_to_crash_point(scheme, WORKLOAD, total - 3, config=cfg)
    assert result.ok, result.violations


def test_double_crash_during_recovery():
    """A second power failure immediately after the first recovery."""
    from repro.testing.crashsim import CrashablePM

    cfg = config(8)
    cls = engine_class("fast")
    pm = CrashablePM(cfg.arena_bytes, latency=cfg.latency, cost=cfg.cost,
                     atomic_granularity=8, cache_lines=cfg.cache_lines)
    engine = cls.create(cfg, pm=pm)
    for i in range(20):
        engine.insert(b"%03d" % i, b"v%d" % i)
    pm.crash()
    engine = cls.attach(cfg, pm)
    pm.crash()  # crash again right after recovery
    engine = cls.attach(cfg, pm)
    assert engine.verify() == 20
    assert engine.search(b"010") == b"v10"


@settings(max_examples=20, deadline=None)
@given(budget=st.integers(1, 400), seed=st.integers(0, 1 << 20))
def test_random_crash_points_fast(budget, seed):
    result = run_to_crash_point("fast", WORKLOAD, budget,
                                config=config(8), seed=seed)
    assert result.ok, result.violations


@settings(max_examples=20, deadline=None)
@given(budget=st.integers(1, 500), seed=st.integers(0, 1 << 20))
def test_random_crash_points_nvwal(budget, seed):
    result = run_to_crash_point("nvwal", WORKLOAD, budget,
                                config=config(8), seed=seed)
    assert result.ok, result.violations


@settings(max_examples=20, deadline=None)
@given(budget=st.integers(1, 400), seed=st.integers(0, 1 << 20))
def test_random_crash_points_fastplus(budget, seed):
    result = run_to_crash_point("fastplus", WORKLOAD, budget,
                                config=config(64), seed=seed)
    assert result.ok, result.violations
