"""Epoch-pipelined group commit.

Covers the grouped commit path end to end: logical equivalence with
the per-transaction path on every scheme, byte-identity of the
grouping-off path, the committed-vs-durable split surfaced by
``Session.commit_durable``, fence amortization floors, and stride-1
crash sweeps through the epoch-close window (stage -> shared fence ->
group mark) asserting all-or-nothing recovery at epoch granularity.
"""

import pytest

from repro.core import SystemConfig, open_engine
from repro.testing.crashsim import run_crash_sweep

from .conftest import SMALL, small_config

SCHEMES = ("fast", "fastplus", "nvwal")
PAYLOAD = bytes(range(48))


def grouped_config(**overrides):
    params = dict(group_commit=True, group_commit_size=4)
    params.update(overrides)
    return small_config(**params)


def _run_workload(engine, items=20):
    """Inserts, updates, multi-op transactions, deletes — every store
    path of the commit schemes."""
    for i in range(items):
        engine.insert(b"gk%04d" % i, PAYLOAD, replace=True)
    for i in range(0, items, 3):
        txn = engine.transaction()
        txn.update(b"gk%04d" % i, PAYLOAD[::-1])
        txn.commit()
    for i in range(0, items, 4):
        txn = engine.transaction()
        txn.insert(b"gx%04d" % i, PAYLOAD)
        txn.delete(b"gk%04d" % ((i + 1) % items))
        txn.commit()
    for i in range(0, items, 5):
        txn = engine.transaction()
        txn.delete(b"gx%04d" % ((i // 5) * 5))
        txn.commit()


def _contents(engine, items=20):
    return {
        prefix + b"%04d" % i: engine.search(prefix + b"%04d" % i)
        for prefix in (b"gk", b"gx")
        for i in range(items)
    }


class TestGroupedEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_same_final_state_as_ungrouped(self, scheme):
        plain = open_engine(small_config(scheme=scheme))
        _run_workload(plain)
        grouped = open_engine(grouped_config(scheme=scheme))
        _run_workload(grouped)
        grouped.drain_group_commit()
        assert grouped.verify() == plain.verify()
        assert _contents(grouped) == _contents(plain)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_commits_visible_before_drain(self, scheme):
        """Joining the epoch publishes the commit: later transactions
        (and read views) see it immediately, durability comes later."""
        engine = open_engine(grouped_config(scheme=scheme,
                                            group_commit_size=64))
        engine.insert(b"early", PAYLOAD)
        assert engine.group.member_count > 0  # still riding the epoch
        assert engine.search(b"early") == PAYLOAD

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_drain_is_idempotent(self, scheme):
        engine = open_engine(grouped_config(scheme=scheme))
        _run_workload(engine, items=6)
        engine.drain_group_commit()
        before = _contents(engine, items=6)
        engine.drain_group_commit()
        assert _contents(engine, items=6) == before


class TestGroupingOff:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_no_pipeline_without_the_knob(self, scheme):
        engine = open_engine(small_config(scheme=scheme))
        assert engine.group is None
        engine.drain_group_commit()  # must be a no-op, not an error

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_off_path_byte_identical(self, scheme):
        """An explicit ``group_commit=False`` run leaves the arena
        byte-for-byte identical to a default-config run — the knob
        touches nothing when off."""
        results = []
        for config in (small_config(scheme=scheme),
                       small_config(scheme=scheme, group_commit=False)):
            engine = open_engine(config)
            _run_workload(engine, items=12)
            results.append(engine.pm.read(0, config.arena_bytes))
        assert results[0] == results[1]


class TestCommitDurability:
    @pytest.mark.parametrize("scheme", ("fast", "fastplus"))
    def test_commit_durable_flips_at_epoch_close(self, scheme):
        engine = open_engine(grouped_config(scheme=scheme,
                                            group_commit_size=64))
        session = engine.session("c0")
        txn = session.transaction()
        txn.insert(b"pending", PAYLOAD)
        txn.commit()
        assert not session.commit_durable  # committed, riding the epoch
        engine.drain_group_commit()
        assert session.commit_durable

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_always_durable_without_grouping(self, scheme):
        engine = open_engine(small_config(scheme=scheme))
        session = engine.session("c0")
        txn = session.transaction()
        txn.insert(b"solid", PAYLOAD)
        txn.commit()
        assert session.commit_durable


class TestFenceAmortization:
    def _marginal_fences(self, scheme, config, items=24):
        engine = open_engine(config)
        snapshot = engine.obs.snapshot()
        for i in range(items):
            engine.insert(b"fk%04d" % i, PAYLOAD)
        engine.drain_group_commit()
        delta = engine.obs.since(snapshot)["registry"]["counters"]
        return delta.get("pm.fence", 0) / items

    def test_group_of_four_halves_fences(self):
        """The acceptance floor: group size 4 must pay at least 2x
        fewer fences per committed transaction than ungrouped
        (measured marginally — format-time fences excluded)."""
        plain = self._marginal_fences("fast", small_config(scheme="fast"))
        grouped = self._marginal_fences("fast", grouped_config(scheme="fast"))
        assert plain >= 2.0 * grouped

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_grouping_never_adds_fences(self, scheme):
        """Even where the ungrouped path is already cheap (FAST+
        in-place commits, NVWAL's per-frame installs) grouping must
        strictly reduce fences per transaction, never add them."""
        plain = self._marginal_fences(scheme, small_config(scheme=scheme))
        grouped = self._marginal_fences(scheme, grouped_config(scheme=scheme))
        assert grouped < plain

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_one_mark_per_epoch(self, scheme):
        engine = open_engine(grouped_config(scheme=scheme))
        snapshot = engine.obs.snapshot()
        for i in range(16):
            engine.insert(b"fk%04d" % i, PAYLOAD)
        engine.drain_group_commit()
        delta = engine.obs.since(snapshot)["registry"]["counters"]
        marks = delta.get("log.commit_mark", 0) + delta.get(
            "wal.commit_mark", 0)
        assert marks == delta.get("group.close", 0)
        assert delta.get("group.join", 0) == 16


class TestEpochCloseCrashSweep:
    """Stride-1 injection through the epoch-close window.

    The workloads are sized below the group size, so the only close is
    the end-of-run drain — every armed memory event of the stage ->
    shared fence -> group mark sequence gets its own crash point, and
    recovery must land on an epoch-granular prefix (all members or
    none; the group-aware validator in crashsim rejects torn groups).
    """

    @pytest.mark.parametrize("scheme", ("fast", "fastplus"))
    def test_close_window_all_or_nothing(self, scheme):
        config = SystemConfig(group_commit=True, group_commit_size=4,
                              **SMALL)
        workload = [("insert", b"ck%02d" % i, PAYLOAD) for i in range(3)]
        failures = run_crash_sweep(scheme, workload, config=config,
                                   stride=1, seeds=(0,))
        assert failures == []

    @pytest.mark.parametrize("scheme", ("fast", "fastplus"))
    def test_multi_epoch_sweep(self, scheme):
        """A workload spanning a mid-run size-triggered close plus the
        final drain: stride-1 over every armed event."""
        config = SystemConfig(group_commit=True, group_commit_size=2,
                              **SMALL)
        workload = [("insert", b"ck%02d" % i, PAYLOAD) for i in range(5)]
        workload.append(("update", b"ck00", PAYLOAD[::-1]))
        failures = run_crash_sweep(scheme, workload, config=config,
                                   stride=1, seeds=(0,))
        assert failures == []


class TestShardedGroupCommit:
    @pytest.mark.parametrize("scheme", ("fast", "fastplus"))
    def test_cross_shard_equivalence(self, scheme):
        """Grouped sharded runs (2PC decisions riding the epochs) end
        in the same logical state as ungrouped ones."""
        from repro.storage.sharding import ShardRouter

        keys = [b"sk%04d" % i for i in range(24)]
        finals = []
        for config in (small_config(scheme=scheme),
                       grouped_config(scheme=scheme)):
            router = ShardRouter.create(config, 2, scheme=scheme)
            session = router.session("c0")
            for i, key in enumerate(keys):
                txn = session.transaction()
                txn.insert(key, PAYLOAD, replace=True)
                if i % 3 == 2:  # a cross-shard multi-op transaction
                    txn.insert(keys[(i + 7) % len(keys)], PAYLOAD[::-1],
                               replace=True)
                txn.commit()
            router.drain_group_commit()
            finals.append((router.verify(),
                           [router.search(key) for key in keys]))
        assert finals[0] == finals[1]
