"""Crash injection through the multi-client scheduler.

The single-client crash sweeps (tests/core/test_crash_consistency.py)
prove each scheme survives a crash at any memory event.  These tests
interleave N clients through the deterministic scheduler first, so the
crash lands mid-interleaving: recovery must still yield exactly the
committed transactions, replayed in commit order, plus at most the one
item the running client had in flight.
"""

import pytest

from repro.testing.crashsim import (
    run_scheduler_crash_sweep,
    run_scheduler_to_crash_point,
    scheduler_crash_points_in,
)

SCHEMES = ("fast", "fastplus", "nvwal")


def _workloads():
    """Two clients with overlapping keys, one read-only-ish client."""
    w1 = [
        ("txn", [
            ("insert", b"a%02d" % i, b"x" * 24),
            ("insert", b"shared%02d" % i, b"from-c0"),
        ])
        for i in range(4)
    ]
    w2 = [
        ("txn", [
            ("insert", b"shared%02d" % i, b"from-c1"),
            ("delete", b"a%02d" % i, None),
        ])
        for i in range(3)
    ]
    w3 = [("insert", b"b%02d" % i, b"z" * 16) for i in range(4)]
    return [w1, w2, w3]


class TestScheduledCrashPoints:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_crash_points_exist(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        assert total > 20

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_single_midpoint_crash_recovers(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        result = run_scheduler_to_crash_point(
            scheme, _workloads(), total // 2
        )
        assert result.crashed
        assert result.ok, result.violations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_overlong_budget_runs_to_completion(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        result = run_scheduler_to_crash_point(
            scheme, _workloads(), total + 1000
        )
        assert not result.crashed
        assert result.ok, result.violations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sweep_finds_no_violations(self, scheme):
        # Stride keeps this a smoke-level sweep; the exhaustive version
        # runs in CI via run_scheduler_crash_sweep with stride=1.
        failures = run_scheduler_crash_sweep(
            scheme, _workloads(), stride=9, seeds=(0,)
        )
        assert failures == [], failures[:3]


class TestScheduledCrashDeterminism:
    def test_same_budget_same_outcome(self):
        a = run_scheduler_to_crash_point("fast", _workloads(), 33)
        b = run_scheduler_to_crash_point("fast", _workloads(), 33)
        assert a.crashed == b.crashed
        assert a.committed == b.committed
        assert a.recovered == b.recovered
        assert a.inflight == b.inflight
