"""Crash injection through the multi-client scheduler.

The single-client crash sweeps (tests/core/test_crash_consistency.py)
prove each scheme survives a crash at any memory event.  These tests
interleave N clients through the deterministic scheduler first, so the
crash lands mid-interleaving: recovery must still yield exactly the
committed transactions, replayed in commit order, plus at most the one
item the running client had in flight.
"""

import pytest

from repro.testing.crashsim import (
    run_scheduler_crash_sweep,
    run_scheduler_to_crash_point,
    scheduler_crash_points_in,
)

SCHEMES = ("fast", "fastplus", "nvwal")


def _workloads():
    """Two clients with overlapping keys, one read-only-ish client."""
    w1 = [
        ("txn", [
            ("insert", b"a%02d" % i, b"x" * 24),
            ("insert", b"shared%02d" % i, b"from-c0"),
        ])
        for i in range(4)
    ]
    w2 = [
        ("txn", [
            ("insert", b"shared%02d" % i, b"from-c1"),
            ("delete", b"a%02d" % i, None),
        ])
        for i in range(3)
    ]
    w3 = [("insert", b"b%02d" % i, b"z" * 16) for i in range(4)]
    return [w1, w2, w3]


class TestScheduledCrashPoints:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_crash_points_exist(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        assert total > 20

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_single_midpoint_crash_recovers(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        result = run_scheduler_to_crash_point(
            scheme, _workloads(), total // 2
        )
        assert result.crashed
        assert result.ok, result.violations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_overlong_budget_runs_to_completion(self, scheme):
        total = scheduler_crash_points_in(scheme, _workloads())
        result = run_scheduler_to_crash_point(
            scheme, _workloads(), total + 1000
        )
        assert not result.crashed
        assert result.ok, result.violations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sweep_finds_no_violations(self, scheme):
        # Stride keeps this a smoke-level sweep; the exhaustive version
        # runs in CI via run_scheduler_crash_sweep with stride=1.
        failures = run_scheduler_crash_sweep(
            scheme, _workloads(), stride=9, seeds=(0,)
        )
        assert failures == [], failures[:3]


class TestScheduledCrashDeterminism:
    def test_same_budget_same_outcome(self):
        a = run_scheduler_to_crash_point("fast", _workloads(), 33)
        b = run_scheduler_to_crash_point("fast", _workloads(), 33)
        assert a.crashed == b.crashed
        assert a.committed == b.committed
        assert a.recovered == b.recovered
        assert a.inflight == b.inflight


def _mvcc_workloads():
    """Two conflicting writers plus a lock-free MVCC reader client.

    The reader keeps snapshots pinned across the run, so version
    chains are live at (almost) every crash point — recovery must
    still yield exactly the committed prefix, with the volatile
    chains discarded.
    """
    w1, w2, _ = _workloads()
    reads = [("search", b"shared%02d" % (i % 3), None) for i in range(6)]
    return [w1, w2, {"items": reads, "read_only": True}]


class TestScheduledCrashWithReaders:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_midpoint_crash_recovers(self, scheme):
        total = scheduler_crash_points_in(scheme, _mvcc_workloads())
        result = run_scheduler_to_crash_point(
            scheme, _mvcc_workloads(), total // 2
        )
        assert result.crashed
        assert result.ok, result.violations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sweep_finds_no_violations(self, scheme):
        failures = run_scheduler_crash_sweep(
            scheme, _mvcc_workloads(), stride=11, seeds=(0,)
        )
        assert failures == [], failures[:3]

    def test_recovery_discards_version_chains(self):
        # Version chains are volatile metadata over persistent
        # pre-images: crash while a reader pins retained versions and
        # the recovered engine starts with no version state at all —
        # nothing is replayed, nothing leaks.
        import random

        from repro.core import SystemConfig, engine_class
        from repro.pm.crash import RandomPersist
        from repro.testing.crashsim import CrashablePM

        config = SystemConfig(
            npages=128, page_size=512, log_bytes=16384,
            heap_bytes=1 << 20, dram_bytes=64 * 512, scheme="fast",
        )
        cls = engine_class("fast")
        pm = CrashablePM(
            config.arena_bytes, latency=config.latency, cost=config.cost,
            atomic_granularity=config.atomic_granularity,
            cache_lines=config.cache_lines,
        )
        engine = cls.create(config, pm=pm)
        engine.insert(b"k", b"v0")
        reader = engine.session("r", read_only=True)
        rtxn = reader.transaction()
        assert rtxn.search(b"k") == b"v0"
        with engine.session("w") as writer:
            for i in range(3):
                writer.insert(b"k", b"v%d" % (i + 1), replace=True)
        assert engine.version_manager.versions_live() > 0
        assert rtxn.search(b"k") == b"v0"

        pm.crash(RandomPersist(rng=random.Random(0)))
        recovered = cls.attach(config, pm)
        # Rebuilt empty: the version manager is not even constructed.
        assert recovered._versions is None
        assert dict(recovered.scan())[b"k"] == b"v3"
        # And a fresh snapshot over the recovered engine works, seeing
        # only the committed state.
        with recovered.session("r2", read_only=True) as reader2:
            txn = reader2.transaction()
            assert txn.search(b"k") == b"v3"
            txn.commit()
        assert recovered.version_manager.versions_live() == 0
