"""Crash injection across savepoint usage.

Savepoint partial rollback performs durable work (reversing in-place
child-pointer swaps), so power failures during and after
``rollback_to`` need the same exhaustive treatment as commits: the
transaction's final committed effect must be exactly the
prefix-plus-post-savepoint writes, or nothing.
"""

import random

import pytest

from repro.core import SystemConfig, engine_class
from repro.pm.crash import RandomPersist
from repro.testing.crashsim import CrashPoint, CrashablePM


def config(scheme, granularity):
    return SystemConfig(
        scheme=scheme, npages=256, page_size=512, log_bytes=32768,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )


def run_savepoint_txn(scheme, granularity, budget, seed):
    """One transaction: keepers, savepoint, doomed bulk (forces splits
    and copy-on-write), rollback_to, more keepers, commit."""
    cfg = config(scheme, granularity)
    pm = CrashablePM(
        cfg.arena_bytes, latency=cfg.latency, cost=cfg.cost,
        atomic_granularity=granularity, cache_lines=cfg.cache_lines,
    )
    engine = engine_class(scheme).create(cfg, pm=pm)
    committed = False
    pm.budget = budget
    pm.events = 0
    pm.armed = True
    try:
        with engine.transaction() as txn:
            for i in range(8):
                txn.insert(b"keep%03d" % i, b"k" * 30)
            token = txn.savepoint()
            for i in range(40):
                txn.insert(b"doom%03d" % i, b"d" * 30)
            txn.rollback_to(token)
            for i in range(8, 12):
                txn.insert(b"keep%03d" % i, b"k" * 30)
        committed = True
    except CrashPoint:
        pass
    finally:
        pm.armed = False
    if committed:
        return engine, True
    pm.crash(RandomPersist(rng=random.Random(seed)))
    return engine_class(scheme).attach(cfg, pm), False


def verify(engine, committed):
    count = engine.verify()
    recovered = dict(engine.scan())
    doomed = [key for key in recovered if key.startswith(b"doom")]
    assert doomed == [], "rolled-back keys resurfaced: %r" % doomed[:3]
    if committed:
        assert count == 12
    else:
        # Atomicity: all 12 keepers or none.
        assert count in (0, 12), count
        if count:
            assert recovered[b"keep011"] == b"k" * 30


@pytest.mark.parametrize("scheme,granularity", [
    ("fast", 8), ("fastplus", 64), ("nvwal", 8),
])
def test_savepoint_txn_crash_sweep(scheme, granularity):
    budget = 1
    # NVWAL does most savepoint work in DRAM, so it exposes far fewer
    # PM crash points than the PM-resident schemes; sweep densely.
    stride = 11 if scheme == "nvwal" else 37
    runs = 0
    while True:
        engine, committed = run_savepoint_txn(
            scheme, granularity, budget, seed=budget
        )
        verify(engine, committed)
        runs += 1
        if committed:
            break
        budget += stride
    assert runs > 5, "sweep ended too early (%d runs)" % runs


@pytest.mark.parametrize("scheme,granularity", [
    ("fast", 8), ("fastplus", 64), ("nvwal", 8),
])
def test_savepoint_txn_completes_clean(scheme, granularity):
    engine, committed = run_savepoint_txn(scheme, granularity, None, seed=0)
    assert committed
    verify(engine, True)
