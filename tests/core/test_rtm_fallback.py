"""FAST⁺'s RTM fallback policy: retry, then slot-header logging.

The paper (footnote 1): "if an RTM transaction fails, our fallback
handler retries the RTM transaction until it succeeds. Alternatively,
we can implement a handler that falls back to slot-header logging if
RTM transactions continuously fail."  Both behaviours are implemented
and tested here.
"""

from repro.core import open_engine
from tests.core.conftest import small_config


def make_engine(**overrides):
    return open_engine(small_config(scheme="fastplus", **overrides))


def test_transient_aborts_are_retried():
    engine = make_engine()
    attempts = {"n": 0}

    def flaky(attempt):
        attempts["n"] += 1
        return attempt < 3  # abort twice, then succeed

    engine.rtm.abort_injector = flaky
    engine.insert(b"k1", b"v1")
    assert engine.search(b"k1") == b"v1"
    assert engine.rtm.stats.aborts >= 2
    assert engine.rtm_fallbacks == 0


def test_persistent_aborts_fall_back_to_logging():
    engine = make_engine()
    engine.rtm_max_retries = 4
    engine.rtm.abort_injector = lambda attempt: True  # RTM never works
    engine.insert(b"k2", b"v2")
    assert engine.search(b"k2") == b"v2"
    assert engine.rtm_fallbacks == 1
    assert engine.inplace_commits == 0


def test_fallback_commit_is_durable():
    engine = make_engine()
    engine.rtm_max_retries = 2
    engine.rtm.abort_injector = lambda attempt: True
    for i in range(20):
        engine.insert(b"%03d" % i, b"v%d" % i)
    pm = engine.pm
    pm.crash()
    from repro.core import engine_class

    recovered = engine_class("fastplus").attach(
        small_config(scheme="fastplus"), pm
    )
    assert recovered.verify() == 20
    assert recovered.search(b"007") == b"v7"


def test_fallback_engages_per_commit_not_permanently():
    engine = make_engine()
    engine.rtm_max_retries = 2
    flaky_window = {"on": True}
    engine.rtm.abort_injector = lambda attempt: flaky_window["on"]
    engine.insert(b"a", b"1")          # falls back
    flaky_window["on"] = False
    engine.insert(b"b", b"2")          # in-place again
    assert engine.rtm_fallbacks == 1
    assert engine.inplace_commits >= 1


def test_clwb_keeps_line_resident():
    """The clwb primitive (paper Figure 3) persists without evicting."""
    from repro.pm import DropAll, PersistentMemory

    pm = PersistentMemory(4096)
    pm.write(0, b"payload!")
    pm.clwb(0)
    pm.sfence()
    misses_before = pm.stats.load_misses
    assert pm.read(0, 8) == b"payload!"        # still a cache hit
    assert pm.stats.load_misses == misses_before
    pm.crash(DropAll())
    assert pm.read(0, 8) == b"payload!"        # and durable
