"""Shared fixtures for engine tests."""

import pytest

from repro.core import SystemConfig, open_engine

SMALL = dict(
    npages=256, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return SystemConfig(**params)


@pytest.fixture(params=["fast", "fastplus", "nvwal"])
def engine(request):
    """One engine per durable scheme (naive is tested separately)."""
    return open_engine(small_config(scheme=request.param))
