"""The deterministic cooperative multi-client scheduler."""

import pytest

from repro.core import SchedulerError, open_engine
from repro.core.scheduler import RetriesExhausted, Scheduler
from repro.obs import trace as ev

from tests.core.conftest import small_config


def _engine(scheme="fastplus", **overrides):
    return open_engine(small_config(scheme=scheme, **overrides))


def _disjoint_workloads(nclients, items=6):
    """Per-client items on well-separated keys (little contention)."""
    out = []
    for cid in range(nclients):
        out.append([
            ("txn", [
                ("insert", b"c%d-%03d" % (cid, i), b"v%d" % i),
                ("search", b"c%d-%03d" % (cid, i), None),
            ])
            for i in range(items)
        ])
    return out


def _hot_workloads(nclients, items=8):
    """Everyone hammers the same few keys (high contention)."""
    out = []
    for cid in range(nclients):
        out.append([
            ("txn", [
                ("insert", b"hot%d" % (i % 3), b"c%d-%d" % (cid, i)),
                ("think", 500.0, None),
                ("insert", b"hot%d" % ((i + 1) % 3), b"c%d-%d" % (cid, i)),
            ])
            for i in range(items)
        ])
    return out


class TestBasicInterleaving:
    def test_all_items_commit(self, engine):
        scheduler = Scheduler(engine)
        for items in _disjoint_workloads(3):
            scheduler.add_client(items)
        report = scheduler.run()
        assert report["commits"] == 18
        assert report["clients"] == 3
        assert len(report["commit_order"]) == 18
        assert engine.verify() == 18

    def test_interleaving_is_fair_without_contention(self):
        engine = _engine()
        scheduler = Scheduler(engine)
        for items in _disjoint_workloads(3, items=4):
            scheduler.add_client(items)
        report = scheduler.run()
        # Round-robin by simulated time: the first three commits come
        # from three different clients.
        first = [name for name, _ in report["commit_order"][:3]]
        assert sorted(first) == ["c0", "c1", "c2"]

    def test_commit_order_indices_sequential_per_client(self):
        engine = _engine()
        scheduler = Scheduler(engine)
        for items in _disjoint_workloads(2, items=5):
            scheduler.add_client(items)
        report = scheduler.run()
        seen = {}
        for name, idx in report["commit_order"]:
            assert idx == seen.get(name, -1) + 1
            seen[name] = idx

    def test_simulated_time_advances(self):
        engine = _engine()
        scheduler = Scheduler(engine)
        scheduler.add_client([("insert", b"k", b"v")])
        before = engine.clock.now_ns
        report = scheduler.run()
        assert report["simulated_ns"] > before
        assert report["throughput_tps"] > 0

    def test_naive_scheme_rejected(self):
        engine = _engine("naive")
        with pytest.raises(SchedulerError):
            Scheduler(engine)


class TestContention:
    def test_hot_keys_conflict_and_still_commit(self, engine):
        scheduler = Scheduler(engine)
        for items in _hot_workloads(4):
            scheduler.add_client(items)
        report = scheduler.run()
        assert report["commits"] == 32
        # Contention must actually have happened for this test to mean
        # anything — waits, aborts, or deadlocks.
        counters = engine.registry.counters()
        assert counters.get("lock.conflict", 0) > 0
        assert engine.verify() == 3

    def test_deadlock_detected_and_recovered(self):
        engine = _engine()
        # Two clients locking two keys on DIFFERENT leaf pages in
        # opposite order — the classic deadlock shape.  (Keys on the
        # same page serialize on the page latch and never deadlock.)
        for i in range(40):  # split the tree into several leaves
            engine.insert(b"seed%03d" % i, b"x" * 40)
        ka, kb = b"seed000", b"seed039"
        scheduler = Scheduler(engine)
        scheduler.add_client([("txn", [
            ("insert", ka, b"a1"), ("think", 2000.0, None),
            ("insert", kb, b"a2"),
        ])])
        scheduler.add_client([("txn", [
            ("insert", kb, b"b1"), ("think", 2000.0, None),
            ("insert", ka, b"b2"),
        ])])
        report = scheduler.run()
        assert report["commits"] == 2  # both eventually commit
        assert report["deadlocks"] >= 1
        assert report["retries"] >= 1
        # Final state is one of the serial orders.
        va, vb = engine.search(ka), engine.search(kb)
        assert (va, vb) in ((b"a1", b"a2"), (b"b2", b"b1"),
                            (b"a1", b"b1"), (b"b2", b"a2"))

    def test_timeout_fires_without_livelock(self):
        engine = _engine()
        engine.insert(b"k", b"0")
        # Tiny timeout: the second client times out rather than waiting
        # out the first client's long transaction.
        scheduler = Scheduler(engine, lock_timeout_ns=1000.0)
        scheduler.add_client([("txn", [
            ("insert", b"k", b"slow"), ("think", 50000.0, None),
            ("search", b"k", None),
        ])])
        scheduler.add_client([("insert", b"k", b"fast")])
        report = scheduler.run()
        assert report["commits"] == 2
        assert report["timeouts"] >= 1

    def test_retry_budget_exhaustion_raises(self):
        engine = _engine()
        engine.insert(b"k", b"0")
        scheduler = Scheduler(engine, lock_timeout_ns=100.0,
                              retry_backoff_ns=10.0, max_retries=2)
        scheduler.add_client([("txn", [
            ("insert", b"k", b"hold"), ("think", 1e9, None),
            ("search", b"k", None),
        ])])
        scheduler.add_client([("insert", b"k", b"starved")])
        with pytest.raises(SchedulerError):
            scheduler.run()


class TestDeterminism:
    def _run(self, scheme):
        engine = _engine(scheme)
        for i in range(10):
            engine.insert(b"seed%02d" % i, b"x" * 32)
        scheduler = Scheduler(engine)
        for items in _hot_workloads(4, items=6):
            scheduler.add_client(items)
        report = scheduler.run()
        return report, engine.registry.snapshot(), engine.clock.now_ns

    @pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
    def test_byte_identical_reruns(self, scheme):
        r1, reg1, ns1 = self._run(scheme)
        r2, reg2, ns2 = self._run(scheme)
        assert ns1 == ns2
        assert r1 == r2
        assert reg1 == reg2


class TestSerializability:
    def test_final_state_matches_commit_order_replay(self, engine):
        for i in range(8):
            engine.insert(b"sk%02d" % i, b"init")
        scheduler = Scheduler(engine)
        workloads = _hot_workloads(3, items=5)
        for items in workloads:
            scheduler.add_client(items)
        report = scheduler.run()
        # Replay committed items in commit order against a dict model:
        # strict 2PL makes that the serialization order.
        items_of = {"c%d" % i: workloads[i] for i in range(3)}
        model = {b"sk%02d" % i: b"init" for i in range(8)}
        for name, idx in report["commit_order"]:
            for kind, key, value in items_of[name][idx][1]:
                if kind == "insert":
                    model[key] = value
                elif kind == "delete":
                    model.pop(key, None)
        assert dict(engine.scan()) == model


def _reader_workloads(nclients, items=6, keys=8):
    """Per-client pure-read items over a shared preloaded key space."""
    out = []
    for cid in range(nclients):
        out.append([
            ("search", b"seed%02d" % ((cid + i) % keys), None)
            for i in range(items)
        ])
    return out


class TestReadOnlyClients:
    def test_write_ops_rejected_at_add_time(self):
        engine = _engine()
        scheduler = Scheduler(engine)
        with pytest.raises(SchedulerError):
            scheduler.add_client([("insert", b"k", b"v")], read_only=True)

    def test_pure_reader_mix_round_robins(self):
        # Zero-length think items commit without advancing the clock,
        # so every client ties on ready_at and the fairness key
        # (ready_at, least-recently-run, index) must rotate — a client
        # that never blocks still round-robins instead of letting the
        # lowest index streak.
        engine = _engine()
        order = []
        scheduler = Scheduler(
            engine, on_step=lambda client: order.append(client.index)
        )
        for _ in range(3):
            scheduler.add_client([("think", 0.0, None)] * 4, read_only=True)
        scheduler.run()
        assert order == [0, 1, 2] * 4

    def test_pure_reader_mix_byte_identical_reruns(self):
        def run():
            engine = _engine()
            for i in range(8):
                engine.insert(b"seed%02d" % i, b"x" * 24)
            scheduler = Scheduler(engine)
            for items in _reader_workloads(4, items=6):
                scheduler.add_client(items, read_only=True)
            report = scheduler.run()
            return report, engine.registry.snapshot(), engine.clock.now_ns

        assert run() == run()

    def test_pure_reader_mix_takes_no_locks(self):
        engine = _engine()
        for i in range(8):
            engine.insert(b"seed%02d" % i, b"x" * 24)
        scheduler = Scheduler(engine)
        for items in _reader_workloads(3, items=5):
            scheduler.add_client(items, read_only=True)
        report = scheduler.run()
        assert report["commits"] == 15
        assert report["aborts"] == 0
        # The run never even instantiated the lock manager.
        assert engine._lock_manager is None

    def test_mixed_readers_and_writers_deterministic(self):
        def run():
            engine = _engine()
            for i in range(8):
                engine.insert(b"seed%02d" % i, b"x" * 24)
            scheduler = Scheduler(engine)
            for items in _hot_workloads(2, items=4):
                scheduler.add_client(items)
            for items in _reader_workloads(2, items=5):
                scheduler.add_client(items, read_only=True)
            report = scheduler.run()
            return report, engine.registry.snapshot(), engine.clock.now_ns

        assert run() == run()


class TestPickStrategy:
    """The ``pick_strategy`` scheduling hook the schedule-space
    explorer drives interleavings through."""

    def _run(self, pick_strategy, *, tracing=False):
        engine = _engine(scheme="fast")
        engine.obs.tracing(tracing)
        scheduler = Scheduler(engine, pick_strategy=pick_strategy)
        for items in _disjoint_workloads(2, items=2):
            scheduler.add_client(items)
        report = scheduler.run()
        return engine, report

    def test_default_path_emits_no_sched_pick_events(self):
        engine, report = self._run(None, tracing=True)
        assert report["commits"] == 4
        assert engine.obs.trace.events(kind=ev.SCHED_PICK) == []

    def test_first_ready_strategy_matches_default_schedule(self):
        # ``ready`` arrives pre-sorted by the default pick key, so a
        # strategy that returns ready[0] reproduces the historical
        # schedule exactly — only the SCHED_PICK stamps are new.
        _, default_report = self._run(None)
        engine, hooked_report = self._run(lambda sched, ready: ready[0],
                                          tracing=True)
        assert hooked_report["commit_order"] == default_report["commit_order"]
        picks = engine.obs.trace.events(kind=ev.SCHED_PICK)
        assert picks, "strategy path must stamp every step"

    def test_sched_pick_events_attribute_every_step(self):
        engine, _ = self._run(lambda sched, ready: ready[0], tracing=True)
        picks = engine.obs.trace.events(kind=ev.SCHED_PICK)
        assert len(picks) == engine.registry.counter("sched.step").value
        # a=sid, b=client index: a stable one-to-one mapping.
        mapping = {}
        for event in picks:
            sid, index = event[3], event[4]
            assert mapping.setdefault(sid, index) == index

    def test_custom_strategy_reorders_commits(self):
        # Prefer the highest client index at every pick: client 1
        # finishes its items before client 0 gets a turn.
        _, report = self._run(lambda sched, ready: ready[-1])
        names = [name for name, _ in report["commit_order"]]
        assert names == ["c1", "c1", "c0", "c0"]

    def test_strategy_must_return_a_ready_client(self):
        with pytest.raises(SchedulerError, match="must return a READY"):
            self._run(lambda sched, ready: None)

    def test_retry_exhaustion_raises_dedicated_subclass(self):
        engine = _engine()
        engine.insert(b"k", b"0")
        scheduler = Scheduler(engine, lock_timeout_ns=100.0,
                              retry_backoff_ns=10.0, max_retries=2)
        scheduler.add_client([("txn", [
            ("insert", b"k", b"hold"), ("think", 1e9, None),
            ("search", b"k", None),
        ])])
        scheduler.add_client([("insert", b"k", b"starved")])
        with pytest.raises(RetriesExhausted):
            scheduler.run()
