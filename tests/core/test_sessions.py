"""Session-scoped transactions: concurrency, isolation, rollback."""

import pytest

from repro.core import LockConflict, TransactionError, open_engine
from repro.core.locking import LOCK_IX, root_resource

from tests.core.conftest import small_config


class TestSessionLifecycle:
    def test_open_and_close(self, engine):
        session = engine.session("alpha")
        assert session.name == "alpha"
        assert engine.sessions() == [session]
        session.close()
        assert engine.sessions() == []
        assert session.closed

    def test_context_manager(self, engine):
        with engine.session() as session:
            session.insert(b"k", b"v")
        assert session.closed
        assert engine.search(b"k") == b"v"

    def test_closed_session_rejects_transactions(self, engine):
        session = engine.session()
        session.close()
        with pytest.raises(TransactionError):
            session.transaction()

    def test_nested_transaction_rejected(self, engine):
        with engine.session() as session:
            txn = session.transaction()
            with pytest.raises(TransactionError):
                session.transaction()
            txn.rollback()

    def test_close_rolls_back_open_transaction(self, engine):
        session = engine.session()
        txn = session.transaction()
        txn.insert(b"gone", b"x")
        session.close()
        assert engine.search(b"gone") is None

    def test_naive_engine_refuses_sessions(self):
        engine = open_engine(small_config(scheme="naive"))
        with pytest.raises(TransactionError):
            engine.session()


class TestConcurrentTransactions:
    def test_two_open_transactions_disjoint_keys(self, engine):
        # Two sessions with open transactions at once — impossible on
        # the old one-implicit-txn engine.  Force them onto different
        # pages by seeding enough keys to split the tree.
        for i in range(40):
            engine.insert(b"seed%03d" % i, b"x" * 40)
        s1, s2 = engine.session(), engine.session()
        t1, t2 = s1.transaction(), s2.transaction()
        t1.insert(b"seed000", b"one", replace=True)
        t2.insert(b"seed039", b"two", replace=True)
        t1.commit()
        t2.commit()
        assert engine.search(b"seed000") == b"one"
        assert engine.search(b"seed039") == b"two"
        s1.close(), s2.close()

    def test_conflicting_write_raises(self, engine):
        s1, s2 = engine.session(), engine.session()
        t1 = s1.transaction()
        t1.insert(b"hot", b"v1")
        t2 = s2.transaction()
        with pytest.raises(LockConflict):
            t2.insert(b"hot", b"v2")
        t1.commit()
        # After the holder commits, the other session proceeds.
        t2.insert(b"hot", b"v2", replace=True)
        t2.commit()
        assert engine.search(b"hot") == b"v2"
        s1.close(), s2.close()

    def test_locks_released_on_commit_and_rollback(self, engine):
        s1, s2 = engine.session(), engine.session()
        locks = engine.lock_manager
        t1 = s1.transaction()
        t1.insert(b"a", b"1")
        assert locks.locks_of(s1.sid)
        t1.commit()
        assert not locks.locks_of(s1.sid)
        t2 = s2.transaction()
        t2.insert(b"b", b"2")
        t2.rollback()
        assert not locks.locks_of(s2.sid)
        s1.close(), s2.close()

    def test_root_intent_locks(self, engine):
        with engine.session() as session:
            txn = session.transaction()
            txn.insert(b"k", b"v")
            held = engine.lock_manager.holds(
                session.sid, root_resource(0)
            )
            assert held in (LOCK_IX, "X")
            txn.commit()


class TestSessionRollback:
    def test_rollback_is_precise(self, engine):
        """Rolling back one session must not disturb another session's
        open (uncommitted) transaction."""
        for i in range(40):
            engine.insert(b"seed%03d" % i, b"x" * 40)
        s1, s2 = engine.session(), engine.session()
        t1 = s1.transaction()
        t1.insert(b"seed000", b"keepme", replace=True)
        t2 = s2.transaction()
        t2.insert(b"seed039", b"dropme", replace=True)
        t2.rollback()
        # t1's uncommitted work survived t2's rollback.
        t1.commit()
        assert engine.search(b"seed000") == b"keepme"
        assert engine.search(b"seed039") == b"x" * 40
        assert engine.verify() == 40
        s1.close(), s2.close()

    def test_rollback_with_page_allocation(self, engine):
        """A rolled-back transaction that split pages returns every
        allocated page — no leak, no corruption of the other session."""
        free_before = engine.store.free_page_count()
        with engine.session() as session:
            txn = session.transaction()
            for i in range(60):  # enough to force splits
                txn.insert(b"bulk%03d" % i, b"y" * 48)
            txn.rollback()
        assert engine.verify() == 0
        assert engine.store.free_page_count() == free_before

    def test_per_session_obs_counters(self, engine):
        with engine.session("alice") as session:
            session.insert(b"k1", b"v")
            txn = session.transaction()
            txn.insert(b"k2", b"v")
            txn.rollback()
        registry = engine.registry
        assert registry.value("session.alice.commit") == 1
        assert registry.value("session.alice.abort") == 1

    def test_session_clock_segment(self, engine):
        with engine.session("bob") as session:
            session.insert(b"k", b"v")
        assert engine.clock.elapsed("session.bob") > 0


class TestSingleSessionUnchanged:
    def test_default_path_has_no_lock_traffic(self, engine):
        for i in range(10):
            engine.insert(b"k%02d" % i, b"v")
        with engine.transaction() as txn:
            txn.insert(b"k99", b"v")
        counters = engine.registry.counters("lock.")
        assert counters == {}
        assert engine.registry.value("engine.session.open") == 0

    def test_engine_transactions_between_session_transactions(self, engine):
        # The implicit engine transaction bypasses the lock manager, so
        # it may not overlap an *open* session transaction — but it
        # composes freely with idle sessions.
        with engine.session() as session:
            session.insert(b"from-session", b"s")
            with engine.transaction() as implicit:
                implicit.insert(b"from-engine", b"e")
            session.insert(b"again", b"s2")
        assert engine.search(b"from-session") == b"s"
        assert engine.search(b"from-engine") == b"e"
        assert engine.search(b"again") == b"s2"
