"""The OCC writer path: snapshot reads, buffered writes, commit-time
validation, and the 2PL fallback streak."""

import pytest

from repro.core import TransactionError, open_engine
from repro.core.occ import OCCConflict

from tests.core.conftest import small_config


def _delta(engine, snapshot):
    return engine.obs.since(snapshot)["registry"]["counters"]


def _rival_update(engine, key, value):
    """Commit a conflicting write through a separate 2PL session."""
    with engine.session("rival") as rival:
        with rival.transaction() as txn:
            txn.insert(key, value, replace=True)


class TestOccBasics:
    def test_commit_installs_writes(self, engine):
        with engine.session("o", isolation="occ") as session:
            with session.transaction() as txn:
                txn.insert(b"k", b"v1")
        assert engine.search(b"k") == b"v1"
        counters = engine.obs.snapshot()["registry"]["counters"]
        assert counters["occ.begin"] == 1
        assert counters["occ.validation"] == 1
        assert counters["occ.commit"] == 1

    def test_reads_pin_snapshot(self, engine):
        engine.insert(b"k", b"orig")
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            assert txn.search(b"k") == b"orig"
            _rival_update(engine, b"other", b"x")
            # The rival's commit is invisible: reads stay at pin_ts.
            assert txn.search(b"other") is None
            assert txn.search(b"k") == b"orig"
            txn.rollback()

    def test_read_your_own_writes(self, engine):
        engine.insert(b"a", b"1")
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            txn.insert(b"b", b"2")
            assert txn.search(b"b") == b"2"
            assert [k for k, _v in txn.scan()] == [b"a", b"b"]
            txn.delete(b"a")
            assert txn.search(b"a") is None
            assert [k for k, _v in txn.scan()] == [b"b"]
            txn.commit()
        assert dict(engine.scan()) == {b"b": b"2"}

    def test_zero_locks_before_commit(self, engine):
        engine.insert(b"k", b"orig")
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            snapshot = engine.obs.snapshot()
            txn.search(b"k")
            txn.insert(b"w", b"x")
            txn.update(b"k", b"new!")
            assert _delta(engine, snapshot).get("lock.acquire", 0) == 0
            txn.commit()
            # The install is the only lock traffic the whole txn paid.
            assert _delta(engine, snapshot).get("lock.acquire", 0) > 0

    def test_read_only_occ_txn_commits_lock_free(self, engine):
        engine.insert(b"k", b"v")
        with engine.session("o", isolation="occ") as session:
            snapshot = engine.obs.snapshot()
            with session.transaction() as txn:
                assert txn.search(b"k") == b"v"
            delta = _delta(engine, snapshot)
            assert delta.get("lock.acquire", 0) == 0
            # Nothing installed, so nothing counts as an OCC commit.
            assert delta.get("occ.commit", 0) == 0

    def test_savepoint_rolls_back_buffered_writes(self, engine):
        with engine.session("o", isolation="occ") as session:
            with session.transaction() as txn:
                txn.insert(b"keep", b"1")
                token = txn.savepoint()
                txn.insert(b"drop", b"2")
                assert txn.search(b"drop") == b"2"
                txn.rollback_to(token)
                assert txn.search(b"drop") is None
        assert dict(engine.scan()) == {b"keep": b"1"}


class TestValidationConflict:
    def test_stale_read_aborts_commit(self, engine):
        engine.insert(b"k", b"orig")
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            assert txn.search(b"k") == b"orig"
            _rival_update(engine, b"k", b"dirty")
            txn.insert(b"w", b"x")
            with pytest.raises(OCCConflict):
                txn.commit()
            # The conflict leaves the transaction open for rollback.
            txn.rollback()
        assert engine.search(b"w") is None
        assert engine.search(b"k") == b"dirty"

    def test_retry_after_conflict_succeeds(self, engine):
        engine.insert(b"k", b"orig")
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            txn.search(b"k")
            _rival_update(engine, b"k", b"dirty")
            txn.insert(b"w", b"x")
            with pytest.raises(OCCConflict):
                txn.commit()
            txn.rollback()
            with session.transaction() as retry:
                assert retry.search(b"k") == b"dirty"
                retry.insert(b"w", b"x")
        assert engine.search(b"w") == b"x"

    def test_same_page_disjoint_keys_still_conflict(self, engine):
        # Validation is page-granular (read sets are packed page/root
        # resources): a rival commit to the same leaf invalidates a
        # read of a *different* key on that page.
        with engine.session("a", isolation="occ") as s1, \
                engine.session("b", isolation="occ") as s2:
            t1, t2 = s1.transaction(), s2.transaction()
            t1.insert(b"a", b"1")
            t2.insert(b"b", b"2")
            t1.commit()
            with pytest.raises(OCCConflict):
                t2.commit()
            t2.rollback()
        assert dict(engine.scan()) == {b"a": b"1"}

    def test_distinct_pages_both_commit(self, engine):
        # Split the tree so the two writers touch different leaves:
        # truly disjoint page sets validate and install concurrently.
        for i in range(40):
            engine.insert(b"seed%03d" % i, b"x" * 40)
        with engine.session("a", isolation="occ") as s1, \
                engine.session("b", isolation="occ") as s2:
            t1, t2 = s1.transaction(), s2.transaction()
            t1.update(b"seed001", b"y" * 40)
            t2.update(b"seed038", b"z" * 40)
            t1.commit()
            t2.commit()
        assert engine.search(b"seed001") == b"y" * 40
        assert engine.search(b"seed038") == b"z" * 40


class TestFallback:
    def _fail_once(self, engine, session, marker):
        txn = session.transaction()
        txn.search(b"k")
        _rival_update(engine, b"k", marker)
        txn.insert(b"w", marker)
        with pytest.raises(OCCConflict):
            txn.commit()
        txn.rollback()

    def test_fallback_after_streak_then_reset(self, engine):
        engine.insert(b"k", b"orig")
        limit = engine.config.occ_max_validation_failures
        with engine.session("o", isolation="occ") as session:
            for i in range(limit):
                self._fail_once(engine, session, b"r%d" % i)

            # Next transaction runs under classic 2PL: locks are taken
            # during the operations, before any commit.
            snapshot = engine.obs.snapshot()
            txn = session.transaction()
            txn.insert(b"w", b"fallback")
            delta = _delta(engine, snapshot)
            assert delta.get("occ.fallback", 0) == 1
            assert delta.get("occ.begin", 0) == 0
            assert delta.get("lock.acquire", 0) > 0
            txn.commit()

            # The committed fallback resets the streak: optimism returns.
            snapshot = engine.obs.snapshot()
            with session.transaction() as txn:
                txn.insert(b"w2", b"optimistic")
            delta = _delta(engine, snapshot)
            assert delta.get("occ.begin", 0) == 1
            assert delta.get("occ.fallback", 0) == 0
        assert engine.search(b"w") == b"fallback"
        assert engine.search(b"w2") == b"optimistic"


class TestImplicitTransactionGuard:
    """Regression: ``engine.transaction()`` bypasses the lock manager,
    so it must refuse to overlap any open writer-session transaction."""

    def test_overlap_with_locked_session_raises(self, engine):
        with engine.session("w") as session:
            txn = session.transaction()
            txn.insert(b"k", b"v")
            with pytest.raises(TransactionError):
                engine.transaction()
            txn.rollback()

    def test_overlap_with_occ_session_raises(self, engine):
        with engine.session("o", isolation="occ") as session:
            txn = session.transaction()
            txn.insert(b"k", b"v")
            with pytest.raises(TransactionError):
                engine.transaction()
            txn.rollback()

    def test_read_only_session_is_exempt(self, engine):
        engine.insert(b"k", b"v")
        with engine.session("r", isolation="read_only") as session:
            txn = session.transaction()
            assert txn.search(b"k") == b"v"
            with engine.transaction() as implicit:
                implicit.insert(b"k2", b"v2")
            txn.rollback()
        assert engine.search(b"k2") == b"v2"

    def test_allowed_again_after_commit(self, engine):
        with engine.session("w") as session:
            with session.transaction() as txn:
                txn.insert(b"k", b"v")
            with engine.transaction() as implicit:
                implicit.insert(b"k2", b"v2")
        assert engine.search(b"k2") == b"v2"


class TestGroupedOcc:
    def test_occ_commits_join_epochs(self):
        config = small_config(
            scheme="fast", group_commit=True, group_commit_size=2,
        )
        engine = open_engine(config, scheme="fast")
        with engine.session("o", isolation="occ") as session:
            with session.transaction() as txn:
                txn.insert(b"a", b"1")
            assert session.commit_durable is False
            with session.transaction() as txn:
                txn.insert(b"b", b"2")
            engine.drain_group_commit()
            assert session.commit_durable is True
        counters = engine.obs.snapshot()["registry"]["counters"]
        assert counters["occ.commit"] == 2
        assert counters["group.join"] >= 2
        assert dict(engine.scan()) == {b"a": b"1", b"b": b"2"}


class TestEngineApiValidation:
    def test_unknown_isolation_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.session("x", isolation="serializable")
