"""Regression: an exception escaping mid-operation must not leak held
locks or open sessions (satellite of the analysis PR: the scheduler's
error path used to leave every client's locks granted forever)."""

import pytest

from repro.core import SystemConfig, open_engine
from repro.core.scheduler import Scheduler, SchedulerError

_CONFIG = dict(
    npages=128, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)


def _engine(scheme="fast"):
    return open_engine(SystemConfig(**_CONFIG), scheme=scheme)


def test_error_mid_transaction_releases_locks_and_closes_sessions():
    engine = _engine()
    scheduler = Scheduler(engine)
    # The second op of the txn explodes after the first op acquired
    # exclusive page locks.
    scheduler.add_client([
        ("txn", [("insert", b"k1", b"v1"), ("explode", b"k2", b"v2")]),
    ])
    scheduler.add_client([("insert", b"k3", b"v3")])
    with pytest.raises(SchedulerError):
        scheduler.run()
    locks = engine.lock_manager
    for client in scheduler.clients:
        assert locks.locks_of(client.session.sid) == {}
        assert client.txn is None
        assert client.session.closed
    # The engine is fully usable afterwards: no lock survives to block
    # a fresh session.
    with engine.session("after") as session:
        with session.transaction() as txn:
            txn.insert(b"post", b"recovered")
    assert engine.search(b"post") == b"recovered"


def test_cleanup_disabled_leaves_crash_state_untouched():
    engine = _engine()
    scheduler = Scheduler(engine, cleanup_on_error=False)
    scheduler.add_client([
        ("txn", [("insert", b"k1", b"v1"), ("explode", b"k2", b"v2")]),
    ])
    with pytest.raises(SchedulerError):
        scheduler.run()
    # No post-error rollback: the failing client's transaction is still
    # open with its locks held, exactly as a simulated power cut needs.
    client = scheduler.clients[0]
    assert client.txn is not None
    assert engine.lock_manager.locks_of(client.session.sid) != {}
    assert not client.session.closed


def test_successful_run_still_closes_sessions():
    engine = _engine()
    scheduler = Scheduler(engine)
    scheduler.add_client([("insert", b"k1", b"v1")])
    report = scheduler.run()
    assert report["commits"] == 1
    assert all(client.session.closed for client in scheduler.clients)
