"""Regression: pages freed and reused within one transaction.

A copy-on-write inside a transaction frees its source page; if that
page was allocated by the same transaction it returns to the free list
immediately and a later split may re-allocate it.  Post-commit cell
reclamation must not run through the stale page object — it used to
write free-chunk headers into the new tenant's cells (found by the
secondary-index backfill workload, which creates and heavily mutates a
whole tree inside one transaction).
"""

import pytest

from repro.core import SystemConfig, open_engine
from repro.db.records import decode_composite, encode_composite
from repro.testing import run_crash_sweep


def config(scheme, granularity=64):
    return SystemConfig(
        scheme=scheme, npages=1024, page_size=1024,
        log_bytes=65536, heap_bytes=1 << 21, dram_bytes=128 * 1024,
        atomic_granularity=granularity,
    )


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_bulk_build_tree_in_one_transaction(scheme):
    engine = open_engine(config(scheme))
    keys = sorted(encode_composite(["d%d" % (i % 5), i]) for i in range(300))
    with engine.transaction() as txn:
        txn.create_tree(1)
        for key in keys:
            txn.insert(key, b"", root_slot=1)
    assert engine.verify(root_slot=1) == 300
    scanned = [key for key, _ in engine.scan(root_slot=1)]
    assert scanned == keys
    for key in scanned:
        decode_composite(key)  # no torn bytes


@pytest.mark.parametrize("scheme", ["fast", "fastplus"])
def test_bulk_build_survives_crash_sweep(scheme):
    granularity = 64 if scheme == "fastplus" else 8
    cfg = SystemConfig(
        npages=256, page_size=512, log_bytes=32768,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )
    # Single-op transactions with composite keys that split and
    # copy-on-write aggressively (mimicking index maintenance).
    workload = [
        ("insert", encode_composite(["g%d" % (i % 3), i]), b"x" * 30)
        for i in range(20)
    ]
    failures = run_crash_sweep(scheme, workload, config=cfg, stride=6)
    assert failures == [], failures[:3]


def test_mass_update_in_one_transaction():
    """Updates force out-of-place rewrites + cow churn in one txn."""
    engine = open_engine(config("fastplus"))
    with engine.transaction() as txn:
        for i in range(120):
            txn.insert(b"%04d" % i, b"a" * 40)
    with engine.transaction() as txn:
        for i in range(120):
            txn.insert(b"%04d" % i, b"b" * 60, replace=True)
        for i in range(0, 120, 2):
            txn.delete(b"%04d" % i)
    assert engine.verify() == 60
    assert engine.search(b"0001") == b"b" * 60
    assert engine.search(b"0002") is None
