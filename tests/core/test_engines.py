"""Engine-level behavioural tests (all durable schemes)."""

import pytest

from repro.core import (
    SystemConfig,
    TransactionError,
    engine_class,
    open_engine,
)
from tests.core.conftest import small_config


# ----------------------------------------------------------------------
# Basic CRUD through transactions
# ----------------------------------------------------------------------


def test_insert_search(engine):
    engine.insert(b"alpha", b"1")
    assert engine.search(b"alpha") == b"1"
    assert engine.search(b"beta") is None


def test_multi_op_transaction(engine):
    with engine.transaction() as txn:
        for i in range(10):
            txn.insert(b"k%02d" % i, b"v%d" % i)
    assert engine.verify() == 10


def test_transaction_sees_own_writes(engine):
    with engine.transaction() as txn:
        txn.insert(b"mine", b"pending")
        assert txn.search(b"mine") == b"pending"
    assert engine.search(b"mine") == b"pending"


def test_rollback_discards_changes(engine):
    engine.insert(b"keep", b"1")
    txn = engine.transaction()
    txn.insert(b"drop", b"2")
    txn.rollback()
    assert engine.search(b"keep") == b"1"
    assert engine.search(b"drop") is None
    assert engine.verify() == 1


def test_exception_rolls_back(engine):
    with pytest.raises(RuntimeError):
        with engine.transaction() as txn:
            txn.insert(b"ghost", b"x")
            raise RuntimeError("boom")
    assert engine.search(b"ghost") is None


def test_update_and_delete(engine):
    engine.insert(b"k", b"old")
    with engine.transaction() as txn:
        assert txn.update(b"k", b"new")
    assert engine.search(b"k") == b"new"
    assert engine.delete(b"k")
    assert engine.search(b"k") is None


def test_nested_transaction_rejected(engine):
    txn = engine.transaction()
    with pytest.raises(TransactionError):
        engine.transaction()
    txn.rollback()


def test_closed_transaction_rejected(engine):
    txn = engine.transaction()
    txn.commit()
    with pytest.raises(TransactionError):
        txn.insert(b"x", b"y")


def test_bulk_inserts_with_splits(engine):
    n = 400
    for i in range(n):
        engine.insert(b"%06d" % i, b"value-%d" % i)
    assert engine.verify() == n
    assert engine.search(b"%06d" % (n // 2)) == b"value-%d" % (n // 2)


def test_scan_ordering(engine):
    import random

    keys = [b"%05d" % i for i in range(120)]
    shuffled = keys[:]
    random.Random(3).shuffle(shuffled)
    for k in shuffled:
        engine.insert(k, b"v")
    assert [k for k, _ in engine.scan()] == keys


def test_multiple_trees(engine):
    with engine.transaction() as txn:
        txn.create_tree(1)
    engine.insert(b"a", b"tree0", root_slot=0)
    engine.insert(b"a", b"tree1", root_slot=1)
    assert engine.search(b"a", root_slot=0) == b"tree0"
    assert engine.search(b"a", root_slot=1) == b"tree1"


def test_read_only_transaction_is_cheap(engine):
    engine.insert(b"x", b"1")
    flushes_before = engine.stats.clflushes
    with engine.transaction() as txn:
        assert txn.search(b"x") == b"1"
    assert engine.stats.clflushes == flushes_before


def test_simulated_time_advances(engine):
    before = engine.clock.now_ns
    engine.insert(b"t", b"v")
    assert engine.clock.now_ns > before
    assert engine.clock.elapsed("commit") > 0


# ----------------------------------------------------------------------
# Restart (clean shutdown) behaviour
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_clean_restart_preserves_data(scheme):
    config = small_config(scheme=scheme)
    engine = open_engine(config)
    for i in range(100):
        engine.insert(b"%04d" % i, b"v%d" % i)
    pm = engine.pm
    pm.crash()  # "clean" power-off: everything was fenced or replayable
    engine2 = engine_class(scheme).attach(config, pm)
    assert engine2.verify() == 100
    assert engine2.search(b"0042") == b"v42"


# ----------------------------------------------------------------------
# Scheme-specific behaviour
# ----------------------------------------------------------------------


def test_fastplus_uses_inplace_commit_for_single_inserts():
    engine = open_engine(small_config(scheme="fastplus"))
    for i in range(20):
        engine.insert(b"%04d" % i, b"v")
    assert engine.inplace_commits > 0
    assert engine.pm.stats.rtm_commits == engine.inplace_commits


def test_fastplus_falls_back_on_multi_page_txn():
    engine = open_engine(small_config(scheme="fastplus"))
    before = engine.logged_commits
    with engine.transaction() as txn:
        for i in range(60):  # forces splits -> multi-page
            txn.insert(b"%04d" % i, b"v" * 10)
    assert engine.logged_commits == before + 1


def test_fastplus_leaf_capacity_is_cache_line_bound():
    engine = open_engine(small_config(scheme="fastplus", page_size=4096))
    assert engine.leaf_capacity == 28


def test_fast_never_uses_rtm():
    engine = open_engine(small_config(scheme="fast"))
    for i in range(50):
        engine.insert(b"%04d" % i, b"v")
    assert engine.pm.stats.rtm_commits == 0


def test_fast_logs_every_write_transaction():
    engine = open_engine(small_config(scheme="fast"))
    fences_before = engine.stats.fences
    engine.insert(b"k", b"v")
    # log flush fence + commit-mark fence + checkpoint fence + truncate
    assert engine.stats.fences - fences_before >= 3


def test_nvwal_defers_database_writes_until_checkpoint():
    config = small_config(scheme="nvwal", nvwal_checkpoint_bytes=1 << 30)
    engine = open_engine(config)
    for i in range(50):
        engine.insert(b"%04d" % i, b"v")
    # Database pages still hold no committed tree (root slot unset).
    assert engine.store.root(0) == 0
    assert engine.checkpoints == 0
    engine.checkpoint()
    assert engine.store.root(0) != 0
    assert engine.verify() == 50


def test_nvwal_checkpoint_triggers_on_threshold():
    config = small_config(scheme="nvwal", nvwal_checkpoint_bytes=8 * 1024)
    engine = open_engine(config)
    for i in range(200):
        engine.insert(b"%04d" % i, b"v" * 30)
    assert engine.checkpoints > 0
    assert engine.verify() == 200


def test_nvwal_page_fetch_after_eviction():
    # Tiny DRAM cache forces evictions and WAL-reconstructing fetches.
    config = small_config(scheme="nvwal", dram_bytes=8 * 512)
    engine = open_engine(config)
    for i in range(120):
        engine.insert(b"%04d" % i, b"v%d" % i)
    assert engine.verify() == 120
    for i in range(0, 120, 13):
        assert engine.search(b"%04d" % i) == b"v%d" % i


def test_commit_flush_counts_favor_fastplus():
    """Paper Figures 8/9b: FAST⁺ issues the fewest cache-line flushes
    (measured at the paper's page size, where single-page commits
    dominate)."""
    counts = {}
    for scheme in ("fast", "fastplus", "nvwal"):
        engine = open_engine(
            small_config(scheme=scheme, page_size=4096, npages=128,
                         dram_bytes=64 * 4096)
        )
        base = engine.stats.clflushes
        for i in range(100):
            engine.insert(b"%05d" % i, b"x" * 64)
        counts[scheme] = engine.stats.clflushes - base
    assert counts["fastplus"] < counts["fast"]
    assert counts["fastplus"] < counts["nvwal"]


def test_naive_engine_has_no_rollback():
    engine = open_engine(small_config(scheme="naive"))
    engine.insert(b"a", b"1")
    txn = engine.transaction()
    txn.insert(b"b", b"2")
    with pytest.raises(NotImplementedError):
        txn.rollback()
    engine._active = None  # clean up for the fixture


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        open_engine(SystemConfig(scheme="bogus"))
