"""Sharded multi-client runs: deterministic byte-identical reruns, and
hypothesis-driven equivalence against the unsharded engine replaying
the same commit order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig, open_engine
from repro.core.scheduler import Scheduler
from repro.storage.sharding import ShardRouter


def _config():
    return SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )


def _run_sharded(shards=2, clients=3, items=8, cross_ratio=0.3):
    from repro.bench.multiclient import sharded_client_workload

    router = ShardRouter.create(_config(), shards, scheme="fast")
    scheduler = Scheduler(router)
    for index in range(clients):
        scheduler.add_client(sharded_client_workload(
            index, items=items, cross_ratio=cross_ratio, key_space=12,
        ))
    report = scheduler.run()
    counters = router.obs.snapshot()["registry"]["counters"]
    events = router.trace.events()
    state = dict(router.scan())
    return report, counters, events, state


class TestDeterminism:
    def test_multi_shard_reruns_are_byte_identical(self):
        a = _run_sharded()
        b = _run_sharded()
        assert a[0] == b[0]      # full scheduler report, commit order incl.
        assert a[1] == b[1]      # every counter, exactly
        assert a[2] == b[2]      # the entire trace event stream
        assert a[3] == b[3]

    def test_shard_count_changes_placement_not_outcome(self):
        # Same workload bytes at 1 vs 2 vs 4 shards: commits and final
        # state agree (throughput/trace legitimately differ).
        states = {}
        commits = {}
        for shards in (1, 2, 4):
            report, _counters, _events, state = _run_sharded(
                shards=shards, cross_ratio=0.0,
            )
            states[shards] = state
            commits[shards] = report["commits"]
        assert states[1] == states[2] == states[4]
        assert commits[1] == commits[2] == commits[4]

    def test_cross_shard_txns_appear_in_twopc_counters(self):
        _report, counters, _events, _state = _run_sharded(cross_ratio=1.0)
        assert counters["twopc.decision"] > 0
        assert counters["twopc.prepare"] == 2 * counters["twopc.decision"]
        assert counters["twopc.commit"] == counters["twopc.prepare"]


# -- hypothesis: sharded == unsharded on the same commit order ----------

_KEYS = [b"h%02d" % i for i in range(12)]

_txns = st.lists(
    st.tuples(
        st.booleans(),  # commit (True) or roll back (False)
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "insert", "insert", "delete"]),
                st.integers(0, len(_KEYS) - 1),
                st.binary(min_size=1, max_size=24),
            ),
            min_size=1, max_size=5,
        ),
    ),
    min_size=1, max_size=12,
)


def _apply_txn(txn, ops, present):
    """Run ``ops`` through an open transaction; ``present`` tracks keys
    visible to it so deletes always target existing keys."""
    for kind, key_no, value in ops:
        key = _KEYS[key_no]
        if kind == "insert":
            txn.insert(key, value, replace=True)
            present.add(key)
        elif key in present:
            txn.delete(key)
            present.discard(key)


@settings(max_examples=25, deadline=None)
@given(raw=_txns, shards=st.integers(1, 4))
def test_sharded_state_matches_unsharded_replay(raw, shards):
    router = ShardRouter.create(_config(), shards, scheme="fast")
    committed = []
    present = set()
    with router.session("w") as session:
        for commit, ops in raw:
            snapshot = set(present)
            txn = session.transaction()
            _apply_txn(txn, ops, present)
            if commit:
                txn.commit()
                committed.append(ops)
            else:
                txn.rollback()
                present = snapshot  # rolled back: state reverts

    # Replay only the committed transactions, in commit order, on a
    # plain unsharded engine.
    engine = open_engine(_config(), scheme="fast")
    replay_present = set()
    for ops in committed:
        with engine.transaction() as txn:
            _apply_txn(txn, ops, replay_present)

    assert dict(router.scan()) == dict(engine.scan())
    assert router.verify() == engine.verify()
