"""Crash sweeps over composite (multi-operation) transactions.

The paper's slot-header logging exists precisely for transactions that
touch several pages: these sweeps crash multi-record transactions at
every sampled memory event and require all-or-nothing visibility of
the *whole* transaction (exact-state validation)."""

import pytest

from repro.core import SystemConfig
from repro.testing import run_crash_sweep

MULTI_TXN_WORKLOAD = [
    ("txn", [("insert", b"a%02d" % i, b"x" * 30) for i in range(6)]),
    ("txn", [("insert", b"b%02d" % i, b"y" * 30) for i in range(6)]),
    ("txn", [
        ("insert", b"c00", b"z"),
        ("delete", b"a02", None),
        ("insert", b"a05", b"rewritten"),
        ("delete", b"b01", None),
    ]),
    ("txn", [("insert", b"d%02d" % i, b"w" * 40) for i in range(10)]),
]


def config(granularity):
    return SystemConfig(
        npages=128, page_size=512, log_bytes=32768,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
        atomic_granularity=granularity,
    )


@pytest.mark.parametrize("scheme,granularity", [
    ("fast", 8), ("fastplus", 64), ("nvwal", 8),
])
def test_multi_op_transactions_are_atomic_under_crash(scheme, granularity):
    failures = run_crash_sweep(
        scheme, MULTI_TXN_WORKLOAD, config=config(granularity), stride=3,
    )
    assert failures == [], failures[:3]


def test_naive_engine_blends_multi_op_transactions():
    failures = run_crash_sweep(
        "naive", MULTI_TXN_WORKLOAD, config=config(8), stride=3,
    )
    assert failures, "naive in-place paging cannot be transactionally atomic"
    # The failures include torn transactional state, not only
    # structural damage.
    all_violations = " ".join(
        violation for _, result in failures for violation in result.violations
    )
    assert ("durability" in all_violations or "atomicity" in all_violations
            or "phantom" in all_violations)