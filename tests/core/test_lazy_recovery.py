"""Lazy recovery mode: O(log) restart, deferred GC, lazy free lists."""

import dataclasses

import pytest

from repro.core import engine_class, open_engine
from repro.testing import run_crash_sweep
from tests.core.conftest import small_config


def lazy_config(scheme, granularity=8):
    return dataclasses.replace(
        small_config(scheme=scheme, atomic_granularity=granularity),
        eager_recovery_gc=False,
    )


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_lazy_recovery_preserves_data(scheme):
    config = lazy_config(scheme, 64 if scheme == "fastplus" else 8)
    engine = open_engine(config)
    for i in range(150):
        engine.insert(b"%04d" % i, b"v%d" % i)
    for i in range(0, 150, 3):
        engine.delete(b"%04d" % i)
    pm = engine.pm
    pm.crash()
    recovered = engine_class(scheme).attach(config, pm)
    assert recovered.verify() == 100
    # Writes after a lazy recovery reuse stale free lists safely
    # (validated on first touch).
    for i in range(0, 150, 3):
        recovered.insert(b"%04d" % i, b"again")
    assert recovered.verify() == 150


def test_lazy_recovery_is_constant_time_for_fast():
    """FAST's eagerly-checkpointed log means lazy recovery does O(1)
    simulated work regardless of database size."""
    times = []
    for n in (100, 800):
        config = lazy_config("fast")
        engine = open_engine(config)
        for i in range(n):
            engine.insert(b"%05d" % i, b"x" * 40)
        pm = engine.pm
        pm.crash()
        before = pm.clock.now_ns
        engine_class("fast").attach(config, pm)
        times.append(pm.clock.now_ns - before)
    assert times[1] < times[0] * 2, times


@pytest.mark.parametrize("scheme", ["fast", "nvwal"])
def test_lazy_recovery_crash_sweep(scheme):
    workload = (
        [("insert", b"%03d" % i, b"x" * 30) for i in range(12)]
        + [("delete", b"%03d" % i, None) for i in range(0, 12, 2)]
        + [("insert", b"%03d" % i, b"y" * 40) for i in range(0, 12, 2)]
    )
    failures = run_crash_sweep(
        scheme, workload, config=lazy_config(scheme), stride=5,
    )
    assert failures == [], failures[:3]


def test_deferred_gc_reclaims_on_demand():
    config = lazy_config("fast")
    engine = open_engine(config)
    with engine.transaction() as txn:
        for i in range(60):
            txn.insert(b"%03d" % i, b"x" * 30)
    # Crash mid-transaction: pages leak under lazy recovery...
    txn = engine.transaction()
    for i in range(60, 120):
        txn.insert(b"%03d" % i, b"y" * 30)
    engine.pm.crash()
    recovered = engine_class("fast").attach(config, engine.pm)
    free_before = recovered.store.free_page_count()
    reclaimed = recovered.garbage_collect()  # ...until asked
    assert reclaimed >= 0
    assert recovered.store.free_page_count() >= free_before
    assert recovered.verify() == 60
