"""Crash matrix: every durable engine x every writeback policy.

``run_crash_sweep`` injects a power failure at every ``stride``-th armed
memory event of a mixed insert/update/delete workload and validates the
recovered database against the model (durability + atomicity +
structural integrity — the executable form of the paper's Section 4.4
case analysis).  This module sweeps that matrix across:

* the three durable schemes (fast, fastplus, nvwal);
* the extreme writeback policies (``PersistAll``: every unfenced store
  reaches PM; ``DropAll``: none do) and seeded ``RandomPersist`` mixes.

It additionally asserts the *observability* of recovery: the trace
events captured in ``CrashTestResult.recovery_events`` show replay
doing work exactly where the scheme's design says it must.
"""

import pytest

from repro.obs.trace import RECOVERY_REPLAY
from repro.pm.crash import DropAll, PersistAll
from repro.testing import crash_points_in, run_crash_sweep, run_to_crash_point

SCHEMES = ("fast", "fastplus", "nvwal")

#: Mixed single-op transactions: inserts, then updates of every other
#: key, then deletes of every third key.
WORKLOAD = (
    [("insert", b"%02d" % i, b"v%d" % i) for i in range(10)]
    + [("update", b"%02d" % i, b"u%d" % i) for i in range(0, 10, 2)]
    + [("delete", b"%02d" % i, None) for i in range(0, 10, 3)]
)


def _expected_final_state():
    model = {}
    for i in range(10):
        model[b"%02d" % i] = b"v%d" % i
    for i in range(0, 10, 2):
        model[b"%02d" % i] = b"u%d" % i
    for i in range(0, 10, 3):
        model.pop(b"%02d" % i)
    return model


@pytest.mark.parametrize("scheme", SCHEMES)
def test_no_crash_baseline(scheme):
    """budget=None: the workload completes and matches the model."""
    result = run_to_crash_point(scheme, WORKLOAD, None)
    assert not result.crashed
    assert result.ok, result.violations
    assert result.recovered == _expected_final_state()


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("policy", [PersistAll(), DropAll()],
                         ids=["persist-all", "drop-all"])
def test_extreme_writeback_policies(scheme, policy):
    failures = run_crash_sweep(
        scheme, WORKLOAD, stride=7, policies=[policy],
    )
    assert failures == [], [
        (budget, result.violations) for budget, result in failures[:3]
    ]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_random_writeback_orderings(scheme):
    """Seeded ``RandomPersist``: arbitrary subsets of unfenced lines
    survive the failure."""
    failures = run_crash_sweep(scheme, WORKLOAD, stride=7, seeds=(0, 1))
    assert failures == [], [
        (budget, result.violations) for budget, result in failures[:3]
    ]


# ---------------------------------------------------------------------------
# Recovery is observable: the trace shows replay working
# ---------------------------------------------------------------------------

def _replay_budgets(scheme, budgets):
    """Budgets (of those given) whose recovery emitted replay events."""
    hits = []
    for budget in budgets:
        result = run_to_crash_point(scheme, WORKLOAD, budget,
                                    policy=PersistAll())
        assert result.crashed
        assert result.ok, result.violations
        for event in result.recovery_events:
            assert event[2] == RECOVERY_REPLAY
        if result.recovery_events:
            hits.append(budget)
    return hits


def test_fast_replays_only_inside_the_commit_window():
    """FAST's log is empty except between a persisted commit mark and
    the truncate that follows its eager checkpoint — so only *some*
    crash points replay, but a workload-wide sweep must find them."""
    total = crash_points_in("fast", WORKLOAD)
    hits = _replay_budgets("fast", range(1, total + 1, 3))
    assert hits, "no crash point exercised FAST log replay"
    assert len(hits) < total // 3 + 1, "FAST log should usually be empty"


def test_fastplus_inplace_commits_leave_no_log_residue():
    """FAST+ commits these single-record transactions in place under
    RTM; the slot-header log stays empty, so recovery finds nothing to
    replay at any crash point."""
    total = crash_points_in("fastplus", WORKLOAD)
    hits = _replay_budgets("fastplus", range(1, total + 1, 3))
    assert hits == []


def test_nvwal_always_replays_its_committed_frames():
    """NVWAL checkpoints lazily, so committed WAL frames accumulate and
    every post-commit crash point makes recovery walk the chain."""
    total = crash_points_in("nvwal", WORKLOAD)
    hits = _replay_budgets("nvwal", range(total // 4, total + 1, total // 4))
    # Every probed point past the first commit replays at least one frame.
    assert hits == list(range(total // 4, total + 1, total // 4))
