"""Engine storage introspection."""

import pytest

from repro.core import open_engine
from tests.core.conftest import small_config


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_page_stats_shape(scheme):
    engine = open_engine(small_config(scheme=scheme))
    for i in range(200):
        engine.insert(b"%04d" % i, b"x" * 24)
    stats = engine.page_stats()
    assert stats["pages_by_type"]["leaf"] >= 2
    assert stats["reachable_pages"] >= 3
    assert 0.2 < stats["fill_factor"] <= 1.0
    assert stats["fragmented_bytes"] >= 0
    assert stats["free_pages"] > 0


def test_fragmentation_shows_and_vacuum_clears():
    engine = open_engine(small_config(scheme="fast"))
    for i in range(200):
        engine.insert(b"%04d" % i, b"x" * 30)
    for i in range(0, 200, 2):
        engine.delete(b"%04d" % i)
    fragmented_before = engine.page_stats()["fragmented_bytes"]
    assert fragmented_before > 0
    engine.compact()
    assert engine.page_stats()["fragmented_bytes"] < fragmented_before / 2


def test_overflow_pages_counted():
    engine = open_engine(small_config(scheme="fastplus"))
    engine.insert(b"big", b"z" * 3000)
    stats = engine.page_stats()
    assert stats["pages_by_type"].get("overflow", 0) >= 3
