"""Unit tests for the persistent heap allocator."""

import pytest

from repro.pm import AllocationError, PersistentHeap, PersistentMemory


def make_heap(size=4096):
    pm = PersistentMemory(size)
    return pm, PersistentHeap.format(pm, 0, size)


def test_alloc_returns_in_bounds_payload():
    pm, heap = make_heap()
    addr = heap.pmalloc(100)
    assert 0 < addr < pm.size
    pm.write(addr, b"x" * 100)  # must not raise


def test_distinct_allocations_do_not_overlap():
    _, heap = make_heap()
    a = heap.pmalloc(64)
    b = heap.pmalloc(64)
    assert abs(a - b) >= 64


def test_block_size_reports_capacity():
    _, heap = make_heap()
    addr = heap.pmalloc(50)
    assert heap.block_size(addr) >= 50


def test_free_then_realloc_reuses_space():
    _, heap = make_heap()
    addr = heap.pmalloc(512)
    free_before = heap.free_bytes()
    heap.pfree(addr)
    assert heap.free_bytes() > free_before
    again = heap.pmalloc(512)
    assert again == addr


def test_exhaustion_raises():
    _, heap = make_heap(size=1024)
    heap.pmalloc(512)
    with pytest.raises(AllocationError):
        heap.pmalloc(4096)


def test_zero_or_negative_size_rejected():
    _, heap = make_heap()
    with pytest.raises(AllocationError):
        heap.pmalloc(0)


def test_double_free_detected():
    _, heap = make_heap()
    addr = heap.pmalloc(32)
    heap.pfree(addr)
    with pytest.raises(AllocationError):
        heap.pfree(addr)


def test_coalescing_allows_large_realloc():
    _, heap = make_heap(size=2048)
    blocks = [heap.pmalloc(200) for _ in range(6)]
    for addr in blocks:
        heap.pfree(addr)
    # After coalescing the whole arena is one block again.
    big = heap.pmalloc(1500)
    assert big is not None


def test_attach_recovers_allocated_blocks():
    pm, heap = make_heap()
    keep = heap.pmalloc(128)
    gone = heap.pmalloc(64)
    heap.pfree(gone)
    pm.crash()  # metadata was persisted eagerly
    recovered = PersistentHeap.attach(pm, 0, pm.size)
    assert recovered.allocated_blocks() == [keep]


def test_attach_detects_corruption():
    pm, heap = make_heap()
    heap.pmalloc(16)
    pm.write_u32(0, 0x12345678)
    pm.persist(0, 4)
    with pytest.raises(AllocationError):
        PersistentHeap.attach(pm, 0, pm.size)


def test_alloc_charges_heap_cost_and_counts():
    pm, heap = make_heap()
    before = pm.clock.now_ns
    heap.pmalloc(64)
    assert pm.clock.now_ns - before >= pm.cost.heap_alloc_ns
    assert pm.stats.pm_allocs == 1


def test_many_alloc_free_cycles_stay_consistent():
    _, heap = make_heap(size=8192)
    live = []
    for round_no in range(20):
        live.append(heap.pmalloc(64 + round_no))
        if len(live) > 3:
            heap.pfree(live.pop(0))
    payloads = sorted(live)
    for first, second in zip(payloads, payloads[1:]):
        assert second - first >= 64
