"""Unit tests for the simulated clock."""

from repro.pm import SimClock


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(10)
    clock.advance(5.5)
    assert clock.now_ns == 15.5


def test_non_positive_advance_is_ignored():
    clock = SimClock()
    clock.advance(0)
    clock.advance(-3)
    assert clock.now_ns == 0


def test_segment_attribution():
    clock = SimClock()
    with clock.segment("commit"):
        clock.advance(100)
    clock.advance(50)
    assert clock.elapsed("commit") == 100
    assert clock.now_ns == 150


def test_nested_segments_charge_all_open():
    clock = SimClock()
    with clock.segment("commit"):
        clock.advance(10)
        with clock.segment("log_flush"):
            clock.advance(30)
    assert clock.elapsed("commit") == 40
    assert clock.elapsed("log_flush") == 30


def test_same_segment_reentered_accumulates():
    clock = SimClock()
    for _ in range(3):
        with clock.segment("search"):
            clock.advance(7)
    assert clock.elapsed("search") == 21


def test_snapshot_and_since():
    clock = SimClock()
    with clock.segment("a"):
        clock.advance(5)
    snap = clock.snapshot()
    with clock.segment("a"):
        clock.advance(2)
    with clock.segment("b"):
        clock.advance(3)
    elapsed, deltas = clock.since(snap)
    assert elapsed == 5
    assert deltas == {"a": 2, "b": 3}


def test_since_omits_unchanged_segments():
    clock = SimClock()
    with clock.segment("a"):
        clock.advance(5)
    snap = clock.snapshot()
    clock.advance(1)
    _, deltas = clock.since(snap)
    assert "a" not in deltas


def test_reset_zeroes_everything():
    clock = SimClock()
    with clock.segment("x"):
        clock.advance(9)
    clock.reset()
    assert clock.now_ns == 0
    assert clock.segments() == {}


def test_segment_closed_on_exception():
    clock = SimClock()
    try:
        with clock.segment("x"):
            raise ValueError
    except ValueError:
        pass
    clock.advance(10)
    assert clock.elapsed("x") == 0
