"""Unit and property tests for the persistent-memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm import (
    CACHE_LINE,
    DropAll,
    LatencyProfile,
    PersistAll,
    PersistSubset,
    PersistentMemory,
    RandomPersist,
    VolatileMemory,
    WORD,
)


def make_pm(**kwargs):
    kwargs.setdefault("latency", LatencyProfile(read_ns=300, write_ns=300))
    return PersistentMemory(4096, **kwargs)


# ----------------------------------------------------------------------
# Basic load/store visibility
# ----------------------------------------------------------------------


def test_read_back_own_write():
    pm = make_pm()
    pm.write(100, b"hello world")
    assert pm.read(100, 11) == b"hello world"


def test_write_spanning_lines_reads_back():
    pm = make_pm()
    data = bytes(range(100, 200))
    pm.write(CACHE_LINE - 10, data)
    assert pm.read(CACHE_LINE - 10, len(data)) == data


def test_initial_contents_zero():
    pm = make_pm()
    assert pm.read(0, 32) == bytes(32)


def test_u16_u32_u64_round_trip():
    pm = make_pm()
    pm.write_u16(0, 0xBEEF)
    pm.write_u32(8, 0xDEADBEEF)
    pm.write_u64(16, 0x0123456789ABCDEF)
    assert pm.read_u16(0) == 0xBEEF
    assert pm.read_u32(8) == 0xDEADBEEF
    assert pm.read_u64(16) == 0x0123456789ABCDEF


def test_out_of_bounds_access_raises():
    pm = make_pm()
    with pytest.raises(IndexError):
        pm.read(4090, 10)
    with pytest.raises(IndexError):
        pm.write(-1, b"x")


def test_size_must_be_line_multiple():
    with pytest.raises(ValueError):
        PersistentMemory(100)


def test_bad_atomic_granularity_rejected():
    with pytest.raises(ValueError):
        PersistentMemory(4096, atomic_granularity=16)


# ----------------------------------------------------------------------
# Persistence semantics
# ----------------------------------------------------------------------


def test_unflushed_write_is_not_durable():
    pm = make_pm()
    pm.write(0, b"secret")
    assert pm.durable_bytes(0, 6) == bytes(6)


def test_persist_makes_data_durable():
    pm = make_pm()
    pm.write(0, b"secret")
    pm.persist(0, 6)
    assert pm.durable_bytes(0, 6) == b"secret"


def test_clflush_without_fence_not_guaranteed():
    pm = make_pm()
    pm.write(0, b"data")
    pm.clflush(0)
    # In flight: a DropAll crash may lose it.
    pm.crash(DropAll())
    assert pm.read(0, 4) == bytes(4)


def test_fence_completes_inflight_flush():
    pm = make_pm()
    pm.write(0, b"data")
    pm.clflush(0)
    pm.sfence()
    pm.crash(DropAll())
    assert pm.read(0, 4) == b"data"


def test_write_after_flush_redirties_line():
    pm = make_pm()
    pm.write(0, b"AAAA")
    pm.persist(0, 4)
    pm.write(0, b"BBBB")
    pm.crash(DropAll())
    assert pm.read(0, 4) == b"AAAA"


def test_flush_range_covers_every_line():
    pm = make_pm()
    data = bytes([7]) * (3 * CACHE_LINE)
    pm.write(10, data)
    pm.flush_range(10, len(data))
    pm.sfence()
    assert pm.durable_bytes(10, len(data)) == data


def test_is_durably_clean():
    pm = make_pm()
    assert pm.is_durably_clean(0, 4096)
    pm.write(128, b"x")
    assert not pm.is_durably_clean(128, 1)
    assert pm.is_durably_clean(0, 64)
    pm.persist(128, 1)
    assert pm.is_durably_clean(0, 4096)


# ----------------------------------------------------------------------
# Crash model
# ----------------------------------------------------------------------


def test_crash_persist_all_keeps_dirty_data():
    pm = make_pm()
    pm.write(0, b"keepme")
    pm.crash(PersistAll())
    assert pm.read(0, 6) == b"keepme"


def test_crash_drop_all_restores_old_data():
    pm = make_pm()
    pm.write(0, b"old!")
    pm.persist(0, 4)
    pm.write(0, b"new!")
    pm.crash(DropAll())
    assert pm.read(0, 4) == b"old!"


def test_word_granularity_tearing():
    pm = make_pm(atomic_granularity=WORD)
    pm.write(0, b"A" * 16)  # words 0 and 1 of line 0
    pm.crash(PersistSubset({(0, 0)}))
    assert pm.read(0, 8) == b"A" * 8
    assert pm.read(8, 8) == bytes(8)


def test_word_granularity_never_tears_inside_word():
    pm = make_pm(atomic_granularity=WORD)
    pm.write(0, b"ABCDEFGH")
    for survives in (set(), {(0, 0)}):
        fresh = make_pm(atomic_granularity=WORD)
        fresh.write(0, b"ABCDEFGH")
        fresh.crash(PersistSubset(survives))
        assert fresh.read(0, 8) in (bytes(8), b"ABCDEFGH")


def test_line_granularity_is_all_or_nothing():
    pm = make_pm(atomic_granularity=CACHE_LINE)
    pm.write(0, b"X" * 40)  # several words of line 0
    pm.crash(PersistSubset({(0, 0)}))
    assert pm.read(0, 40) == b"X" * 40
    pm2 = make_pm(atomic_granularity=CACHE_LINE)
    pm2.write(0, b"X" * 40)
    pm2.crash(PersistSubset(set()))
    assert pm2.read(0, 40) == bytes(40)


def test_crash_clears_volatile_state():
    pm = make_pm()
    pm.write(0, b"zz")
    pm.crash(PersistAll())
    assert pm.is_durably_clean(0, 4096)


def test_dirty_units_word_mode():
    pm = make_pm(atomic_granularity=WORD)
    pm.write(0, b"12345678")          # line 0, word 0
    pm.write(CACHE_LINE + 8, b"12")   # line 1, word 1
    assert pm.dirty_units() == [(0, 0), (1, 1)]
    assert pm.dirty_unit_count() == 2


def test_dirty_units_line_mode():
    pm = make_pm(atomic_granularity=CACHE_LINE)
    pm.write(0, b"ab")
    pm.write(CACHE_LINE, b"cd")
    assert pm.dirty_units() == [(0, 0), (1, 0)]


def test_random_persist_is_reproducible():
    import random

    outcomes = []
    for _ in range(2):
        pm = make_pm(atomic_granularity=WORD)
        pm.write(0, bytes(range(64)))
        pm.crash(RandomPersist(rng=random.Random(42)))
        outcomes.append(pm.durable_bytes(0, 64))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 4000), st.binary(min_size=1, max_size=64)),
        max_size=12,
    ),
    seed=st.integers(0, 2**16),
)
def test_crash_survivors_are_prefix_consistent(writes, seed):
    """After any crash, every 8-byte word equals either its old or its
    new value — never a blend."""
    import random

    pm = make_pm(atomic_granularity=WORD)
    shadow_old = bytes(4096)
    for addr, data in writes:
        if addr + len(data) > 4096:
            continue
        pm.write(addr, data)
    shadow_new = bytearray(shadow_old)
    for addr, data in writes:
        if addr + len(data) > 4096:
            continue
        shadow_new[addr : addr + len(data)] = data
    pm.crash(RandomPersist(rng=random.Random(seed)))
    durable = pm.durable_bytes(0, 4096)
    for word in range(4096 // WORD):
        lo, hi = word * WORD, (word + 1) * WORD
        assert durable[lo:hi] in (shadow_old[lo:hi], bytes(shadow_new[lo:hi]))


# ----------------------------------------------------------------------
# Latency accounting
# ----------------------------------------------------------------------


def test_read_miss_charges_pm_latency():
    pm = make_pm()
    before = pm.clock.now_ns
    pm.read(0, 8)
    assert pm.clock.now_ns - before >= 300


def test_read_hit_is_cheap():
    pm = make_pm()
    pm.read(0, 8)
    before = pm.clock.now_ns
    pm.read(0, 8)
    assert pm.clock.now_ns - before < 300


def test_clflush_charges_write_latency():
    pm = make_pm(latency=LatencyProfile(read_ns=300, write_ns=900))
    pm.write(0, b"x")
    before = pm.clock.now_ns
    pm.clflush(0)
    assert pm.clock.now_ns - before >= 900


def test_store_cost_is_latency_independent():
    slow = make_pm(latency=LatencyProfile(read_ns=1200, write_ns=1200))
    fast = make_pm(latency=LatencyProfile(read_ns=120, write_ns=120))
    for pm in (slow, fast):
        pm.read(0, 1)  # warm residency so the write path matches
    s0, f0 = slow.clock.now_ns, fast.clock.now_ns
    slow.write(0, b"abcd")
    fast.write(0, b"abcd")
    assert slow.clock.now_ns - s0 == pytest.approx(fast.clock.now_ns - f0)


def test_clflush_evicts_line_from_cache():
    pm = make_pm()
    pm.read(0, 8)
    pm.write(0, b"y")
    pm.clflush(0)
    pm.sfence()
    misses_before = pm.stats.load_misses
    pm.read(0, 8)
    assert pm.stats.load_misses == misses_before + 1


def test_stats_count_events():
    pm = make_pm()
    pm.write(0, b"abc")
    pm.persist(0, 3)
    assert pm.stats.stores == 1
    assert pm.stats.bytes_stored == 3
    assert pm.stats.clflushes == 1
    assert pm.stats.fences == 1


def test_stats_snapshot_since():
    pm = make_pm()
    pm.write(0, b"a")
    snap = pm.stats.snapshot()
    pm.write(0, b"b")
    delta = pm.stats.since(snap)
    assert delta.stores == 1


# ----------------------------------------------------------------------
# Volatile memory
# ----------------------------------------------------------------------


def test_volatile_round_trip_and_crash():
    dram = VolatileMemory(1024)
    dram.write(10, b"volatile")
    assert dram.read(10, 8) == b"volatile"
    dram.crash()
    assert dram.read(10, 8) == bytes(8)


def test_volatile_charges_dram_latency():
    dram = VolatileMemory(1024, latency=LatencyProfile(dram_ns=120))
    before = dram.clock.now_ns
    dram.read(0, 8)
    assert dram.clock.now_ns - before >= 120


def test_volatile_bounds_checked():
    dram = VolatileMemory(64)
    with pytest.raises(IndexError):
        dram.write(60, b"123456789")
