"""Tests for the crash-injection harness itself."""

import pytest

from repro.core import SystemConfig
from repro.pm.crash import PersistAll
from repro.testing import (
    CrashPoint,
    CrashablePM,
    crash_points_in,
    run_crash_sweep,
    run_to_crash_point,
)

WORKLOAD = [("insert", b"%02d" % i, b"v%d" % i) for i in range(5)]


def config():
    return SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512, atomic_granularity=8,
    )


def test_crashable_pm_counts_only_when_armed():
    pm = CrashablePM(4096)
    pm.write(0, b"x")
    assert pm.events == 0
    pm.armed = True
    pm.write(0, b"y")
    pm.clflush(0)
    pm.sfence()
    assert pm.events == 3


def test_crashable_pm_raises_at_budget():
    pm = CrashablePM(4096)
    pm.armed = True
    pm.budget = 2
    pm.write(0, b"a")
    with pytest.raises(CrashPoint):
        pm.write(8, b"b")
    assert pm.armed is False  # disarmed after firing


def test_rtm_commit_is_not_a_crash_point():
    from repro.htm import RTM

    pm = CrashablePM(4096)
    rtm = RTM(pm)
    pm.armed = True
    pm.budget = 1  # would fire on the first counted write
    rtm.execute(lambda txn: txn.write(0, b"atomic"))
    assert pm.read(0, 6) == b"atomic"  # applied without firing


def test_no_crash_run_reports_clean():
    result = run_to_crash_point("fast", WORKLOAD, None, config=config())
    assert not result.crashed
    assert result.ok
    assert len(result.recovered) == 5


def test_crash_points_in_is_positive_and_stable():
    total = crash_points_in("fast", WORKLOAD, config=config())
    assert total > 10
    assert crash_points_in("fast", WORKLOAD, config=config()) == total


def test_crash_point_runs_report_inflight():
    result = run_to_crash_point("fast", WORKLOAD, 5, config=config())
    assert result.crashed
    assert result.inflight  # crashed inside some transaction


def test_validator_catches_planted_corruption():
    """If recovery 'lost' a committed key, the validator must say so."""
    result = run_to_crash_point("fast", WORKLOAD, None, config=config())
    result.recovered.pop(b"02")
    from repro.testing.crashsim import _validate

    class _FakeEngine:
        def verify(self):
            return 0

    result.violations.clear()
    _validate(_FakeEngine(), result, strict_inflight=False)
    assert any("durability" in v for v in result.violations)


def test_sweep_with_policies():
    failures = run_crash_sweep(
        "fast", WORKLOAD, config=config(), stride=10, policies=[PersistAll()]
    )
    assert failures == []


def test_sweep_respects_max_points():
    # Just exercises the sampling path.
    failures = run_crash_sweep(
        "fast", WORKLOAD, config=config(), stride=1, max_points=5, seeds=(1,)
    )
    assert failures == []
