"""2PC crash-sweep conformance: enumerate every crash point through
cross-shard commits — including the windows between prepare records,
the coordinator decision, and the per-shard commit marks — and require
all-shards-or-none recovery at each."""

import pytest

from repro.testing.crashsim import (
    run_sharded_crash_sweep,
    run_sharded_to_crash_point,
    sharded_crash_points_in,
)

#: One client whose middle item is a cross-shard transaction — by
#: crc32, keys b"c00"/b"c04"/b"c01"/b"c05" land on shards 0/1/2/3 of 4
#: (and alternate 0/1 at 2 shards) — so a stride-1 sweep walks
#: straight through every 2PC window: each prepare record, the
#: coordinator decision, and each per-shard commit mark.
_CROSS_WORKLOAD = [[
    ("insert", b"c02", b"p"),
    ("txn", [
        ("insert", b"c00", b"a"),
        ("insert", b"c04", b"b"),
        ("insert", b"c01", b"c"),
        ("insert", b"c05", b"d"),
    ]),
    ("insert", b"c06", b"q"),
]]

_MIXED_WORKLOADS = [
    [
        ("txn", [("insert", b"w0a", b"1"), ("insert", b"w0b", b"2")]),
        ("insert", b"w0c", b"3"),
        ("txn", [("insert", b"w0d", b"4"), ("delete", b"w0a", None)]),
    ],
    [
        ("insert", b"w1a", b"5"),
        ("txn", [("insert", b"w1b", b"6"), ("insert", b"w1c", b"7")]),
        ("search", b"w0c", None),
    ],
]


class TestSweepMechanics:
    def test_crash_points_enumerable(self):
        total = sharded_crash_points_in("fast", _CROSS_WORKLOAD, shards=2)
        assert total > 20  # prepare/decide/commit all emit memory events

    def test_uncrashed_run_validates_clean(self):
        total = sharded_crash_points_in("fast", _CROSS_WORKLOAD, shards=2)
        result = run_sharded_to_crash_point(
            "fast", _CROSS_WORKLOAD, total + 100, shards=2,
        )
        assert not result.crashed
        assert result.ok, result.violations

    def test_crashed_run_reports_committed_prefix(self):
        result = run_sharded_to_crash_point(
            "fast", _CROSS_WORKLOAD, 5, shards=2,
        )
        assert result.crashed
        assert result.ok, result.violations


@pytest.mark.parametrize("scheme", ("fast", "fastplus"))
class TestTwoPhaseConformance:
    def test_every_crash_point_recovers_all_or_nothing(self, scheme):
        """The exhaustive enumeration (stride 1): no instant between
        the first prepare store and the final commit-mark clear may
        recover to a half-committed cross-shard transaction."""
        failures = run_sharded_crash_sweep(
            scheme, _CROSS_WORKLOAD, shards=2, stride=1, seeds=(0,),
        )
        assert failures == [], [
            (budget, result.violations) for budget, result in failures[:5]
        ]

    def test_mixed_clients_survive_thinned_sweep(self, scheme):
        failures = run_sharded_crash_sweep(
            scheme, _MIXED_WORKLOADS, shards=2, stride=5, seeds=(0, 1),
            max_points=40,
        )
        assert failures == [], [
            (budget, result.violations) for budget, result in failures[:5]
        ]


def test_four_shard_sweep_with_adversarial_policy():
    from repro.pm.crash import DropAll, PersistAll

    failures = run_sharded_crash_sweep(
        "fast", _CROSS_WORKLOAD, shards=4, stride=3,
        policies=(PersistAll(), DropAll()), max_points=30,
    )
    assert failures == []
