"""Unit tests for the metrics registry primitives."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_identity():
    reg = MetricsRegistry()
    c = reg.counter("pm.flush")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert reg.value("pm.flush") == 5
    # create-on-demand returns the same instrument every time
    assert reg.counter("pm.flush") is c


def test_inc_convenience_matches_counter():
    reg = MetricsRegistry()
    reg.inc("a.b")
    reg.inc("a.b", 2)
    assert reg.counter("a.b").value == 3


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    reg.set_gauge("wal.bytes_used", 4096)
    assert reg.value("wal.bytes_used") == 4096
    reg.gauge("wal.bytes_used").add(-96)
    assert reg.value("wal.bytes_used") == 4000


def test_value_default_for_unknown_name():
    reg = MetricsRegistry()
    assert reg.value("never.touched") == 0
    assert reg.value("never.touched", default=None) is None


@pytest.mark.parametrize("value,exponent", [
    (0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3),
    (1024, 10), (1025, 11),
])
def test_histogram_log2_bucketing(value, exponent):
    h = Histogram("phase.x")
    h.record(value)
    assert h.buckets == {exponent: 1}


def test_histogram_summary_fields():
    h = Histogram("phase.commit")
    for v in (100, 200, 300):
        h.record(v)
    d = h.as_dict()
    assert d["count"] == 3
    assert d["sum_ns"] == 600
    assert d["min_ns"] == 100
    assert d["max_ns"] == 300
    assert d["mean_ns"] == 200


def test_prefix_filtering():
    reg = MetricsRegistry()
    reg.inc("pm.flush")
    reg.inc("pm.fence")
    reg.inc("rtm.begin")
    assert set(reg.counters("pm.")) == {"pm.flush", "pm.fence"}
    assert list(reg.counters("pm.")) == sorted(reg.counters("pm."))


def test_since_reports_only_nonzero_deltas():
    reg = MetricsRegistry()
    reg.inc("a", 5)
    reg.inc("b", 1)
    reg.observe("phase.commit", 100)
    snap = reg.snapshot()
    reg.inc("a", 2)
    reg.observe("phase.commit", 40)
    delta = reg.since(snap)
    assert delta["counters"] == {"a": 2}          # "b" unchanged -> omitted
    assert delta["histograms"] == {"phase.commit": {"count": 1, "sum_ns": 40}}


def test_snapshot_is_plain_data_and_detached():
    reg = MetricsRegistry()
    reg.inc("x")
    snap = reg.snapshot()
    reg.inc("x")
    assert snap["counters"]["x"] == 1  # not a live view
    json.dumps(snap)  # JSON-ready


def test_reset_preserves_instrument_identity():
    reg = MetricsRegistry()
    c = reg.counter("hot.path")
    c.inc(9)
    reg.observe("phase.x", 10)
    reg.set_gauge("g", 3)
    reg.reset()
    assert c.value == 0
    assert reg.counter("hot.path") is c  # cached references stay valid
    assert reg.value("g") == 0
    assert reg.histogram("phase.x").count == 0
    c.inc()
    assert reg.value("hot.path") == 1


def test_export_json_and_csv(tmp_path):
    reg = MetricsRegistry()
    reg.inc("pm.flush", 7)
    reg.set_gauge("wal.bytes_used", 128)
    reg.observe("phase.commit", 840.0)

    json_path = tmp_path / "snap.json"
    reg.export_json(str(json_path))
    loaded = json.loads(json_path.read_text())
    assert loaded["counters"]["pm.flush"] == 7
    assert loaded["gauges"]["wal.bytes_used"] == 128
    assert loaded["histograms"]["phase.commit"]["count"] == 1

    csv_path = tmp_path / "snap.csv"
    reg.export_csv(str(csv_path))
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "kind,name,field,value"
    assert "counter,pm.flush,value,7" in lines
    assert "gauge,wal.bytes_used,value,128" in lines
    assert any(line.startswith("histogram,phase.commit,sum_ns,") for line in lines)


def test_instrument_repr_smoke():
    assert "pm.flush" in repr(Counter("pm.flush", 3))
    assert "g" in repr(Gauge("g", 1))
    assert "h" in repr(Histogram("h"))
