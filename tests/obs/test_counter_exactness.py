"""Counter-exactness tests: pin the registry to golden event counts.

The simulation is deterministic by construction, so the exact number of
cache-line flushes, fences and commit marks a seeded workload generates
is a stable, meaningful quantity — it *is* the paper's cost model.  These
tests pin those numbers for a fixed workload (64 single-record inserts,
``random_keys(seed=11)``) across record sizes and schemes, so any change
to a write path that adds or removes even one flush shows up as a diff
against the golden table, not as an invisible drift in the figures.

All values are deltas over the workload only (``obs.snapshot()`` /
``obs.since()``), excluding engine bootstrap — the same windowing the
benchmark harness uses.
"""

import pytest

from repro.bench.harness import build_config
from repro.bench.workloads import random_keys, sized_payload
from repro.core import open_engine
from repro.obs import trace as ev

OPS = 64
SEED = 11

# (record_size, scheme) -> exact workload-delta counter values.
# fastplus commits mostly in place under RTM (no log traffic), falling
# back to slot-header logging only when a commit overflows the
# one-cache-line in-place budget — hence the tiny log.commit_mark.
GOLDEN = {
    (64, "fast"): {
        "pm.flush": 540, "pm.fence": 260, "log.commit_mark": 64,
    },
    (64, "fastplus"): {
        "pm.flush": 300, "pm.fence": 138, "log.commit_mark": 2,
        "engine.commit.inplace": 62, "engine.commit.logged": 2,
    },
    (64, "nvwal"): {
        "pm.flush": 558, "pm.fence": 331, "wal.commit_mark": 64,
    },
    (512, "fast"): {
        "pm.flush": 1466, "pm.fence": 304, "log.commit_mark": 64,
    },
    (512, "fastplus"): {
        "pm.flush": 1313, "pm.fence": 202, "log.commit_mark": 13,
        "engine.commit.inplace": 51, "engine.commit.logged": 13,
    },
    (512, "nvwal"): {
        "pm.flush": 1201, "pm.fence": 415, "wal.commit_mark": 64,
    },
    (4096, "fast"): {
        "pm.flush": 9052, "pm.fence": 408, "log.commit_mark": 64,
    },
    (4096, "fastplus"): {
        "pm.flush": 8950, "pm.fence": 340, "log.commit_mark": 30,
        "engine.commit.inplace": 34, "engine.commit.logged": 30,
    },
    (4096, "nvwal"): {
        "pm.flush": 11219, "pm.fence": 714, "wal.commit_mark": 64,
    },
}


def _run_workload(scheme, record_size):
    # 4 KiB records need pages larger than the default 4 KiB.
    page_size = 16384 if record_size == 4096 else 4096
    config = build_config(scheme, ops=OPS, record_size=record_size,
                          page_size=page_size)
    engine = open_engine(config, scheme=scheme)
    snapshot = engine.obs.snapshot()
    payload = sized_payload(record_size)
    for key in random_keys(OPS, seed=SEED):
        engine.insert(key, payload)
    return engine, engine.obs.since(snapshot)["registry"]["counters"]


@pytest.mark.parametrize("record_size,scheme", sorted(GOLDEN))
def test_exact_counters_per_scheme_and_record_size(record_size, scheme):
    engine, counters = _run_workload(scheme, record_size)
    golden = GOLDEN[(record_size, scheme)]
    got = {name: counters.get(name, 0) for name in golden}
    assert got == golden

    # Every scheme committed every transaction exactly once.
    assert counters["engine.txn.commit"] == OPS
    if scheme == "fast":
        # Eager checkpointing: one commit mark and one checkpoint per txn.
        assert counters["engine.checkpoint"] == OPS
        assert counters["log.truncate"] == OPS


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_registry_and_trace_agree_on_flush_and_fence(scheme):
    """The counter and the event stream are two views of one reality:
    lifetime ``pm.flush`` must equal the number of clflush+clwb trace
    events, and ``pm.fence`` the number of fence events."""
    engine, _ = _run_workload(scheme, 64)
    registry, trace = engine.registry, engine.trace
    assert registry.value("pm.flush") == (
        trace.count(ev.CLFLUSH) + trace.count(ev.CLWB)
    )
    assert registry.value("pm.fence") == trace.count(ev.FENCE)
    assert registry.value("pm.store") == trace.count(ev.STORE)


def test_legacy_stats_shim_reads_the_registry():
    """``engine.stats.clflushes`` must be the same number as the
    registry's ``pm.flush`` — the shim is a view, not a copy."""
    engine, _ = _run_workload("fast", 64)
    assert engine.stats.clflushes == engine.registry.value("pm.flush")
    assert engine.stats.fences == engine.registry.value("pm.fence")
    assert engine.stats.stores == engine.registry.value("pm.store")


# ---------------------------------------------------------------------------
# FAST+ RTM commit vs fallback
# ---------------------------------------------------------------------------

RTM_OPS = 40
RTM_SEED = 3


def _fastplus_engine():
    config = build_config("fastplus", ops=RTM_OPS)
    return open_engine(config, scheme="fastplus")


def _insert_rtm_workload(engine):
    payload = sized_payload(64)
    for key in random_keys(RTM_OPS, seed=RTM_SEED):
        engine.insert(key, payload)


def test_rtm_counters_clean_run():
    """Without aborts, every in-place-eligible commit takes the RTM
    path on the first attempt; the rest (here: the bootstrap txn plus
    one multi-page commit) use slot-header logging."""
    engine = _fastplus_engine()
    snapshot = engine.obs.snapshot()
    _insert_rtm_workload(engine)
    counters = engine.obs.since(snapshot)["registry"]["counters"]
    golden = {
        "rtm.begin": 39, "rtm.commit": 39,
        "engine.commit.inplace": 39, "engine.commit.logged": 1,
        "log.commit_mark": 1,
    }
    assert {n: counters.get(n, 0) for n in golden} == golden
    for absent in ("rtm.abort", "rtm.fallback", "engine.commit.fallback"):
        assert counters.get(absent, 0) == 0
    trace = engine.trace
    assert trace.count(ev.RTM_COMMIT) == engine.registry.value("rtm.commit")
    assert trace.count(ev.RTM_ABORT) == 0


def test_rtm_counters_under_forced_aborts():
    """With an injector aborting every attempt (retry budget 2), each
    in-place-eligible commit burns 3 begins + 3 aborts, then falls back
    to the logged path — so the logged count absorbs the whole run."""
    engine = _fastplus_engine()
    engine.rtm_max_retries = 2
    engine.rtm.abort_injector = lambda attempt: True
    snapshot = engine.obs.snapshot()
    _insert_rtm_workload(engine)
    counters = engine.obs.since(snapshot)["registry"]["counters"]
    golden = {
        "rtm.begin": 117,          # 39 eligible commits x 3 attempts
        "rtm.abort": 117,
        "rtm.fallback": 39,        # RTM-level: retry budget exhausted
        "engine.commit.fallback": 39,   # engine-level: fell back to log
        "engine.commit.logged": 40,     # 39 fallbacks + 1 always-logged
        "log.commit_mark": 40,
    }
    assert {n: counters.get(n, 0) for n in golden} == golden
    assert counters.get("rtm.commit", 0) == 0
    assert counters.get("engine.commit.inplace", 0) == 0
    assert counters.get("rtm.abort.capacity", 0) == 0  # injected, not capacity
    trace = engine.trace
    assert trace.count(ev.RTM_BEGIN) == engine.registry.value("rtm.begin")
    assert trace.count(ev.RTM_ABORT) == engine.registry.value("rtm.abort")
    assert trace.count(ev.RTM_COMMIT) == 0
