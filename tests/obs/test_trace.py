"""Unit tests for the trace recorder ring buffer."""

import pytest

from repro.obs import TraceRecorder
from repro.obs import trace as ev
from repro.pm.clock import SimClock


def test_record_stamps_clock_time():
    clock = SimClock()
    tr = TraceRecorder(clock=clock)
    clock.advance(100)
    tr.record(ev.STORE, 0x40, 8)
    clock.advance(50)
    tr.record(ev.FENCE)
    events = tr.events()
    assert events == [(1, 100, ev.STORE, 0x40, 8), (2, 150, ev.FENCE, 0, 0)]


def test_kind_filter_and_since_seq():
    tr = TraceRecorder()
    tr.record(ev.STORE, 1)
    tr.record(ev.CLFLUSH, 2)
    tr.record(ev.STORE, 3)
    assert [e[3] for e in tr.events(kind=ev.STORE)] == [1, 3]
    assert [e[3] for e in tr.events(since_seq=1)] == [2, 3]
    assert tr.events(kind=ev.CLFLUSH, since_seq=2) == []


def test_ring_drops_old_events_but_totals_stay_exact():
    tr = TraceRecorder(capacity=4)
    for i in range(10):
        tr.record(ev.STORE, i)
    assert len(tr) == 4
    assert tr.dropped == 6
    assert tr.count(ev.STORE) == 10  # lifetime-exact despite the drops
    assert [e[3] for e in tr.events()] == [6, 7, 8, 9]
    assert [e[0] for e in tr.events()] == [7, 8, 9, 10]  # seq never resets


def test_counts_is_sorted_per_kind_totals():
    tr = TraceRecorder()
    tr.record(ev.STORE)
    tr.record(ev.FENCE)
    tr.record(ev.STORE)
    assert tr.counts() == {ev.FENCE: 1, ev.STORE: 2}


def test_disabled_recorder_is_a_no_op():
    tr = TraceRecorder(enabled=False)
    tr.record(ev.STORE)
    assert len(tr) == 0
    assert tr.seq == 0
    assert tr.count(ev.STORE) == 0


def test_clear_keeps_seq_monotonic():
    tr = TraceRecorder()
    tr.record(ev.STORE)
    tr.record(ev.STORE)
    tr.clear()
    assert len(tr) == 0
    tr.record(ev.FENCE)
    assert tr.events() == [(3, 0.0, ev.FENCE, 0, 0)]
    assert tr.events(since_seq=2) == tr.events()


def test_snapshot_summary():
    tr = TraceRecorder(capacity=2)
    for _ in range(3):
        tr.record(ev.CLWB, 64)
    snap = tr.snapshot()
    assert snap == {
        "capacity": 2,
        "recorded": 3,
        "dropped": 1,
        "kind_totals": {ev.CLWB: 3},
    }


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)
