"""Determinism property: the observability plane is a pure function of
the (seeded) workload.

Two runs of the same workload on fresh engines must produce
byte-identical trace event sequences — same kinds, same operands, same
simulated timestamps — and equal registry snapshots.  This is the
property every counter-exactness golden in this suite rests on, and it
is what rules out host-clock, hash-order or id()-dependence anywhere in
the instrumented paths.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig, open_engine

SCHEMES = ("fast", "fastplus", "nvwal")


def _config(scheme):
    return SystemConfig(
        scheme=scheme, npages=256, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )


def _run(scheme, seed):
    """A seeded mixed workload; returns (trace events, registry snapshot)."""
    engine = open_engine(_config(scheme), scheme=scheme)
    rng = random.Random(seed)
    keys = [b"k%04d" % rng.randrange(10000) for _ in range(12)]
    for key in keys:
        engine.insert(key, b"v" * rng.randrange(8, 64), replace=True)
    for key in rng.sample(keys, 4):
        with engine.transaction() as txn:
            txn.update(key, b"updated!")
    for key in rng.sample(keys, 2):
        engine.delete(key)
    return engine.trace.events(), engine.registry.snapshot()


@settings(max_examples=10, deadline=None)
@given(scheme=st.sampled_from(SCHEMES), seed=st.integers(0, 2**16))
def test_seeded_runs_are_bit_identical(scheme, seed):
    events_a, registry_a = _run(scheme, seed)
    events_b, registry_b = _run(scheme, seed)
    assert events_a == events_b          # seq, t_ns, kind, a, b — all of it
    assert registry_a == registry_b
    assert events_a                      # non-vacuous: the run traced work


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_different_schemes_share_workload_but_not_write_path(seed):
    """Sanity: determinism is per scheme, not an artifact of the trace
    being empty or constant — different schemes produce different
    event streams for the same workload."""
    events_fast, _ = _run("fast", seed)
    events_nvwal, _ = _run("nvwal", seed)
    kinds_fast = [e[2] for e in events_fast]
    kinds_nvwal = [e[2] for e in events_nvwal]
    assert kinds_fast != kinds_nvwal
