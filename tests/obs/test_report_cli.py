"""End-to-end test of snapshot export + the ``python -m repro.obs`` CLI."""

import json

import pytest

from repro.core import SystemConfig, open_engine
from repro.obs.__main__ import main
from repro.obs.report import load_snapshot, render_report


def _small_engine(scheme="fastplus"):
    config = SystemConfig(
        scheme=scheme, npages=256, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )
    return open_engine(config, scheme=scheme)


@pytest.fixture
def snapshot_path(tmp_path):
    engine = _small_engine()
    for i in range(20):
        engine.insert(b"key%04d" % i, b"v" * 32)
    path = tmp_path / "snap.json"
    engine.obs.export_json(str(path))
    return path


def test_export_json_structure(snapshot_path):
    data = json.loads(snapshot_path.read_text())
    assert set(data) == {"now_ns", "registry", "trace"}
    assert data["now_ns"] > 0
    assert data["registry"]["counters"]["pm.flush"] > 0
    assert data["trace"]["recorded"] > 0
    assert "phase.commit" in data["registry"]["histograms"]


def test_cli_renders_report(snapshot_path, capsys):
    assert main([str(snapshot_path)]) == 0
    out = capsys.readouterr().out
    assert "pm.flush" in out
    assert "engine.txn.commit" in out
    assert "phase.commit" in out
    assert "trace" in out.lower()


def test_cli_title_override(snapshot_path, capsys):
    main([str(snapshot_path), "--title", "my-little-report"])
    assert "my-little-report" in capsys.readouterr().out


def test_cli_requires_snapshot_or_demo(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_load_snapshot_accepts_bare_registry_dump(tmp_path):
    """``MetricsRegistry.export_json`` output (no clock/trace wrapper)
    must render too."""
    engine = _small_engine("fast")
    engine.insert(b"k", b"v")
    path = tmp_path / "registry.json"
    engine.registry.export_json(str(path))
    report = render_report(load_snapshot(str(path)), title="bare")
    assert "bare" in report
    assert "pm.flush" in report


def test_report_groups_counters_by_prefix(snapshot_path):
    report = render_report(load_snapshot(str(snapshot_path)))
    # One section per top-level counter family present in the run.
    for family in ("pm.", "engine.", "rtm."):
        assert family in report
