"""Tests for workload generators, the benchmark harness, and reports."""

import pytest

from repro.bench import (
    build_config,
    random_keys,
    run_multi_insert,
    run_single_inserts,
    run_sql_statements,
    sized_payload,
)
from repro.bench.report import format_table
from repro.bench.workloads import mixed_ops


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def test_random_keys_distinct_and_sized():
    keys = random_keys(500, seed=1)
    assert len(keys) == 500
    assert len(set(keys)) == 500
    assert all(len(k) == 16 for k in keys)


def test_random_keys_deterministic():
    assert random_keys(50, seed=9) == random_keys(50, seed=9)
    assert random_keys(50, seed=9) != random_keys(50, seed=10)


def test_sized_payload():
    payload = sized_payload(100)
    assert len(payload) == 100
    assert sized_payload(100) == payload  # deterministic


def test_mixed_ops_respects_ratio():
    keys = random_keys(200, seed=3)
    ops = mixed_ops(200, read_ratio=0.5, key_pool=keys, seed=4)
    reads = sum(1 for op, _ in ops if op == "read")
    assert 60 <= reads <= 140
    # Reads only touch inserted keys.
    inserted = set()
    for op, key in ops:
        if op == "insert":
            inserted.add(key)
        else:
            assert key in inserted


# ----------------------------------------------------------------------
# Config sizing
# ----------------------------------------------------------------------


def test_build_config_scales_with_ops():
    small = build_config("fast", ops=500)
    large = build_config("fast", ops=50000)
    assert large.npages > small.npages
    assert large.heap_bytes >= small.heap_bytes


def test_build_config_latency_knobs():
    config = build_config("fast", read_ns=777, write_ns=888)
    assert config.latency.read_ns == 777
    assert config.latency.write_ns == 888


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_run_single_inserts_collects_phases(scheme):
    result = run_single_inserts(scheme, ops=120)
    assert result.ops == 120
    assert result.op_us > 0
    for phase in ("search", "page_update", "commit"):
        assert phase in result.segments_us
    assert result.counters["clflushes"] > 0
    assert result.per_op("clflushes") > 0


def test_run_single_inserts_latency_sensitivity():
    slow = run_single_inserts("fast", ops=120, read_ns=1200, write_ns=1200)
    fast = run_single_inserts("fast", ops=120, read_ns=120, write_ns=120)
    assert slow.op_us > fast.op_us


def test_run_single_inserts_deterministic():
    a = run_single_inserts("fastplus", ops=100, seed=5)
    b = run_single_inserts("fastplus", ops=100, seed=5)
    assert a.op_us == b.op_us
    assert a.counters == b.counters


def test_run_multi_insert_txn_grouping():
    result = run_multi_insert("fast", txns=30, per_txn=4)
    assert result.ops == 120
    assert result.params["per_txn"] == 4


def test_run_sql_statements_kinds():
    for kind in ("insert", "select"):
        result = run_sql_statements("fastplus", ops=60, kind=kind)
        assert result.segments_us.get("sql", 0) > 0
        assert result.sql_op_us > result.op_us


def test_run_sql_statements_mixed():
    result = run_sql_statements("fast", ops=60, kind="mixed", read_ratio=0.5)
    assert result.params["read_ratio"] == 0.5


def test_run_sql_statements_rejects_unknown_kind():
    with pytest.raises(ValueError):
        run_sql_statements("fast", ops=10, kind="bogus")


def test_fastplus_extras_report_commit_paths():
    result = run_single_inserts("fastplus", ops=150)
    assert result.extras["inplace_commits"] > 0
    assert (
        result.extras["inplace_commits"] + result.extras["logged_commits"] == 150
    )


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------


def test_format_table_alignment_and_floats():
    text = format_table(
        "Title", ["a", "long_header"], [[1, 2.3456], ["xy", 7]], note="note!"
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "long_header" in lines[2]
    assert "2.35" in text
    assert text.endswith("note!")


def test_format_table_empty_rows():
    text = format_table("T", ["c"], [])
    assert "c" in text


def test_table_to_csv_round_trip():
    from repro.bench.report import table_to_csv

    text = format_table(
        "T", ["scheme", "Misc (WAL index)", "us"],
        [["fast", 1.234, "a,b"], ["nvwal", 7, 'say "hi"']],
        note="ignored note",
    )
    csv = table_to_csv(text)
    lines = csv.strip().splitlines()
    assert lines[0] == "scheme,Misc (WAL index),us"
    assert lines[1] == 'fast,1.23,"a,b"'
    assert lines[2] == 'nvwal,7,"say ""hi"""'
    assert len(lines) == 3  # the note is not data
