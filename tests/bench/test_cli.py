"""The ``python -m repro.bench`` command-line interface."""

import subprocess
import sys


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        capture_output=True, text=True, timeout=600,
    )


def test_cli_generates_a_figure():
    completed = run_cli("fig1", "--ops", "150")
    assert completed.returncode == 0, completed.stderr[-1000:]
    assert "Figure 1" in completed.stdout
    assert "journaling" in completed.stdout
    assert "generated in" in completed.stdout


def test_cli_multiple_figures():
    completed = run_cli("ablation_rtm", "ablation_checkpoint", "--ops", "150")
    assert completed.returncode == 0, completed.stderr[-1000:]
    assert "Ablation A3" in completed.stdout
    assert "Ablation A2" in completed.stdout


def test_cli_rejects_unknown_figure():
    completed = run_cli("fig99")
    assert completed.returncode != 0
    assert "unknown figure" in completed.stderr


def test_cli_lists_figures_in_help():
    completed = run_cli("--help")
    assert completed.returncode == 0
    assert "fig6" in completed.stdout
    assert "ablation_atomicity" in completed.stdout
