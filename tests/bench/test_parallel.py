"""Parallel sweep runner: byte-identity with serial, and the no-trace
fast mode's counter-exactness guarantee.

The determinism contract says a figure is a pure function of its grid:
per-cell seeds, no host-dependent state.  These tests pin the two
equivalences the optimisation work leans on:

* ``run_cells(..., parallel=True)`` returns results identical (ordering,
  segments, counters) to the serial loop — so ``--parallel`` can never
  change a figure;
* ``obs.tracing(False)`` elides only the event ring — every registry
  counter and the simulated clock stay byte-identical to a traced run.
"""

from repro.bench import parallel
from repro.bench.figures import fig6
from repro.bench.harness import build_config
from repro.bench.parallel import cell, run_cells
from repro.bench.workloads import random_keys, sized_payload
from repro.core import open_engine

OPS = 200


def _grid_cells():
    """A small 4-cell (scheme x latency) grid."""
    return [
        cell("run_single_inserts", scheme=scheme, ops=OPS,
             read_ns=read_ns, write_ns=read_ns)
        for read_ns in (120, 300)
        for scheme in ("fast", "nvwal")
    ]


def test_parallel_matches_serial_cell_for_cell():
    serial = run_cells(_grid_cells(), parallel=False)
    fanned = run_cells(_grid_cells(), parallel=True, jobs=2)
    assert len(serial) == len(fanned) == 4
    for expect, got in zip(serial, fanned):
        assert got.scheme == expect.scheme
        assert got.params == expect.params
        assert got.segments_us == expect.segments_us  # exact, not approx
        assert got.counters == expect.counters
        assert got.extras == expect.extras


def test_parallel_preserves_declared_grid_order():
    results = run_cells(_grid_cells(), parallel=True, jobs=2)
    assert [(r.params["read_ns"], r.scheme) for r in results] == [
        (120, "fast"), (120, "nvwal"), (300, "fast"), (300, "nvwal"),
    ]


def test_figure_output_byte_identical(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OPS", str(OPS))
    serial = fig6(ops=OPS)
    parallel.configure(parallel=True, jobs=2)
    try:
        fanned = fig6(ops=OPS)
    finally:
        parallel.configure(parallel=False)
    assert fanned["table"] == serial["table"]
    assert list(fanned["data"]) == list(serial["data"])
    for key in serial["data"]:
        assert fanned["data"][key].segments_us == serial["data"][key].segments_us
        assert fanned["data"][key].counters == serial["data"][key].counters


def test_configure_and_env_control_mode(monkeypatch):
    monkeypatch.delenv(parallel._ENV_FLAG, raising=False)
    parallel.configure(parallel=False)
    assert not parallel.is_parallel()
    parallel.configure(parallel=True)
    try:
        assert parallel.is_parallel()
    finally:
        parallel.configure(parallel=False)
    monkeypatch.setenv(parallel._ENV_FLAG, "1")
    assert parallel.is_parallel()
    monkeypatch.setenv(parallel._ENV_FLAG, "0")
    assert not parallel.is_parallel()


def _run_workload(traced):
    config = build_config("fastplus", ops=OPS)
    engine = open_engine(config, scheme="fastplus")
    if not traced:
        engine.obs.tracing(False)
    seq_at_start = engine.trace.seq
    payload = sized_payload(64)
    for key in random_keys(OPS, seed=7):
        engine.insert(key, payload)
    return engine, seq_at_start


def test_tracing_off_keeps_every_counter_exact():
    traced, _ = _run_workload(traced=True)
    silent, silent_seq = _run_workload(traced=False)
    # Registry counters, gauges, histograms: byte-identical.
    assert silent.obs.registry.snapshot() == traced.obs.registry.snapshot()
    # The simulated clock and its segment attribution too.
    assert silent.clock.now_ns == traced.clock.now_ns
    assert silent.clock.segments() == traced.clock.segments()
    # Only the event ring is elided: the traced run records thousands
    # of events over the workload; the silent run records none (its
    # ring holds only what engine open emitted before the toggle).
    assert traced.trace.seq > silent_seq
    assert silent.trace.seq == silent_seq
    assert silent.trace.events(since_seq=silent_seq) == []
