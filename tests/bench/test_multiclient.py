"""The multi-client contention benchmark driver."""

import json
import pathlib

from repro.bench.multiclient import (
    client_workload,
    run_group_commit,
    run_isolation_cell,
    run_cache_cell,
    run_multi_client,
    run_sharded_multi_client,
    shard_pool_keys,
    sharded_client_workload,
    sweep_cache,
    sweep_clients,
    sweep_group_commit,
    sweep_occ,
    sweep_read_ratio,
    sweep_shards,
)


class TestClientWorkload:
    def test_deterministic_per_client(self):
        assert client_workload(3, items=20) == client_workload(3, items=20)

    def test_clients_differ(self):
        assert client_workload(0, items=20) != client_workload(1, items=20)

    def test_read_ratio_extremes(self):
        reads_only = client_workload(0, items=30, read_ratio=1.0)
        assert all(kind == "search" for kind, _, _ in reads_only)
        writes_only = client_workload(0, items=30, read_ratio=0.0)
        assert all(item[0] == "txn" for item in writes_only)


class TestRunMultiClient:
    def test_all_items_commit(self):
        result = run_multi_client("fastplus", clients=3, items=10)
        assert result["commits"] == 30
        assert result["commits"] == result["counters"]["engine.txn.commit"]
        assert len(result["per_client"]) == 3

    def test_single_client_has_no_contention(self):
        result = run_multi_client("fast", clients=1, items=10)
        assert result["aborts"] == 0
        assert result["deadlocks"] == 0
        assert result["counters"]["lock.conflict"] == 0

    def test_contention_shows_in_counters(self):
        result = run_multi_client("fast", clients=8, items=15,
                                  read_ratio=0.0, key_space=40)
        assert result["counters"]["lock.conflict"] > 0
        assert result["counters"]["sched.wait"] > 0
        # Aborted work is retried: every item still commits.
        assert result["commits"] == 8 * 15

    def test_byte_identical_reruns(self):
        a = run_multi_client("nvwal", clients=4, items=12)
        b = run_multi_client("nvwal", clients=4, items=12)
        assert a == b

    def test_simulated_throughput_positive(self):
        result = run_multi_client("fastplus", clients=2, items=8)
        assert result["simulated_ns"] > 0
        assert result["throughput_tps"] > 0


class TestShardedWorkload:
    def test_deterministic_per_client(self):
        assert sharded_client_workload(2, items=20) == \
            sharded_client_workload(2, items=20)

    def test_pools_are_router_hash_disjoint(self):
        from zlib import crc32

        pools = shard_pool_keys(30)
        for pool, keys in enumerate(pools):
            assert len(keys) == 30
            assert all(crc32(key) % 4 == pool for key in keys)

    def test_home_pool_only_without_cross_traffic(self):
        from zlib import crc32

        workload = sharded_client_workload(1, items=30, cross_ratio=0.0)
        pools = set()
        for item in workload:
            if item[0] == "txn":
                pools.update(crc32(key) % 4 for _, key, _ in item[1])
            else:
                pools.add(crc32(item[1]) % 4)
        assert pools == {1}  # client 1's home pool, nothing else

    def test_cross_traffic_reaches_second_pool(self):
        from zlib import crc32

        workload = sharded_client_workload(1, items=40, cross_ratio=1.0)
        pools = set()
        for item in workload:
            if item[0] == "txn":
                pools.update(crc32(key) % 4 for _, key, _ in item[1])
        assert pools == {1, 2}


class TestRunSharded:
    def test_byte_identical_reruns(self):
        a = run_sharded_multi_client("fast", shards=2, clients=4, items=8)
        b = run_sharded_multi_client("fast", shards=2, clients=4, items=8)
        assert a == b

    def test_commits_invariant_across_shard_counts(self):
        commits = {
            shards: run_sharded_multi_client(
                "fast", shards=shards, clients=4, items=8,
            )["commits"]
            for shards in (1, 2, 4)
        }
        assert commits[1] == commits[2] == commits[4] > 0

    def test_cross_shard_txns_drive_twopc(self):
        result = run_sharded_multi_client(
            "fastplus", shards=2, clients=4, items=10, cross_ratio=1.0,
        )
        assert result["counters"]["twopc.decision"] > 0
        assert result["counters"]["twopc.commit"] == \
            result["counters"]["twopc.prepare"]

    def test_disjoint_pools_skip_twopc(self):
        result = run_sharded_multi_client(
            "fast", shards=4, clients=4, items=10, cross_ratio=0.0,
        )
        assert result["counters"]["twopc.prepare"] == 0
        assert all(b > 0 for b in result["busy_ns"])

    def test_sweep_shards_shape(self):
        rows = sweep_shards("fast", shard_counts=(1, 2), clients=4, items=6)
        assert [r["shards"] for r in rows] == [1, 2]
        assert rows[0]["speedup_vs_one_shard"] == 1.0
        assert rows[1]["speedup_vs_one_shard"] > 0


class TestCommittedShardBaseline:
    """The acceptance floor rides on the committed baseline: 8 clients
    on disjoint pools must scale >=1.7x at 2 shards and >=3x at 4."""

    def _rows(self, scheme):
        baseline = json.loads(
            (pathlib.Path(__file__).resolve().parents[2] /
             "BENCH_multiclient.json").read_text()
        )
        return baseline["shard_sweep"][scheme]

    def test_fast_meets_scaling_floor(self):
        rows = {r["shards"]: r for r in self._rows("fast")}
        assert rows[2]["speedup_vs_one_shard"] >= 1.7
        assert rows[4]["speedup_vs_one_shard"] >= 3.0

    def test_fastplus_meets_scaling_floor(self):
        rows = {r["shards"]: r for r in self._rows("fastplus")}
        assert rows[2]["speedup_vs_one_shard"] >= 1.7
        assert rows[4]["speedup_vs_one_shard"] >= 3.0


class TestGroupCommitSweep:
    def test_same_commits_grouped_or_not(self):
        rows = sweep_group_commit("fast", group_sizes=(0, 4), counts=(2,),
                                  items=8)
        assert [r["group_size"] for r in rows] == [0, 4]
        assert rows[0]["fence_reduction_vs_ungrouped"] == 1.0
        assert all(r["commits"] == 2 * 8 for r in rows)

    def test_grouping_cuts_fences(self):
        rows = sweep_group_commit("fast", group_sizes=(0, 4), counts=(2,),
                                  items=10)
        assert rows[1]["fences_per_txn"] < rows[0]["fences_per_txn"]
        assert rows[1]["marks_per_txn"] < rows[0]["marks_per_txn"]

    def test_byte_identical_reruns(self):
        a = run_group_commit("fastplus", group_size=4, clients=2, items=8)
        b = run_group_commit("fastplus", group_size=4, clients=2, items=8)
        assert a == b


class TestCommittedGroupCommitBaseline:
    """The acceptance floor rides on the committed baseline: at group
    size 4 and 8 clients, the commit-mark schemes must pay at least 2x
    fewer fences per committed transaction than ungrouped."""

    def _rows(self, scheme):
        baseline = json.loads(
            (pathlib.Path(__file__).resolve().parents[2] /
             "BENCH_multiclient.json").read_text()
        )
        return baseline["group_sweep"][scheme]

    def test_fast_meets_fence_floor(self):
        rows = {(r["clients"], r["group_size"]): r
                for r in self._rows("fast")}
        assert rows[(8, 4)]["fence_reduction_vs_ungrouped"] >= 2.0

    def test_fastplus_meets_fence_floor(self):
        rows = {(r["clients"], r["group_size"]): r
                for r in self._rows("fastplus")}
        assert rows[(8, 4)]["fence_reduction_vs_ungrouped"] >= 2.0

    def test_marks_amortize_with_group_size(self):
        """One shared mark per epoch: marks/txn must drop monotonically
        with the group size at every swept client count and scheme."""
        for scheme in ("fast", "fastplus", "nvwal"):
            by_clients = {}
            for row in self._rows(scheme):
                by_clients.setdefault(row["clients"], []).append(
                    row["marks_per_txn"])
            for marks in by_clients.values():
                assert marks == sorted(marks, reverse=True)


class TestOccSweep:
    def test_same_commits_locked_or_occ(self):
        """Aborted optimistic work is retried (and eventually falls back
        to 2PL), so both protocols commit every workload item."""
        for isolation in ("locked", "occ"):
            result = run_isolation_cell(
                "fastplus", isolation=isolation, clients=4, items=8,
                read_ratio=0.5, key_space=40,
            )
            assert result["commits"] == 4 * 8

    def test_occ_cuts_lock_traffic_on_read_mostly(self):
        locked = run_isolation_cell(
            "fast", isolation="locked", clients=8, items=10,
            read_ratio=0.9, key_space=100,
        )
        occ = run_isolation_cell(
            "fast", isolation="occ", clients=8, items=10,
            read_ratio=0.9, key_space=100,
        )
        assert occ["lock_acquires_per_commit"] < (
            0.5 * locked["lock_acquires_per_commit"]
        )

    def test_byte_identical_reruns(self):
        a = run_isolation_cell("nvwal", isolation="occ", clients=4, items=10,
                               read_ratio=0.5, key_space=40)
        b = run_isolation_cell("nvwal", isolation="occ", clients=4, items=10,
                               read_ratio=0.5, key_space=40)
        assert a == b

    def test_sweep_occ_shape(self):
        rows = sweep_occ("fast", counts=(2,), items=6,
                         mixes=(("m", 0.5, 40),))
        assert [r["isolation"] for r in rows] == ["locked", "occ"]
        assert all(r["mix"] == "m" for r in rows)


class TestCommittedOccBaseline:
    """The acceptance floor rides on the committed baseline: at 8
    clients on the read-mostly mix, OCC writers must acquire at most
    half the locks per committed transaction that strict 2PL pays."""

    def _rows(self, scheme):
        baseline = json.loads(
            (pathlib.Path(__file__).resolve().parents[2] /
             "BENCH_multiclient.json").read_text()
        )
        return baseline["occ_sweep"][scheme]

    def _pair(self, scheme, mix, clients):
        rows = {(r["mix"], r["clients"], r["isolation"]): r
                for r in self._rows(scheme)}
        return (rows[(mix, clients, "locked")], rows[(mix, clients, "occ")])

    def test_read_mostly_meets_lock_floor(self):
        for scheme in ("fast", "fastplus", "nvwal"):
            locked, occ = self._pair(scheme, "read_mostly", 8)
            assert occ["lock_acquires_per_commit"] <= (
                0.5 * locked["lock_acquires_per_commit"]
            )

    def test_every_cell_commits_the_full_workload(self):
        """OCC aborts are retried, not lost: each twin commits exactly
        as many transactions as its locked baseline."""
        for scheme in ("fast", "fastplus", "nvwal"):
            for row in self._rows(scheme):
                if row["isolation"] != "occ":
                    continue
                locked, occ = self._pair(scheme, row["mix"], row["clients"])
                assert occ["commits"] == locked["commits"]

    def test_hot_mix_exercises_fallback(self):
        """The hostile mix must actually drive the 2PL fallback path at
        8 clients — otherwise the sweep no longer covers it."""
        assert any(
            self._pair(scheme, "hot_writes", 8)[1]["occ_fallbacks"] > 0
            for scheme in ("fast", "fastplus", "nvwal")
        )


class TestSweeps:
    def test_sweep_clients_shape(self):
        rows = sweep_clients("fast", counts=(1, 2), items=6)
        assert [r["clients"] for r in rows] == [1, 2]
        assert all(r["commits"] == r["clients"] * 6 for r in rows)

    def test_sweep_read_ratio_shape(self):
        rows = sweep_read_ratio("fast", ratios=(0.0, 1.0), clients=2, items=6)
        assert [r["read_ratio"] for r in rows] == [0.0, 1.0]
        # All-read runs never conflict on write locks.
        assert rows[1]["counters"]["lock.conflict"] == 0


class TestCacheSweep:
    def test_sweep_cache_shape(self):
        rows = sweep_cache("fast", cache_sizes=(0, 8), read_lats=(300.0,),
                           clients=4, items=6, key_space=60)
        assert [r["cache_pages"] for r in rows] == [0, 8]
        # The cache-off cell is its own baseline by construction.
        assert rows[0]["speedup_vs_uncached"] == 1.0
        assert rows[0]["cache_hit_ratio"] == 0.0
        assert rows[1]["cache_hit_ratio"] > 0.0
        # Reads never change committed state: both cells commit the
        # same workload.
        assert rows[0]["commits"] == rows[1]["commits"]

    def test_cache_cell_serves_and_invalidates(self):
        result = run_cache_cell("fast", cache_pages=8, clients=4, items=6,
                                key_space=60)
        counters = result["counters"]
        assert counters["cache.hit"] > 0
        # The locked writer's installs reach the cache.
        assert counters["cache.invalidate"] > 0

    def test_byte_identical_reruns(self):
        a = run_cache_cell("fastplus", cache_pages=8, clients=4, items=6,
                           key_space=60)
        b = run_cache_cell("fastplus", cache_pages=8, clients=4, items=6,
                           key_space=60)
        assert a == b


class TestCommittedCacheBaseline:
    """The acceptance floor rides on the committed baseline: at PM read
    latency 1200ns with a 64-page cache, the read-mostly mix must hit
    >= 0.9 and run >= 1.5x the cache-off throughput on both PM-resident
    schemes."""

    def _rows(self, scheme):
        baseline = json.loads(
            (pathlib.Path(__file__).resolve().parents[2] /
             "BENCH_multiclient.json").read_text()
        )
        return baseline["cache_sweep"][scheme]

    def _cell(self, scheme, pages, read_ns):
        rows = {(r["cache_pages"], r["read_ns"]): r
                for r in self._rows(scheme)}
        return rows[(pages, read_ns)]

    def test_acceptance_floor(self):
        for scheme in ("fast", "fastplus"):
            cell = self._cell(scheme, 64, 1200.0)
            assert cell["cache_hit_ratio"] >= 0.9
            assert cell["speedup_vs_uncached"] >= 1.5

    def test_uncached_rows_are_the_baseline(self):
        for scheme in ("fast", "fastplus"):
            for row in self._rows(scheme):
                if row["cache_pages"] == 0:
                    assert row["speedup_vs_uncached"] == 1.0
                    assert row["cache_hits"] == 0

    def test_undersized_cache_can_lose(self):
        """The fig15 crossover: an 8-page cache thrashes (fills are not
        amortized) and a 64-page cache wins at every swept latency."""
        for scheme in ("fast", "fastplus"):
            for read_ns in (300.0, 900.0, 1200.0):
                small = self._cell(scheme, 8, read_ns)
                sized = self._cell(scheme, 64, read_ns)
                assert small["speedup_vs_uncached"] < (
                    sized["speedup_vs_uncached"])
        assert self._cell("fastplus", 8, 300.0)["speedup_vs_uncached"] < 1.0

    def test_win_grows_with_pm_latency(self):
        for scheme in ("fast", "fastplus"):
            speedups = [self._cell(scheme, 64, ns)["speedup_vs_uncached"]
                        for ns in (300.0, 900.0, 1200.0)]
            assert speedups == sorted(speedups)

    def test_reads_commit_identically_across_cells(self):
        for scheme in ("fast", "fastplus"):
            commits = {row["commits"] for row in self._rows(scheme)}
            assert len(commits) == 1
