"""The multi-client contention benchmark driver."""

from repro.bench.multiclient import (
    client_workload,
    run_multi_client,
    sweep_clients,
    sweep_read_ratio,
)


class TestClientWorkload:
    def test_deterministic_per_client(self):
        assert client_workload(3, items=20) == client_workload(3, items=20)

    def test_clients_differ(self):
        assert client_workload(0, items=20) != client_workload(1, items=20)

    def test_read_ratio_extremes(self):
        reads_only = client_workload(0, items=30, read_ratio=1.0)
        assert all(kind == "search" for kind, _, _ in reads_only)
        writes_only = client_workload(0, items=30, read_ratio=0.0)
        assert all(item[0] == "txn" for item in writes_only)


class TestRunMultiClient:
    def test_all_items_commit(self):
        result = run_multi_client("fastplus", clients=3, items=10)
        assert result["commits"] == 30
        assert result["commits"] == result["counters"]["engine.txn.commit"]
        assert len(result["per_client"]) == 3

    def test_single_client_has_no_contention(self):
        result = run_multi_client("fast", clients=1, items=10)
        assert result["aborts"] == 0
        assert result["deadlocks"] == 0
        assert result["counters"]["lock.conflict"] == 0

    def test_contention_shows_in_counters(self):
        result = run_multi_client("fast", clients=8, items=15,
                                  read_ratio=0.0, key_space=40)
        assert result["counters"]["lock.conflict"] > 0
        assert result["counters"]["sched.wait"] > 0
        # Aborted work is retried: every item still commits.
        assert result["commits"] == 8 * 15

    def test_byte_identical_reruns(self):
        a = run_multi_client("nvwal", clients=4, items=12)
        b = run_multi_client("nvwal", clients=4, items=12)
        assert a == b

    def test_simulated_throughput_positive(self):
        result = run_multi_client("fastplus", clients=2, items=8)
        assert result["simulated_ns"] > 0
        assert result["throughput_tps"] > 0


class TestSweeps:
    def test_sweep_clients_shape(self):
        rows = sweep_clients("fast", counts=(1, 2), items=6)
        assert [r["clients"] for r in rows] == [1, 2]
        assert all(r["commits"] == r["clients"] * 6 for r in rows)

    def test_sweep_read_ratio_shape(self):
        rows = sweep_read_ratio("fast", ratios=(0.0, 1.0), clients=2, items=6)
        assert [r["read_ratio"] for r in rows] == [0.0, 1.0]
        # All-read runs never conflict on write locks.
        assert rows[1]["counters"]["lock.conflict"] == 0
