"""Tests for the hash index over failure-atomic slotted pages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import engine_class, open_engine
from repro.hashindex import HashIndex
from tests.core.conftest import small_config

ROOT_SLOT = 2


def make(scheme="fastplus", nbuckets=16, **overrides):
    engine = open_engine(small_config(scheme=scheme, **overrides))
    index = HashIndex(root_slot=ROOT_SLOT, nbuckets=nbuckets)
    with engine.transaction() as txn:
        index.create(txn.ctx)
    return engine, index


def put(engine, index, key, value, replace=False):
    with engine.transaction() as txn:
        index.insert(txn.ctx, key, value, replace=replace)


def view(engine):
    return engine.read_view()


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------


def test_empty_index():
    engine, index = make()
    assert index.search(view(engine), b"missing") is None
    assert index.count(view(engine)) == 0
    assert index.verify(view(engine)) == 0


def test_insert_and_search():
    engine, index = make()
    put(engine, index, b"key", b"value")
    assert index.search(view(engine), b"key") == b"value"


def test_duplicate_rejected_unless_replace():
    engine, index = make()
    put(engine, index, b"k", b"1")
    with pytest.raises(KeyError):
        put(engine, index, b"k", b"2")
    put(engine, index, b"k", b"2", replace=True)
    assert index.search(view(engine), b"k") == b"2"


def test_delete():
    engine, index = make()
    put(engine, index, b"k", b"v")
    with engine.transaction() as txn:
        assert index.delete(txn.ctx, b"k")
    assert index.search(view(engine), b"k") is None
    with engine.transaction() as txn:
        assert not index.delete(txn.ctx, b"k")


def test_many_keys_and_verify():
    engine, index = make(nbuckets=8)
    for i in range(300):
        put(engine, index, b"key-%04d" % i, b"val-%d" % i)
    assert index.verify(view(engine)) == 300
    for i in range(0, 300, 17):
        assert index.search(view(engine), b"key-%04d" % i) == b"val-%d" % i


def test_overflow_chains_form():
    engine, index = make(nbuckets=1, page_size=512)
    for i in range(60):
        put(engine, index, b"k%03d" % i, b"x" * 20)
    assert index.verify(view(engine)) == 60
    # A single 512-byte bucket cannot hold 60 records: chains exist.
    assert len(index.reachable_pages(view(engine))) > 3


def test_items_returns_everything():
    engine, index = make()
    expected = {b"a%d" % i: b"b%d" % i for i in range(50)}
    for key, value in expected.items():
        put(engine, index, key, value)
    assert dict(index.items(view(engine))) == expected


def test_variable_length_values():
    engine, index = make()
    for i in range(40):
        put(engine, index, b"k%d" % i, bytes([i]) * (i * 5 % 120 + 1))
    for i in range(40):
        assert index.search(view(engine), b"k%d" % i) == bytes([i]) * (i * 5 % 120 + 1)


def test_transaction_rollback_discards_index_writes():
    engine, index = make(scheme="fast")
    put(engine, index, b"keep", b"1")
    txn = engine.transaction()
    index.insert(txn.ctx, b"drop", b"2")
    txn.rollback()
    assert index.search(view(engine), b"drop") is None
    assert index.search(view(engine), b"keep") == b"1"


def test_multiple_inserts_one_transaction():
    engine, index = make(scheme="fastplus")
    with engine.transaction() as txn:
        for i in range(25):
            index.insert(txn.ctx, b"m%02d" % i, b"v")
    assert index.count(view(engine)) == 25


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_works_under_every_scheme(scheme):
    engine, index = make(scheme=scheme)
    for i in range(120):
        put(engine, index, b"s%03d" % i, b"v%d" % i)
    assert index.verify(view(engine)) == 120


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["fast", "fastplus", "nvwal"])
def test_survives_clean_crash(scheme):
    config = small_config(scheme=scheme)
    engine = open_engine(config)
    index = HashIndex(root_slot=ROOT_SLOT, nbuckets=8)
    with engine.transaction() as txn:
        index.create(txn.ctx)
    for i in range(80):
        with engine.transaction() as txn:
            index.insert(txn.ctx, b"c%03d" % i, b"v%d" % i)
    pm = engine.pm
    pm.crash()
    recovered_engine = engine_class(scheme).attach(config, pm)
    recovered_view = recovered_engine.read_view()
    assert index.verify(recovered_view) == 80
    assert index.search(recovered_view, b"c042") == b"v42"


def test_crash_mid_transaction_is_atomic():
    from repro.pm import DropAll

    config = small_config(scheme="fast")
    engine = open_engine(config)
    index = HashIndex(root_slot=ROOT_SLOT, nbuckets=4)
    with engine.transaction() as txn:
        index.create(txn.ctx)
    put(engine, index, b"committed", b"1")
    txn = engine.transaction()
    index.insert(txn.ctx, b"doomed", b"2")
    # Crash without committing.
    engine.pm.crash(DropAll())
    recovered = engine_class("fast").attach(config, engine.pm)
    recovered_view = recovered.read_view()
    assert index.search(recovered_view, b"committed") == b"1"
    assert index.search(recovered_view, b"doomed") is None
    assert index.verify(recovered_view) == 1


# ----------------------------------------------------------------------
# Property test
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 40),
            st.binary(min_size=0, max_size=30),
        ),
        max_size=60,
    )
)
def test_hash_index_matches_dict(ops):
    engine, index = make(nbuckets=4, page_size=512)
    model = {}
    for op, key_no, value in ops:
        key = b"p%02d" % key_no
        with engine.transaction() as txn:
            if op == "insert":
                index.insert(txn.ctx, key, value, replace=True)
                model[key] = value
            else:
                assert index.delete(txn.ctx, key) == (key in model)
                model.pop(key, None)
    assert dict(index.items(view(engine))) == model
    assert index.verify(view(engine)) == len(model)
