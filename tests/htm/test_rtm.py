"""Unit tests for the RTM (hardware transactional memory) emulation."""

import pytest

from repro.htm import RTM, RTMAbort
from repro.pm import CACHE_LINE, DropAll, PersistentMemory


def make():
    pm = PersistentMemory(4096)
    return pm, RTM(pm)


def test_committed_writes_become_visible():
    pm, rtm = make()

    def body(txn):
        txn.write(0, b"atomic!!")

    rtm.execute(body)
    assert pm.read(0, 8) == b"atomic!!"


def test_writes_apply_only_after_commit():
    pm, rtm = make()
    seen = {}

    def body(txn):
        txn.write(0, b"inside")
        seen["mid"] = pm.read(0, 6)  # non-transactional peek

    rtm.execute(body)
    assert seen["mid"] == bytes(6)
    assert pm.read(0, 6) == b"inside"


def test_aborted_transaction_leaves_no_trace():
    pm, rtm = make()

    def body(txn):
        txn.write(0, b"ghost")
        txn.abort()

    with pytest.raises(RTMAbort):
        rtm.execute(body)
    assert pm.read(0, 5) == bytes(5)


def test_capacity_abort_on_second_line():
    pm, rtm = make()

    def body(txn):
        txn.write(0, b"a")
        txn.write(CACHE_LINE, b"b")

    with pytest.raises(RTMAbort) as excinfo:
        rtm.execute(body)
    assert excinfo.value.reason == "capacity"
    assert rtm.stats.capacity_aborts == 1


def test_write_spanning_two_lines_aborts():
    pm, rtm = make()

    def body(txn):
        txn.write(CACHE_LINE - 4, b"12345678")

    with pytest.raises(RTMAbort):
        rtm.execute(body)


def test_larger_write_set_allowed_when_configured():
    pm = PersistentMemory(4096)
    rtm = RTM(pm, max_write_lines=2)

    def body(txn):
        txn.write(0, b"a")
        txn.write(CACHE_LINE, b"b")

    rtm.execute(body)
    assert pm.read(CACHE_LINE, 1) == b"b"


def test_read_your_writes_inside_transaction():
    pm, rtm = make()
    pm.write(0, b"\x01\x00")
    pm.persist(0, 2)

    def body(txn):
        value = txn.read_u16(0)
        txn.write_u16(0, value + 1)
        assert txn.read_u16(0) == value + 1

    rtm.execute(body)
    assert pm.read_u16(0) == 2


def test_transient_abort_retried_until_success():
    pm = PersistentMemory(4096)
    rtm = RTM(pm, abort_injector=lambda attempt: attempt < 3)

    def body(txn):
        txn.write(0, b"done")

    rtm.execute(body)
    assert pm.read(0, 4) == b"done"
    assert rtm.stats.aborts == 2
    assert rtm.stats.commits == 1


def test_fallback_invoked_after_retry_budget():
    pm = PersistentMemory(4096)
    rtm = RTM(pm, abort_injector=lambda attempt: True)
    calls = []

    rtm.execute(lambda txn: None, max_retries=2, fallback=lambda: calls.append(1))
    assert calls == [1]
    assert rtm.stats.fallbacks == 1


def test_capacity_abort_goes_straight_to_fallback():
    pm, rtm = make()
    attempts = []

    def body(txn):
        attempts.append(1)
        txn.write(0, b"a")
        txn.write(CACHE_LINE, b"b")

    rtm.execute(body, max_retries=10, fallback=lambda: "fell back")
    assert len(attempts) == 1  # deterministic abort: no retry


def test_clflush_inside_transaction_is_rejected():
    pm, rtm = make()

    def body(txn):
        txn.write(0, b"x")
        pm.clflush(0)

    with pytest.raises(RuntimeError):
        rtm.execute(body)
    assert pm.flush_forbidden is False  # flag restored


def test_crash_before_commit_loses_rtm_writes():
    pm, rtm = make()

    def body(txn):
        txn.write(0, b"half")
        pm.crash(DropAll())  # power failure mid-transaction
        txn.abort()

    with pytest.raises(RTMAbort):
        rtm.execute(body)
    assert pm.durable_bytes(0, 4) == bytes(4)


def test_committed_line_is_all_or_nothing_under_line_atomicity():
    """The combination the paper relies on: RTM + line-atomic writeback
    means a multi-word slot-header update can never persist torn."""
    from repro.pm import PersistSubset

    for survives in (set(), {(0, 0)}):
        pm = PersistentMemory(4096, atomic_granularity=CACHE_LINE)
        rtm = RTM(pm)
        pm.write(0, b"\x01" * 32)
        pm.persist(0, 32)

        def body(txn):
            txn.write(0, b"\x02" * 32)

        rtm.execute(body)
        pm.crash(PersistSubset(survives))
        assert pm.read(0, 32) in (b"\x01" * 32, b"\x02" * 32)


def test_stats_mirrored_into_memory_stats():
    pm, rtm = make()
    rtm.execute(lambda txn: txn.write(0, b"x"))
    assert pm.stats.rtm_begins == 1
    assert pm.stats.rtm_commits == 1


def test_rtm_charges_time():
    pm, rtm = make()
    before = pm.clock.now_ns
    rtm.execute(lambda txn: txn.write(0, b"x"))
    assert pm.clock.now_ns - before >= pm.cost.rtm_begin_ns + pm.cost.rtm_commit_ns
