"""Unit tests for the NVWAL structures (diff, frames, chain, recovery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm import DropAll, PersistentMemory
from repro.wal.nvwal import (
    FRAME_FREE,
    FRAME_PAGE,
    FRAME_ROOT,
    NVWALog,
    encode_frame,
    word_diff,
)


def make_log(size=1 << 16):
    pm = PersistentMemory(1 << 17)
    return pm, NVWALog.format(pm, 0, size)


# ----------------------------------------------------------------------
# word_diff
# ----------------------------------------------------------------------


def test_diff_identical_is_empty():
    assert word_diff(b"\x00" * 64, b"\x00" * 64) == []


def test_diff_single_word():
    old = bytearray(64)
    new = bytearray(64)
    new[8:16] = b"CHANGED!"
    assert word_diff(old, new) == [(8, b"CHANGED!")]


def test_diff_merges_adjacent_words():
    old = bytearray(64)
    new = bytearray(64)
    new[16:32] = b"X" * 16
    assert word_diff(old, new) == [(16, b"X" * 16)]


def test_diff_splits_disjoint_ranges():
    old = bytearray(64)
    new = bytearray(64)
    new[0:8] = b"A" * 8
    new[32:40] = b"B" * 8
    ranges = word_diff(old, new)
    assert [offset for offset, _ in ranges] == [0, 32]


def test_diff_length_mismatch_rejected():
    with pytest.raises(ValueError):
        word_diff(b"\x00" * 8, b"\x00" * 16)


@settings(max_examples=50, deadline=None)
@given(
    old=st.binary(min_size=128, max_size=128),
    new=st.binary(min_size=128, max_size=128),
)
def test_diff_reconstructs_new_buffer(old, new):
    buffer = bytearray(old)
    for offset, data in word_diff(old, new):
        buffer[offset : offset + len(data)] = data
    assert bytes(buffer) == new


# ----------------------------------------------------------------------
# Frames and the chain
# ----------------------------------------------------------------------


def test_append_and_decode_page_frame():
    _, log = make_log()
    ranges = [(16, b"12345678"), (64, b"ABCDEFGH")]
    addr = log.append_frame(encode_frame(1, FRAME_PAGE, 9, ranges))
    assert log.frame_kind(addr) == FRAME_PAGE
    assert log.frame_page_no(addr) == 9
    assert log.frame_ranges(addr) == ranges


def test_committed_chain_survives_crash():
    pm, log = make_log()
    a1 = log.append_frame(encode_frame(1, FRAME_PAGE, 4, [(0, b"D" * 8)]))
    log.commit(1)
    log.publish([a1])
    pm.crash(DropAll())
    survivor = NVWALog.attach(pm, 0, 1 << 16)
    assert list(survivor.deltas_for(4)) == [(0, b"D" * 8)]


def test_uncommitted_tail_discarded_on_recovery():
    pm, log = make_log()
    a1 = log.append_frame(encode_frame(1, FRAME_PAGE, 4, [(0, b"A" * 8)]))
    log.commit(1)
    log.publish([a1])
    log.append_frame(encode_frame(2, FRAME_PAGE, 5, [(8, b"B" * 8)]))
    # seq 2 never committed.
    pm.crash()
    survivor = NVWALog.attach(pm, 0, 1 << 16)
    assert list(survivor.deltas_for(5)) == []
    assert list(survivor.deltas_for(4)) == [(0, b"A" * 8)]


def test_free_frame_drops_page_deltas():
    pm, log = make_log()
    a1 = log.append_frame(encode_frame(1, FRAME_PAGE, 4, [(0, b"A" * 8)]))
    a2 = log.append_frame(encode_frame(1, FRAME_FREE, 4, []))
    log.commit(1)
    log.publish([a1, a2])
    assert list(log.deltas_for(4)) == []
    pm.crash()
    survivor = NVWALog.attach(pm, 0, 1 << 16)
    assert list(survivor.deltas_for(4)) == []


def test_root_frame_recovered():
    pm, log = make_log()
    payload = [(0, (42).to_bytes(4, "little"))]
    a1 = log.append_frame(encode_frame(1, FRAME_ROOT, 0, payload))
    log.commit(1)
    log.publish([a1])
    pm.crash()
    survivor = NVWALog.attach(pm, 0, 1 << 16)
    assert survivor.roots == {0: 42}


def test_reset_frees_all_frames():
    _, log = make_log()
    for i in range(5):
        log.append_frame(encode_frame(1, FRAME_PAGE, i, [(0, b"x" * 8)]))
    free_before = log.heap.free_bytes()
    log.reset()
    assert log.heap.free_bytes() > free_before
    assert log.bytes_used == 0
    assert log.index == {}


def test_unlinked_allocations_reclaimed_at_attach():
    pm, log = make_log()
    log.append_frame(encode_frame(1, FRAME_PAGE, 1, [(0, b"y" * 8)]))
    log.commit(1)
    # Simulate a crash between pmalloc and chaining.
    log.heap.pmalloc(64)
    pm.crash()
    survivor = NVWALog.attach(pm, 0, 1 << 16)
    assert len(survivor.heap.allocated_blocks()) == 1  # only the chained frame


def test_attach_rejects_unformatted():
    pm = PersistentMemory(1 << 16)
    with pytest.raises(ValueError):
        NVWALog.attach(pm, 0, 1 << 16)


def test_deltas_accumulate_in_order():
    _, log = make_log()
    a1 = log.append_frame(encode_frame(1, FRAME_PAGE, 7, [(0, b"A" * 8)]))
    a2 = log.append_frame(encode_frame(2, FRAME_PAGE, 7, [(0, b"B" * 8)]))
    log.commit(2)
    log.publish([a1, a2])
    assert list(log.deltas_for(7)) == [(0, b"A" * 8), (0, b"B" * 8)]
