"""Unit tests for the FAST slot-header log."""

import pytest

from repro.pm import DropAll, PersistentMemory
from repro.wal import LogFullError, SlotHeaderLog


def make_log(size=4096):
    pm = PersistentMemory(8192)
    return pm, SlotHeaderLog.format(pm, 0, size)


def commit_protocol(pm, log, seq=1):
    log.write_frames()
    log.flush_frames()
    pm.sfence()
    log.commit(seq)


def test_fresh_log_is_empty():
    _, log = make_log()
    assert log.pending_bytes() == 0
    assert list(log.replay()) == []


def test_stage_and_replay_page_frames():
    pm, log = make_log()
    log.stage_page_header(3, b"HEADER-3")
    log.stage_page_header(7, b"HEADER-SEVEN")
    commit_protocol(pm, log)
    assert list(log.replay()) == [
        ("page", 3, b"HEADER-3"),
        ("page", 7, b"HEADER-SEVEN"),
    ]


def test_root_frames_round_trip():
    pm, log = make_log()
    log.stage_root_update(2, 99)
    commit_protocol(pm, log)
    assert list(log.replay()) == [("root", 2, 99)]


def test_no_commit_mark_means_no_replay():
    pm, log = make_log()
    log.stage_page_header(1, b"X" * 20)
    log.write_frames()
    log.flush_frames()
    pm.sfence()
    # No commit -> crash -> nothing to replay.
    pm.crash(DropAll())
    survivor = SlotHeaderLog.attach(pm, 0, 4096)
    assert survivor.pending_bytes() == 0
    assert list(survivor.replay()) == []


def test_commit_mark_survives_crash():
    pm, log = make_log()
    log.stage_page_header(5, b"IMG")
    commit_protocol(pm, log, seq=42)
    pm.crash(DropAll())
    survivor = SlotHeaderLog.attach(pm, 0, 4096)
    assert survivor.committed_seq() == 42
    assert list(survivor.replay()) == [("page", 5, b"IMG")]


def test_truncate_empties_log():
    pm, log = make_log()
    log.stage_page_header(1, b"A")
    commit_protocol(pm, log)
    log.truncate()
    assert log.pending_bytes() == 0
    assert list(log.replay()) == []


def test_discard_drops_staged_frames():
    pm, log = make_log()
    log.stage_page_header(1, b"A")
    log.discard()
    commit_protocol(pm, log)
    assert list(log.replay()) == []


def test_log_full_raises():
    _, log = make_log(size=64)
    with pytest.raises(LogFullError):
        for i in range(10):
            log.stage_page_header(i, b"Z" * 30)


def test_attach_rejects_unformatted():
    pm = PersistentMemory(4096)
    with pytest.raises(ValueError):
        SlotHeaderLog.attach(pm, 0, 4096)


def test_commit_is_single_atomic_word():
    """The commit mark must be one 8-byte store (the paper's
    failure-atomic unit)."""
    pm, log = make_log()
    log.stage_page_header(1, b"HDR")
    log.write_frames()
    log.flush_frames()
    pm.sfence()
    stores_before = pm.stats.stores
    log.commit(7)
    # one store for the mark (plus none others)
    assert pm.stats.stores == stores_before + 1


def test_replay_order_preserved():
    pm, log = make_log()
    for i in range(5):
        log.stage_page_header(i, bytes([i]) * 4)
    log.stage_root_update(0, 11)
    commit_protocol(pm, log)
    entries = list(log.replay())
    assert [e[1] for e in entries[:5]] == [0, 1, 2, 3, 4]
    assert entries[-1] == ("root", 0, 11)
