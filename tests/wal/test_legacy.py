"""Tests for the legacy block-device recovery models (Figure 1)."""

from repro.wal.legacy import (
    BlockDevice,
    FileSystemModel,
    JournalingRun,
    WALRun,
    run_legacy_models,
)


def test_block_device_counts_blocks_and_bytes():
    device = BlockDevice(block_size=4096)
    device.write_blocks(3)
    assert device.writes == 3
    assert device.bytes_written == 3 * 4096


def test_write_bytes_pads_to_blocks():
    device = BlockDevice(block_size=4096)
    device.write_bytes(1)
    assert device.bytes_written == 4096
    device.write_bytes(4097)
    assert device.bytes_written == 3 * 4096


def test_fs_journaling_amplifies_fsync():
    device = BlockDevice()
    fs = FileSystemModel(device, journal_blocks_per_fsync=2)
    fs.fsync()
    assert device.fsyncs == 1
    assert device.bytes_written == 2 * 4096


def test_journaling_triples_page_writes():
    run = JournalingRun(page_size=4096)
    run.commit(dirty_pages=1)
    # journal page + db page + truncate block + 3 fs-journal fsyncs.
    assert run.device.bytes_written >= 3 * 4096
    assert run.device.fsyncs == 3


def test_wal_writes_one_frame_per_page():
    run = WALRun(page_size=4096)
    run.commit(dirty_pages=2)
    assert run.device.fsyncs == 1
    # two frames, each page + header padded to blocks, + fs journal
    assert run.device.bytes_written >= 2 * 4096


def test_wal_checkpoints_after_threshold():
    run = WALRun(page_size=4096, checkpoint_frames=10)
    for _ in range(12):
        run.commit(dirty_pages=1)
    assert run._pending_frames < 10  # a checkpoint happened


def test_run_legacy_models_ordering():
    counts = [1] * 100
    journaling, wal = run_legacy_models(counts, record_bytes=64)
    assert journaling.scheme == "journaling"
    assert wal.scheme == "wal"
    # Journaling writes roughly twice what WAL mode writes (the
    # paper's motivation), and both amplify massively vs 64 B records.
    assert journaling.total_bytes > 1.5 * wal.total_bytes
    assert journaling.amplification > 100
    assert wal.amplification > 50


def test_run_legacy_models_scale_with_dirty_pages():
    light, _ = run_legacy_models([1] * 50)
    heavy, _ = run_legacy_models([4] * 50)
    assert heavy.total_bytes > light.total_bytes
