"""Figure 12 (reconstructed): query throughput under mixed
read/insert workloads."""

from repro.bench.figures import READ_RATIOS, fig12

from conftest import OPS, run_figure


def test_fig12_throughput(benchmark, results_dir):
    result = run_figure(benchmark, fig12, "fig12", results_dir, ops=OPS)
    data = result["data"]
    for ratio in READ_RATIOS:
        nvwal = data[(ratio, "nvwal")].sql_op_us
        fastplus = data[(ratio, "fastplus")].sql_op_us
        # Throughput ordering holds at every mix.
        assert fastplus < nvwal, (ratio, fastplus, nvwal)
    # More reads -> higher throughput for everyone, and the gap
    # between schemes narrows (reads don't exercise commit).
    for scheme in ("nvwal", "fast", "fastplus"):
        series = [data[(ratio, scheme)].sql_op_us for ratio in READ_RATIOS]
        assert series == sorted(series, reverse=True), (scheme, series)
    gap_writes = (
        data[(READ_RATIOS[0], "nvwal")].sql_op_us
        - data[(READ_RATIOS[0], "fastplus")].sql_op_us
    )
    gap_reads = (
        data[(READ_RATIOS[-1], "nvwal")].sql_op_us
        - data[(READ_RATIOS[-1], "fastplus")].sql_op_us
    )
    assert gap_reads < gap_writes
