"""Figure 8: commit-time breakdown vs PM write latency — the paper's
central result (logging overhead reduced to ~1/6 of NVWAL)."""

from repro.bench.figures import WRITE_LATENCIES, fig8

from conftest import OPS, run_figure


def test_fig08_commit_breakdown(benchmark, results_dir):
    result = run_figure(benchmark, fig8, "fig08", results_dir, ops=OPS)
    data = result["data"]

    def commit(write_ns, scheme):
        return data[(write_ns, scheme)].segments_us.get("commit", 0.0)

    for write_ns in WRITE_LATENCIES:
        # Commit ordering: in-place < slot-header logging < NVWAL.
        assert commit(write_ns, "fastplus") < commit(write_ns, "fast")
        assert commit(write_ns, "fast") < commit(write_ns, "nvwal")
    # The headline factor: NVWAL's commit overhead is several times
    # FAST+'s (paper: ~6x / "reduces logging overhead to 1/6").
    assert all(ratio > 4 for ratio in result["ratios"]), result["ratios"]
    # NVWAL's fixed costs exist at every latency: differential-logging
    # computation ~4 us and heap management ~3 us (paper's numbers).
    nv300 = data[(300, "nvwal")].segments_us
    assert 2.0 < nv300["nvwal_computation"] < 8.0
    assert 1.0 < nv300["heap_mgmt"] < 6.0
    # FAST/FAST+ never touch the heap or compute diffs.
    for scheme in ("fast", "fastplus"):
        segments = data[(300, scheme)].segments_us
        assert segments.get("nvwal_computation", 0.0) == 0.0
        assert segments.get("heap_mgmt", 0.0) == 0.0
    # FAST's eager checkpoint cost is visible; FAST+ avoids most of it
    # via the in-place commit (paper: 0.72 vs 1.42 us).
    assert data[(300, "fastplus")].segments_us.get("checkpoint", 0.0) < \
        data[(300, "fast")].segments_us.get("checkpoint", 0.0)
    benchmark.extra_info["nvwal_over_fastplus"] = [
        round(r, 1) for r in result["ratios"]
    ]
