"""Ablation benches for the design choices DESIGN.md calls out:
atomic-write granularity, eager-vs-lazy checkpointing, RTM abort
sensitivity, and defragmentation overhead."""

from repro.bench.figures import (
    ablation_atomicity,
    ablation_checkpoint,
    ablation_defrag,
    ablation_flush_instruction,
    ablation_index_maintenance,
    ablation_rtm,
)

from conftest import OPS, run_figure


def test_ablation_atomicity(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_atomicity, "ablation_atomicity", results_dir
    )
    data = result["data"]
    # FAST and NVWAL need only 8-byte atomic writes.
    assert data[("fast", 8)] == 0
    assert data[("nvwal", 8)] == 0
    # FAST+'s in-place commit requires line-atomic writeback —
    # exactly the assumption the paper states in Section 3.2.
    assert data[("fastplus", 8)] > 0
    assert data[("fastplus", 64)] == 0
    # Naive in-place paging corrupts regardless of granularity (a
    # multi-line header update cannot be atomic without logging).
    assert data[("naive", 8)] > 0
    assert data[("naive", 64)] > 0


def test_ablation_checkpoint(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_checkpoint, "ablation_checkpoint", results_dir,
        ops=OPS,
    )
    data = result["data"]
    # Eager checkpointing keeps recovery cheaper than NVWAL's lazy
    # index rebuild.
    assert data["fast"] < data["nvwal"]
    assert data["fastplus"] < data["nvwal"]


def test_ablation_rtm(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_rtm, "ablation_rtm", results_dir, ops=OPS
    )
    data = result["data"]
    # Retry-until-success degrades gracefully: even a 50% abort rate
    # costs well under 2x.
    assert data[0.5] < 2.0 * data[0.0]
    assert data[0.0] <= data[0.5]


def test_ablation_index_maintenance(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_index_maintenance, "ablation_index_maintenance",
        results_dir, ops=OPS,
    )
    data = result["data"]
    for nindexes in (0, 1, 2):
        # Multi-structure transactions still favour slot-header logging
        # over NVWAL at every index count.
        assert data[(nindexes, "fastplus")] < data[(nindexes, "nvwal")]
        assert data[(nindexes, "fast")] < data[(nindexes, "nvwal")]
    # NVWAL's cost grows fastest with the number of structures touched
    # (it logs dirty page ranges per structure).
    nvwal_growth = data[(2, "nvwal")] - data[(0, "nvwal")]
    fast_growth = data[(2, "fast")] - data[(0, "fast")]
    assert nvwal_growth > fast_growth


def test_ablation_flush_instruction(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_flush_instruction, "ablation_flush",
        results_dir, ops=OPS,
    )
    data = result["data"]
    # clwb (no eviction) beats the evicting clflush for both schemes.
    for scheme in ("fast", "fastplus"):
        assert data[(scheme, "clwb")] < data[(scheme, "clflush")]


def test_ablation_defrag(benchmark, results_dir):
    result = run_figure(
        benchmark, ablation_defrag, "ablation_defrag", results_dir, ops=OPS
    )
    data = result["data"]
    # The paper's configuration (FAST+, fixed-size records): no
    # defragmentation at all — matching the "<0.02%" claim.
    assert data[("fastplus", "fixed-64B")] < 0.02
    # Even adversarial churn keeps it a modest share of total time.
    assert data[("fastplus", "replace-churn")] < 25.0
