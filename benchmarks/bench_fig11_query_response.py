"""Figure 11 (reconstructed): full query response time including SQL
parsing and execution — the paper's headline "up to 33% better
response time"."""

from repro.bench.figures import fig11

from conftest import OPS, run_figure


def test_fig11_query_response(benchmark, results_dir):
    result = run_figure(benchmark, fig11, "fig11", results_dir, ops=OPS)
    data = result["data"]
    improvements = result["improvements"]
    # Write statements: FAST+ beats NVWAL end-to-end.
    for kind in ("insert", "update", "delete"):
        assert data[(kind, "fastplus")].sql_op_us < data[(kind, "nvwal")].sql_op_us
    # The improvement is substantial but bounded (the SQL layer
    # dilutes the commit-time gain — the paper reports up to 33%).
    assert 10.0 < improvements["insert"] < 70.0, improvements
    # Read-only statements never touch the commit path: the schemes
    # are near-identical on SELECT.
    selects = [data[("select", s)].sql_op_us for s in ("nvwal", "fast", "fastplus")]
    assert max(selects) < 2.0 * min(selects)
    benchmark.extra_info["improvement_pct"] = {
        kind: round(value, 1) for kind, value in improvements.items()
    }
