"""Extension bench: recovery time vs database size, eager vs lazy GC."""

from repro.bench.figures import extension_recovery_scaling

from conftest import OPS, run_figure


def test_extension_recovery_scaling(benchmark, results_dir):
    result = run_figure(
        benchmark, extension_recovery_scaling, "extension_recovery",
        results_dir, ops=max(400, OPS // 2),
    )
    data = result["data"]
    sizes = sorted({size for size, _, _ in data})
    # FAST/FAST+ lazy recovery is (near-)constant: the eagerly
    # checkpointed log has nothing to replay.
    for scheme in ("fast", "fastplus"):
        lazy = [data[(size, scheme, False)] for size in sizes]
        assert max(lazy) < 5.0, lazy  # microseconds, size-independent
    # Eager GC walks the arena: it grows with size.
    for scheme in ("fast", "fastplus"):
        eager = [data[(size, scheme, True)] for size in sizes]
        assert eager[-1] > eager[0]
    # NVWAL must rebuild its WAL index either way: its lazy recovery
    # is far above FAST's.
    assert data[(sizes[0], "nvwal", False)] > 10 * data[(sizes[0], "fast", False)]
