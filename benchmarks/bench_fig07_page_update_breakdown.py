"""Figure 7: Page Update breakdown — where the time inside the page
update goes for each scheme as PM latency varies."""

from repro.bench.figures import fig7

from conftest import OPS, run_figure


def test_fig07_page_update_breakdown(benchmark, results_dir):
    result = run_figure(benchmark, fig7, "fig07", results_dir, ops=OPS)
    data = result["data"]

    def seg(latency, scheme, name):
        return data[(latency, latency, scheme)].segments_us.get(name, 0.0)

    # clflush(record) grows with the write latency for the PM schemes
    # (the paper's main observation about persistent buffer caching).
    for scheme in ("fast", "fastplus"):
        series = [seg(lat, scheme, "clflush_record") for lat in (300, 600, 900, 1200)]
        assert series == sorted(series), series
        assert series[-1] > series[0]
    # Only NVWAL pays the volatile-buffer-caching component; the PM
    # schemes never copy pages into DRAM.
    assert seg(300, "nvwal", "volatile_buffer_caching") > 0
    assert seg(300, "fast", "volatile_buffer_caching") == 0
    assert seg(300, "fastplus", "volatile_buffer_caching") == 0
    # The slot-header copy into the log is nearly free (no flushes).
    assert seg(1200, "fast", "update_slot_header") < seg(1200, "fast", "clflush_record")
