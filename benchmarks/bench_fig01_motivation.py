"""Figure 1 (motivation): write amplification of legacy recovery
vs PM-native failure-atomic slotted paging."""

from repro.bench.figures import fig1

from conftest import OPS, run_figure


def test_fig01_motivation(benchmark, results_dir):
    result = run_figure(benchmark, fig1, "fig01", results_dir, ops=OPS)
    data = result["data"]
    # Block-device journaling doubles WAL-mode traffic; both dwarf the
    # PM schemes (the "journaling of journal" anomaly).
    assert data["journaling"] > data["wal"] > data["fastplus"]
    assert data["journaling"] > 50 * data["fastplus"]
    # In-place commit writes the least of all schemes.
    assert data["fastplus"] <= data["fast"]
    benchmark.extra_info["bytes_per_txn"] = {
        key: round(value, 1) for key, value in data.items()
    }
