"""Figure 9: insertion time (a) and clflush count (b) per insert as
the record size grows from 64 B to 1 KiB."""

from repro.bench.figures import RECORD_SIZES, fig9

from conftest import OPS, run_figure


def test_fig09_record_size(benchmark, results_dir):
    result = run_figure(benchmark, fig9, "fig09", results_dir, ops=OPS)
    data = result["data"]
    # (a) insertion time: FAST+ wins at every size, and the gap to
    # NVWAL widens in absolute terms as records grow (the paper:
    # "the performance gap widens ... as the record size increases"
    # because NVWAL duplicates large data while FAST logs fixed-size
    # slot headers).
    for size in RECORD_SIZES:
        assert data[(size, "fastplus")].op_us < data[(size, "nvwal")].op_us
    # "The performance gap widens between FAST and NVWAL as the record
    # size increases" (paper) — holds while records still amortise
    # over pages.  Beyond ~512 B a 4 KiB page holds only a few records
    # and page splits (paid in PM by FAST but in DRAM by NVWAL) take
    # over; the paper's exact sweep range is unknown (truncated text).
    # In our cost model the absolute gap stays roughly flat rather
    # than widening (volatile-buffer copies are nearly free for DRAM;
    # see EXPERIMENTS.md, Figure 9 deviations): assert it does not
    # collapse.
    gap_64 = data[(64, "nvwal")].op_us - data[(64, "fast")].op_us
    gap_256 = data[(256, "nvwal")].op_us - data[(256, "fast")].op_us
    assert gap_256 > 0.75 * gap_64
    # Time grows with record size for every scheme.
    for scheme in ("nvwal", "fast", "fastplus"):
        series = [data[(size, scheme)].op_us for size in RECORD_SIZES]
        assert series == sorted(series), (scheme, series)
    # (b) flush counts grow with record size for every scheme; FAST+
    # issues the fewest (a single in-place commit flushes the record +
    # one header line), while NVWAL pays WAL frames *and* checkpoint
    # write-backs.  (The paper's own Figure 9(b) commentary is lost to
    # truncation — see EXPERIMENTS.md.)
    for scheme in ("nvwal", "fast", "fastplus"):
        series = [data[(size, scheme)].per_op("pm.flush") for size in RECORD_SIZES]
        assert series[-1] > series[0]
    for size in RECORD_SIZES:
        assert (
            data[(size, "fastplus")].per_op("pm.flush")
            <= data[(size, "fast")].per_op("pm.flush")
        )
        assert (
            data[(size, "fastplus")].per_op("pm.flush")
            < data[(size, "nvwal")].per_op("pm.flush")
        )
    benchmark.extra_info["us_per_insert"] = {
        "%d/%s" % (size, scheme): round(data[(size, scheme)].op_us, 2)
        for size in RECORD_SIZES for scheme in ("nvwal", "fast", "fastplus")
    }
