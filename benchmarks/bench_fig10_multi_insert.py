"""Figure 10 (reconstructed): multi-record transactions — the regime
where FAST+ must fall back to slot-header logging."""

from repro.bench.figures import TXN_SIZES, fig10

from conftest import OPS, run_figure


def test_fig10_multi_insert(benchmark, results_dir):
    result = run_figure(benchmark, fig10, "fig10", results_dir, ops=OPS)
    data = result["data"]
    # Per-insert commit cost amortises as transactions grow for the
    # logging schemes.
    for scheme in ("fast", "nvwal"):
        commit_series = [
            data[(n, scheme)].segments_us.get("commit", 0.0) for n in TXN_SIZES
        ]
        assert commit_series[-1] < commit_series[0], (scheme, commit_series)
    # With >= 2 records per transaction FAST+ takes the same logged
    # path as FAST, so their commit costs converge (paper Section 4.2).
    for per_txn in TXN_SIZES[1:]:
        fast_commit = data[(per_txn, "fast")].segments_us.get("commit", 0.0)
        plus_commit = data[(per_txn, "fastplus")].segments_us.get("commit", 0.0)
        assert plus_commit < 1.5 * fast_commit
        assert fast_commit < 1.5 * plus_commit
    # At 1 record/txn the in-place commit is far cheaper than logging.
    assert (
        data[(1, "fastplus")].segments_us.get("commit", 0.0)
        < 0.7 * data[(1, "fast")].segments_us.get("commit", 0.0)
    )
    # FAST stays ahead of NVWAL throughout.
    for per_txn in TXN_SIZES:
        assert data[(per_txn, "fast")].op_us < data[(per_txn, "nvwal")].op_us
