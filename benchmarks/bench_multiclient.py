#!/usr/bin/env python
"""Multi-client contention baseline: deterministic concurrency numbers.

Runs the multi-client scheduler bench (``repro.bench.multiclient``)
over a fixed grid — schemes x client counts at a 50/50 read/write mix,
plus a read-ratio sweep at 4 clients, plus read-mostly cells pairing
locked readers against lock-free MVCC snapshot readers — and compares
the results against the committed baseline in
``BENCH_multiclient.json``.

Unlike ``bench_selfperf.py`` (host wall-clock, noisy, checked with a
wide regression factor), everything here is *simulated* and the
scheduler is deterministic, so ``--check`` demands EXACT equality:
same simulated-ns totals, same commit/abort/deadlock/retry counts,
same lock counters.  Any diff means concurrency behavior changed and
the baseline must be consciously regenerated with ``--update``.

Usage::

    python benchmarks/bench_multiclient.py            # run + compare
    python benchmarks/bench_multiclient.py --check    # exit 1 on any diff
    python benchmarks/bench_multiclient.py --update   # rewrite baseline
"""

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(ROOT / "src"))

BASELINE_PATH = ROOT / "BENCH_multiclient.json"
SCHEMES = ("fast", "fastplus", "nvwal")
CLIENT_COUNTS = (1, 2, 4, 8)
READ_RATIOS = (0.0, 0.5, 0.9)
ITEMS = 25
SEED = 7
#: Read-mostly MVCC cells: 1 writer + N-1 pure readers over a hot key
#: space, run twice — readers as locked sessions, then as lock-free
#: MVCC snapshots (identical workloads; the delta is locking cost).
MVCC_CLIENT_COUNTS = (4, 8)
MVCC_KEY_SPACE = 100
#: Shard sweep: 8 clients on disjoint per-shard key pools over 1/2/4
#: independent pagestores (only the commit-mark schemes shard).
SHARD_SCHEMES = ("fast", "fastplus")
SHARD_COUNTS = (1, 2, 4)
SHARD_CLIENTS = 8
#: Group-commit sweep: per-txn durability cost (fences / commit marks /
#: flushes) over group size x client count, size 0 = grouping off.
GROUP_SIZES = (0, 2, 4)
GROUP_CLIENTS = (2, 8)
#: OCC sweep: locked-vs-optimistic twins over client count x conflict
#: mix (mixes come from ``repro.bench.multiclient.OCC_MIXES``).
OCC_CLIENTS = (2, 8)
#: Cache sweep (fig15): tiered DRAM page cache capacity x PM read
#: latency over the read-mostly MVCC cell; 0 pages = cache off (the
#: baseline each latency's speedups are relative to).  NVWAL already
#: fronts PM with its own volatile buffer cache, so only the
#: commit-mark schemes sweep.
CACHE_SCHEMES = ("fast", "fastplus")
CACHE_SIZES = (0, 8, 64)
CACHE_READ_LATS = (300.0, 900.0, 1200.0)
#: Longer per-client runs than the contention grid: read-hot caching
#: needs enough reads per invalidation to amortize its fills, and the
#: fig15 crossover claim (>=1.5x at the slow-PM/high-hit corner) is
#: asserted over these committed rows.
CACHE_ITEMS = 40


def _summarize(result):
    """The comparable (and committed) slice of one run's report."""
    return {
        "clients": result["clients"],
        "read_ratio": result["read_ratio"],
        "commits": result["commits"],
        "aborts": result["aborts"],
        "deadlocks": result["deadlocks"],
        "timeouts": result["timeouts"],
        "retries": result["retries"],
        "steps": result["steps"],
        "simulated_ns": result["simulated_ns"],
        "elapsed_ns": result["elapsed_ns"],
        "throughput_tps": round(result["throughput_tps"], 3),
        "records": result["records"],
        "lock_acquires": result["counters"]["lock.acquire"],
        "lock_conflicts": result["counters"]["lock.conflict"],
    }


def _summarize_mvcc(result):
    summary = _summarize(result)
    summary["clients"] = 1 + result["readers"]  # writer + readers
    summary["mvcc"] = result["mvcc"]
    summary["snapshot_reads"] = result["mvcc_counters"]["mvcc.snapshot_reads"]
    return summary


def _summarize_group(result):
    """The comparable (and committed) slice of one group-commit run."""
    summary = _summarize(result)
    summary["group_size"] = result["group_size"]
    summary["fences_per_txn"] = round(result["fences_per_txn"], 3)
    summary["marks_per_txn"] = round(result["marks_per_txn"], 3)
    summary["flushes_per_txn"] = round(result["flushes_per_txn"], 3)
    summary["group_closes"] = result["counters"]["group.close"]
    summary["fence_reduction_vs_ungrouped"] = round(
        result["fence_reduction_vs_ungrouped"], 3,
    )
    return summary


def _summarize_occ(result):
    """The comparable (and committed) slice of one isolation cell."""
    summary = _summarize(result)
    summary["isolation"] = result["isolation"]
    summary["mix"] = result["mix"]
    summary["lock_acquires_per_commit"] = round(
        result["lock_acquires_per_commit"], 3,
    )
    summary["occ_commits"] = result["counters"]["occ.commit"]
    summary["occ_abort_rate"] = round(result["occ_abort_rate"], 3)
    summary["occ_fallbacks"] = result["occ_fallbacks"]
    return summary


def _summarize_cache(result):
    """The comparable (and committed) slice of one cache cell."""
    summary = _summarize(result)
    summary["clients"] = 1 + result["readers"]  # writer + readers
    summary["cache_pages"] = result["cache_pages"]
    summary["read_ns"] = result["read_ns"]
    summary["cache_hit_ratio"] = round(result["cache_hit_ratio"], 3)
    summary["cache_hits"] = result["counters"]["cache.hit"]
    summary["cache_misses"] = result["counters"]["cache.miss"]
    summary["cache_evicts"] = result["counters"]["cache.evict"]
    summary["cache_invalidates"] = result["counters"]["cache.invalidate"]
    summary["speedup_vs_uncached"] = round(result["speedup_vs_uncached"], 3)
    return summary


def _summarize_sharded(result):
    """The comparable (and committed) slice of one sharded run."""
    return {
        "shards": result["shards"],
        "clients": result["clients"],
        "commits": result["commits"],
        "aborts": result["aborts"],
        "retries": result["retries"],
        "steps": result["steps"],
        "elapsed_ns": result["elapsed_ns"],
        "busy_ns": [round(b, 3) for b in result["busy_ns"]],
        "parallel_elapsed_ns": round(result["parallel_elapsed_ns"], 3),
        "throughput_tps": round(result["throughput_tps"], 3),
        "serial_throughput_tps": round(result["serial_throughput_tps"], 3),
        "speedup_vs_one_shard": round(result["speedup_vs_one_shard"], 3),
        "records": result["records"],
        "twopc_commits": result["counters"]["twopc.commit"],
    }


def run_grid():
    from repro.bench.multiclient import (
        run_multi_client, run_read_mostly, sweep_cache,
        sweep_group_commit, sweep_occ, sweep_shards,
    )

    grid = {"workload": {"items_per_client": ITEMS, "seed": SEED},
            "client_sweep": {}, "mix_sweep": {}, "mvcc_sweep": {},
            "shard_sweep": {}, "group_sweep": {}, "occ_sweep": {},
            "cache_sweep": {}}
    for scheme in SCHEMES:
        grid["client_sweep"][scheme] = [
            _summarize(run_multi_client(
                scheme, clients=count, items=ITEMS, seed=SEED,
            ))
            for count in CLIENT_COUNTS
        ]
        grid["mix_sweep"][scheme] = [
            _summarize(run_multi_client(
                scheme, clients=4, items=ITEMS, read_ratio=ratio, seed=SEED,
            ))
            for ratio in READ_RATIOS
        ]
        grid["mvcc_sweep"][scheme] = [
            _summarize_mvcc(run_read_mostly(
                scheme, clients=count, items=ITEMS, seed=SEED,
                key_space=MVCC_KEY_SPACE, mvcc=mvcc,
            ))
            for count in MVCC_CLIENT_COUNTS
            for mvcc in (False, True)
        ]
        grid["group_sweep"][scheme] = [
            _summarize_group(row)
            for row in sweep_group_commit(
                scheme, group_sizes=GROUP_SIZES, counts=GROUP_CLIENTS,
                items=ITEMS, seed=SEED,
            )
        ]
        grid["occ_sweep"][scheme] = [
            _summarize_occ(row)
            for row in sweep_occ(
                scheme, counts=OCC_CLIENTS, items=ITEMS, seed=SEED,
            )
        ]
    for scheme in CACHE_SCHEMES:
        grid["cache_sweep"][scheme] = [
            _summarize_cache(row)
            for row in sweep_cache(
                scheme, cache_sizes=CACHE_SIZES,
                read_lats=CACHE_READ_LATS, items=CACHE_ITEMS, seed=SEED,
            )
        ]
    for scheme in SHARD_SCHEMES:
        grid["shard_sweep"][scheme] = [
            _summarize_sharded(row)
            for row in sweep_shards(
                scheme, shard_counts=SHARD_COUNTS,
                clients=SHARD_CLIENTS, items=ITEMS, seed=SEED,
            )
        ]
    return grid


def _print_grid(grid):
    print("multiclient: simulated throughput under contention "
          "(%d items/client, seed %d)" % (ITEMS, SEED))
    for scheme in SCHEMES:
        rows = grid["client_sweep"][scheme]
        print("  %-9s " % scheme + "  ".join(
            "%dc %8.0f tps (%da/%dd)" % (
                r["clients"], r["throughput_tps"], r["aborts"], r["deadlocks"],
            )
            for r in rows
        ))
    print("read-mostly (1 writer + N-1 readers, key space %d): "
          "locked vs MVCC readers" % MVCC_KEY_SPACE)
    for scheme in SCHEMES:
        rows = grid["mvcc_sweep"][scheme]
        print("  %-9s " % scheme + "  ".join(
            "%dc %-4s %8.0f tps (%d cf)" % (
                r["clients"], "mvcc" if r["mvcc"] else "lock",
                r["throughput_tps"], r["lock_conflicts"],
            )
            for r in rows
        ))
    print("group commit (size 0 = off): marginal fences per committed txn")
    for scheme in SCHEMES:
        rows = grid["group_sweep"][scheme]
        print("  %-9s " % scheme + "  ".join(
            "%dc/g%d %5.2f f/txn (%.2fx)" % (
                r["clients"], r["group_size"], r["fences_per_txn"],
                r["fence_reduction_vs_ungrouped"],
            )
            for r in rows
        ))
    print("occ sweep (locked vs optimistic twins): lock acquires per "
          "committed txn")
    for scheme in SCHEMES:
        rows = grid["occ_sweep"][scheme]
        cells = {}
        for r in rows:
            cells.setdefault((r["mix"], r["clients"]), {})[r["isolation"]] = r
        print("  %-9s " % scheme + "  ".join(
            "%s/%dc %.2f->%.2f la/txn (%.0f%% ab, %d fb)" % (
                mix[:4], count,
                pair["locked"]["lock_acquires_per_commit"],
                pair["occ"]["lock_acquires_per_commit"],
                100 * pair["occ"]["occ_abort_rate"],
                pair["occ"]["occ_fallbacks"],
            )
            for (mix, count), pair in sorted(cells.items())
        ))
    print("cache sweep (DRAM pages x PM read latency, read-mostly MVCC): "
          "hit ratio and speedup vs cache-off")
    for scheme in CACHE_SCHEMES:
        rows = grid["cache_sweep"][scheme]
        print("  %-9s " % scheme + "  ".join(
            "p%d@%.0f %.2fh %.2fx" % (
                r["cache_pages"], r["read_ns"], r["cache_hit_ratio"],
                r["speedup_vs_uncached"],
            )
            for r in rows
        ))
    print("shard sweep (%d clients, disjoint per-shard pools): modeled "
          "parallel throughput" % SHARD_CLIENTS)
    for scheme in SHARD_SCHEMES:
        rows = grid["shard_sweep"][scheme]
        print("  %-9s " % scheme + "  ".join(
            "%ds %8.0f tps (%.2fx)" % (
                r["shards"], r["throughput_tps"], r["speedup_vs_one_shard"],
            )
            for r in rows
        ))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Deterministic multi-client contention baseline.",
    )
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless results exactly equal the "
                             "committed baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite %s" % BASELINE_PATH.name)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump the results ('-' = stdout)")
    parser.add_argument("--shards", metavar="N", type=int, default=None,
                        help="skip the grid: one sharded run over N "
                             "pagestores (8 clients, disjoint pools)")
    args = parser.parse_args(argv)

    if args.shards is not None:
        from repro.bench.multiclient import run_sharded_multi_client

        result = run_sharded_multi_client(
            "fastplus", shards=args.shards, clients=SHARD_CLIENTS,
            items=ITEMS, seed=SEED,
        )
        summary = _summarize_sharded(dict(result, speedup_vs_one_shard=0.0))
        del summary["speedup_vs_one_shard"]
        print("fastplus over %d shard(s): %d commits, %8.0f modeled tps "
              "(serial %8.0f)" % (
                  result["shards"], result["commits"],
                  result["throughput_tps"], result["serial_throughput_tps"],
              ))
        if args.json == "-":
            print(json.dumps(summary, indent=2, sort_keys=True))
        elif args.json:
            pathlib.Path(args.json).write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n"
            )
        return 0

    grid = run_grid()
    _print_grid(grid)

    if args.json == "-":
        print(json.dumps(grid, indent=2, sort_keys=True))
    elif args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(grid, indent=2, sort_keys=True) + "\n"
        )

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(grid, indent=2, sort_keys=True) + "\n"
        )
        print("updated %s" % BASELINE_PATH)
        return 0

    if args.check:
        if not BASELINE_PATH.exists():
            print("multiclient: no committed baseline", file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        if grid != baseline:
            print("multiclient MISMATCH: results differ from %s — "
                  "concurrency behavior changed (run --update if intended)"
                  % BASELINE_PATH.name, file=sys.stderr)
            for section in ("client_sweep", "mix_sweep", "mvcc_sweep",
                            "shard_sweep", "group_sweep", "occ_sweep",
                            "cache_sweep"):
                for scheme in SCHEMES:
                    got = grid[section].get(scheme)
                    want = (baseline.get(section) or {}).get(scheme)
                    if got != want:
                        print("  %s/%s:\n    got  %s\n    want %s"
                              % (section, scheme, got, want), file=sys.stderr)
            return 1
        print("multiclient check: OK (exactly equal to baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
