#!/usr/bin/env python
"""Self-performance baseline: host wall-clock throughput of the simulator.

Every other benchmark in this directory reports *simulated* time — the
paper's numbers.  This one measures the simulator itself: how many
single-record inserts per second of **host** wall-clock the three
scheme engines sustain.  It exists so hot-path regressions are caught
the same way correctness regressions are.

Workload (fixed, so numbers are comparable across commits):

* schemes ``nvwal``, ``fast``, ``fastplus`` — the full Figure 6 trio;
* ``--ops`` single-record inserts each (64-byte payloads, seeded
  keys), built with the stock ``build_config`` arena;
* the first ``warmup`` inserts are untimed (engine open, imports, and
  first-touch page allocation excluded); the timer covers the insert
  loop only, which is what "ops/sec" means here;
* measured twice: with tracing on (the default) and with
  ``engine.obs.tracing(False)`` (counters stay exact; only the event
  ring is elided).

Because the host may be noisy (shared cores), each mode takes the
best of ``--reps`` repetitions — the minimum is robust against
additive noise.

Usage::

    python benchmarks/bench_selfperf.py              # measure + compare
    python benchmarks/bench_selfperf.py --quick      # CI-sized run
    python benchmarks/bench_selfperf.py --check      # exit 1 on regression
    python benchmarks/bench_selfperf.py --update     # rewrite baseline

The committed baseline lives in ``BENCH_selfperf.json`` at the repo
root: a ``before`` block (pre-optimisation numbers, kept for the
record) and an ``after`` block (what ``--check`` compares against).
``--check`` fails only on a >3x collapse below the baseline — wide
enough to tolerate slow CI runners, tight enough to catch an
accidentally quadratic hot path.
"""

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401  (already importable: installed or PYTHONPATH)
except ImportError:
    sys.path.insert(0, str(ROOT / "src"))

BASELINE_PATH = ROOT / "BENCH_selfperf.json"
SCHEMES = ("nvwal", "fast", "fastplus")

#: ``--check`` fails when measured throughput drops below baseline
#: divided by this factor.
REGRESSION_FACTOR = 3.0


def _insert_loop_seconds(scheme, ops, warmup, traced):
    """Open an engine, run the fixed insert workload, return the host
    seconds the timed portion of the loop took."""
    from repro.bench.harness import build_config
    from repro.bench.workloads import random_keys, sized_payload
    from repro.core import open_engine

    config = build_config(scheme, ops=ops)
    engine = open_engine(config, scheme=scheme)
    if not traced:
        if hasattr(engine.obs, "tracing"):
            engine.obs.tracing(False)
        else:  # pre-tracing() trees (lets this script time old commits)
            engine.obs.trace.enabled = False
    keys = random_keys(ops, seed=7)
    payload = sized_payload(64)
    for key in keys[:warmup]:
        engine.insert(key, payload)
    start = time.perf_counter()
    for key in keys[warmup:]:
        engine.insert(key, payload)
    return time.perf_counter() - start


def measure(ops, warmup, reps, traced):
    """Best-of-``reps`` throughput per scheme, plus the aggregate."""
    best = {}
    for scheme in SCHEMES:
        seconds = min(
            _insert_loop_seconds(scheme, ops, warmup, traced)
            for _ in range(reps)
        )
        best[scheme] = seconds
    timed_ops = ops - warmup
    return {
        "per_scheme_ops_per_sec": {
            scheme: round(timed_ops / seconds, 1)
            for scheme, seconds in best.items()
        },
        "aggregate_ops_per_sec": round(
            len(SCHEMES) * timed_ops / sum(best.values()), 1
        ),
    }


def run_measurement(ops, warmup, reps):
    return {
        "workload": {
            "schemes": list(SCHEMES),
            "ops_per_scheme": ops,
            "warmup_ops": warmup,
            "record_size": 64,
            "timed": "insert loop only (engine open and warmup excluded)",
            "reps": reps,
            "statistic": "best-of-reps",
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "traced": measure(ops, warmup, reps, traced=True),
        "untraced": measure(ops, warmup, reps, traced=False),
    }


def _print_report(measured, baseline):
    print("selfperf: host ops/sec, insert loop only, best of %d reps"
          % measured["workload"]["reps"])
    for mode in ("traced", "untraced"):
        per = measured[mode]["per_scheme_ops_per_sec"]
        print("  %-9s aggregate %8.1f ops/s   (%s)" % (
            mode, measured[mode]["aggregate_ops_per_sec"],
            "  ".join("%s %.0f" % (s, per[s]) for s in SCHEMES),
        ))
    after = (baseline or {}).get("after")
    if after:
        for mode in ("traced", "untraced"):
            base = after[mode]["aggregate_ops_per_sec"]
            now = measured[mode]["aggregate_ops_per_sec"]
            print("  %-9s vs baseline %8.1f ops/s -> %.2fx" % (
                mode, base, now / base))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure the simulator's own insert throughput "
                    "(host wall-clock).",
    )
    parser.add_argument("--ops", type=int, default=3000,
                        help="inserts per scheme (default 3000)")
    parser.add_argument("--warmup", type=int, default=100,
                        help="untimed leading inserts (default 100)")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per mode; best is kept (default 5)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: --ops 1500 --reps 3")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if throughput fell more than %.0fx "
                             "below the committed baseline" % REGRESSION_FACTOR)
    parser.add_argument("--update", action="store_true",
                        help="write the measurement into the 'after' block "
                             "of %s" % BASELINE_PATH.name)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump the raw measurement ('-' = stdout)")
    args = parser.parse_args(argv)
    if args.quick:
        args.ops = min(args.ops, 1500)
        args.reps = min(args.reps, 3)

    measured = run_measurement(args.ops, args.warmup, args.reps)
    baseline = (
        json.loads(BASELINE_PATH.read_text())
        if BASELINE_PATH.exists() else None
    )
    _print_report(measured, baseline)

    if args.json == "-":
        print(json.dumps(measured, indent=2))
    elif args.json:
        pathlib.Path(args.json).write_text(json.dumps(measured, indent=2) + "\n")

    if args.update:
        baseline = baseline or {}
        baseline["after"] = measured
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print("updated %s" % BASELINE_PATH)

    if args.check:
        if not baseline or "after" not in baseline:
            print("selfperf: no committed baseline to check against",
                  file=sys.stderr)
            return 1
        failed = False
        for mode in ("traced", "untraced"):
            base = baseline["after"][mode]["aggregate_ops_per_sec"]
            now = measured[mode]["aggregate_ops_per_sec"]
            if now * REGRESSION_FACTOR < base:
                print("selfperf REGRESSION: %s %.1f ops/s is >%.0fx below "
                      "baseline %.1f ops/s"
                      % (mode, now, REGRESSION_FACTOR, base), file=sys.stderr)
                failed = True
        if failed:
            return 1
        print("selfperf check: OK (within %.0fx of baseline)"
              % REGRESSION_FACTOR)
    return 0


if __name__ == "__main__":
    sys.exit(main())
