"""Shared infrastructure for the figure benchmarks.

Each benchmark regenerates one figure/table of the paper via the
``repro.bench.figures`` harness, asserts the *shape* claims the paper
makes (who wins, how the trend moves), stores the raw series in
pytest-benchmark's ``extra_info``, and writes the rendered table to
``results/<name>.txt``.

Wall-clock times reported by pytest-benchmark measure the simulator,
not the system under test — the meaningful output is the simulated-
microsecond tables.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Operations per data point.  The paper uses 100,000; the default
#: here keeps the full suite within minutes while preserving shape.
OPS = int(os.environ.get("REPRO_BENCH_OPS", "800"))


def pytest_addoption(parser):
    group = parser.getgroup("repro-bench")
    group.addoption(
        "--parallel", action="store_true", default=False,
        help="fan each figure's grid cells out over worker processes "
             "(results are byte-identical to serial; see repro.bench."
             "parallel).  REPRO_BENCH_PARALLEL=1 does the same.",
    )
    group.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for --parallel (default: all CPUs)",
    )


def pytest_configure(config):
    from repro.bench import parallel

    if config.getoption("--parallel", default=False):
        parallel.configure(parallel=True)
    jobs = config.getoption("--jobs", default=None)
    if jobs:
        parallel.configure(jobs=jobs)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_figure(benchmark, generator, name, results_dir, **kwargs):
    """Run a figure generator under pytest-benchmark and persist it."""
    from repro.bench.report import table_to_csv

    result = benchmark.pedantic(
        lambda: generator(**kwargs), rounds=1, iterations=1
    )
    (results_dir / ("%s.txt" % name)).write_text(result["table"] + "\n")
    (results_dir / ("%s.csv" % name)).write_text(table_to_csv(result["table"]))
    print()
    print(result["table"])
    return result
