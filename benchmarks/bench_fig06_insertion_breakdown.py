"""Figure 6: B-tree insertion time breakdown (Search / Page Update /
Commit) as PM read/write latency is varied 120-1200 ns."""

from repro.bench.figures import LATENCY_POINTS, fig6

from conftest import OPS, run_figure


def test_fig06_insertion_breakdown(benchmark, results_dir):
    result = run_figure(benchmark, fig6, "fig06", results_dir, ops=OPS)
    data = result["data"]
    for read_ns, write_ns in LATENCY_POINTS:
        nvwal = data[(read_ns, write_ns, "nvwal")].op_us
        fast = data[(read_ns, write_ns, "fast")].op_us
        fastplus = data[(read_ns, write_ns, "fastplus")].op_us
        # The paper's headline ordering at every latency point.
        assert fastplus < fast < nvwal, (read_ns, fastplus, fast, nvwal)
    # Insertion time grows with PM latency for the PM-resident schemes.
    for scheme in ("fast", "fastplus"):
        series = [data[(r, w, scheme)].op_us for r, w in LATENCY_POINTS]
        assert series == sorted(series), series
    # FAST+ stays ahead even at 1.2 us (paper Section 5 claim).
    assert data[(1200, 1200, "nvwal")].op_us > 1.4 * data[(1200, 1200, "fastplus")].op_us
    benchmark.extra_info["total_us"] = {
        "%d/%d/%s" % (r, w, s): round(data[(r, w, s)].op_us, 2)
        for (r, w) in LATENCY_POINTS for s in ("nvwal", "fast", "fastplus")
    }
