"""Systematic crash injection for the storage engines.

The harness runs a workload of single-operation transactions against
an engine whose ``PersistentMemory`` is replaced by ``CrashablePM``,
which raises ``CrashPoint`` after a chosen number of memory events
(stores, flushes, fences).  At the crash point the volatile state is
discarded under a ``CrashPolicy`` (any subset of unfenced atomic units
may survive), recovery runs, and the recovered database is checked
against the model:

* **durability** — every transaction whose ``commit()`` returned must
  be fully visible;
* **atomicity** — the transaction in flight at the crash must be
  either fully visible or fully invisible;
* **integrity** — the B-tree passes structural verification.

Sweeping the crash point across every memory event of a workload
explores every writeback interleaving the hardware could produce —
this is the executable form of the paper's Section 4.4 case analysis.
"""

import random
from dataclasses import dataclass, field

from repro.core import SystemConfig, engine_class
from repro.obs.trace import RECOVERY_REPLAY
from repro.pm.crash import RandomPersist
from repro.pm.memory import PersistentMemory


class CrashPoint(Exception):
    """Raised by ``CrashablePM`` when the event budget is exhausted."""


class AtomicityViolation(AssertionError):
    """The recovered state broke durability or atomicity."""


class CrashablePM(PersistentMemory):
    """A ``PersistentMemory`` that power-fails after N memory events.

    Events are counted only while ``armed`` (so setup and recovery are
    exempt) and never inside an RTM commit (the hardware applies those
    stores indivisibly).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.armed = False
        self.budget = None
        self.events = 0

    def _tick(self):
        if not self.armed or getattr(self, "rtm_commit_in_progress", False):
            return
        self.events += 1
        if self.budget is not None and self.events >= self.budget:
            self.armed = False
            raise CrashPoint()

    def write(self, addr, data):
        self._tick()
        super().write(addr, data)

    def clflush(self, addr):
        self._tick()
        super().clflush(addr)

    def clwb(self, addr):
        self._tick()
        super().clwb(addr)

    def sfence(self):
        self._tick()
        super().sfence()

    mfence = sfence

    # ``PersistentMemory``'s fast paths (fixed-width stores, the
    # inlined ``flush_range`` loop) bypass the overridable methods
    # above for speed.  Here every store and every per-line flush must
    # remain an interceptable event — "every memory event is a crash
    # point" — so route them back through the generic paths, which
    # have identical simulated cost and semantics.

    def write_u16(self, addr, value):
        self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        self.write(addr, value.to_bytes(8, "little"))

    def flush_range(self, addr, length):
        if length <= 0:
            return
        flush = self.clwb if self.flush_instruction == "clwb" else self.clflush
        for line in range(addr >> 6, ((addr + length - 1) >> 6) + 1):
            flush(line << 6)


@dataclass
class CrashTestResult:
    """Outcome of one crash-and-recover run."""

    crashed: bool
    committed: dict
    inflight: tuple
    recovered: dict
    violations: list = field(default_factory=list)
    #: ``recovery_replay`` trace events emitted while recovery ran
    #: (empty when the run completed without crashing).
    recovery_events: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.violations


def _build_engine(config, scheme):
    cls = engine_class(scheme)
    pm = CrashablePM(
        config.arena_bytes,
        latency=config.latency,
        cost=config.cost,
        atomic_granularity=config.atomic_granularity,
        cache_lines=config.cache_lines,
    )
    return cls.create(config, pm=pm), pm


def _ops_of(item):
    """A workload item is one op or a composite ("txn", [ops...])."""
    if item[0] == "txn":
        return list(item[1])
    return [item]


def _apply(model, item):
    for kind, key, value in _ops_of(item):
        if kind == "insert":
            model[key] = value
        elif kind == "update":
            if key in model:
                model[key] = value
        elif kind == "delete":
            model.pop(key, None)
        else:
            raise ValueError("unknown op %r" % (kind,))


def _execute(txn, item):
    for kind, key, value in _ops_of(item):
        if kind == "insert":
            txn.insert(key, value, replace=True)
        elif kind == "update":
            txn.update(key, value)
        else:
            txn.delete(key)


def _prefix_model(items, count):
    """Model state after the first ``count`` committed items."""
    model = {}
    for item in items[:count]:
        _apply(model, item)
    return model


def _group_candidates(engine, items, inflight):
    """Recovered-state candidates under group commit, or None.

    With ``SystemConfig.group_commit`` on, the open epoch's M members
    are committed but not yet durable: a crash before the shared fence
    + group mark loses all M, a crash after the mark (mid-close) loses
    none.  A crash inside a commit that already joined the epoch
    shifts the boundary by one.  Everything in between — some members
    recovered, others not — is exactly the torn-group atomicity
    violation this harness exists to catch, so only the boundary
    prefixes are legal.  ``items`` must be ``_apply``-able committed
    items in commit order.
    """
    group = getattr(engine, "group", None)
    if group is None:
        return None
    members = group.member_count
    total = len(items)
    lengths = {max(0, total - members), total}
    if inflight:
        lengths.add(max(0, min(total, total - members + 1)))
    return [_prefix_model(items, count) for count in sorted(lengths)]


def run_to_crash_point(scheme, workload, budget, *, config=None, policy=None,
                       seed=0, checker_factory=None):
    """Run ``workload`` (a list of ``(op, key, value)`` single-op
    transactions), crash after ``budget`` armed memory events, recover,
    and validate.  ``budget=None`` runs to completion (baseline).

    ``checker_factory`` (optional) is called with the fresh engine and
    must return a ``repro.analysis.TraceChecker``-shaped object; the
    run then drives it transaction by transaction so persistence-
    ordering violations surface even at crash points that happen to
    recover cleanly.  The checker observes the run only up to the
    crash — recovery's redo stores legitimately rewrite live bytes.

    Returns a ``CrashTestResult``; ``result.violations`` lists every
    broken invariant (empty = the scheme survived this crash point).
    """
    config = config or SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )
    engine, pm = _build_engine(config, scheme)
    checker = checker_factory(engine) if checker_factory is not None else None
    committed = {}
    committed_items = []
    inflight = ()
    crashed = False
    pm.budget = budget
    pm.events = 0
    pm.armed = True
    try:
        for op in workload:
            inflight = op
            if checker is not None:
                # Pure PM reads: refreshing the live set never ticks
                # the crash budget or perturbs the traced store stream.
                checker.begin_txn(checker.live_ranges_of(engine))
            txn = engine.transaction()
            _execute(txn, op)
            txn.commit()
            _apply(committed, op)
            committed_items.append(op)
            inflight = ()
        # End-of-run durability barrier (armed: the sweep also visits
        # every crash point inside the final epoch close) — a no-op
        # with grouping off.
        drain = getattr(engine, "drain_group_commit", None)
        if drain is not None:
            drain()
    except CrashPoint:
        crashed = True
    finally:
        pm.armed = False
        if checker is not None:
            checker.close()  # seal at the crash; recovery is unchecked

    if not crashed:
        recovered = {k: v for k, v in engine.scan()}
        result = CrashTestResult(False, committed, inflight, recovered)
        _validate(engine, result, strict_inflight=False)
        return result

    prefix_candidates = _group_candidates(engine, committed_items, inflight)
    pm.crash(policy or RandomPersist(rng=random.Random(seed)))
    recovery_start_seq = pm.obs.trace.seq
    try:
        engine = engine_class(scheme).attach(config, pm)
        recovered = {k: v for k, v in engine.scan()}
    except Exception as err:  # corruption can crash recovery itself
        result = CrashTestResult(True, committed, inflight, {})
        result.violations.append(
            "recovery crashed: %s: %s" % (type(err).__name__, err)
        )
        return result
    result = CrashTestResult(True, committed, inflight, recovered)
    result.recovery_events = pm.obs.trace.events(
        kind=RECOVERY_REPLAY, since_seq=recovery_start_seq
    )
    _validate(engine, result, strict_inflight=True,
              prefix_candidates=prefix_candidates)
    return result


def _validate(engine, result, *, strict_inflight, prefix_candidates=None):
    """Exact-state validation: the recovered database must equal either
    the committed model or committed-plus-the-whole-in-flight-
    transaction — nothing else (durability + atomicity + no phantoms
    in one comparison).  ``prefix_candidates`` (group commit) swaps
    the single committed model for the legal epoch-boundary prefixes
    from :func:`_group_candidates`."""
    committed, inflight, recovered = (
        result.committed, result.inflight, result.recovered,
    )
    try:
        engine.verify()
    except AssertionError as err:
        result.violations.append("structure: %s" % err)

    del strict_inflight
    candidates = list(prefix_candidates) if prefix_candidates else [committed]
    if inflight:
        with_inflight = dict(committed)
        _apply(with_inflight, inflight)
        candidates.append(with_inflight)
    if any(recovered == candidate for candidate in candidates):
        return result
    # Build a readable diff against the closest candidate.
    candidate = candidates[0]
    for key, value in candidate.items():
        if recovered.get(key) != value:
            result.violations.append(
                "durability: expected %r -> %r but recovered %r"
                % (key, value, recovered.get(key))
            )
    allowed = set().union(*[set(c) for c in candidates])
    for key in recovered:
        if key not in allowed:
            result.violations.append("phantom key %r after recovery" % key)
    if not result.violations:
        result.violations.append(
            "atomicity: recovered state is a blend of the in-flight "
            "transaction (neither fully applied nor fully absent)"
        )
    return result


def crash_points_in(scheme, workload, *, config=None):
    """Total armed memory events the workload generates (the sweep
    range for exhaustive injection)."""
    result_events = {}

    config = config or SystemConfig(
        npages=128, page_size=512, log_bytes=16384,
        heap_bytes=1 << 20, dram_bytes=64 * 512,
    )
    engine, pm = _build_engine(config, scheme)
    pm.budget = None
    pm.events = 0
    pm.armed = True
    for op in workload:
        txn = engine.transaction()
        _execute(txn, op)
        txn.commit()
    drain = getattr(engine, "drain_group_commit", None)
    if drain is not None:
        drain()
    pm.armed = False
    result_events["total"] = pm.events
    return pm.events


# ----------------------------------------------------------------------
# Crash injection through the multi-client scheduler
# ----------------------------------------------------------------------

_SMALL_CONFIG = dict(
    npages=128, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)


def _writes_of(item):
    """The state-changing ops of an item (reads/thinks have none)."""
    return [
        op for op in _ops_of(item)
        if op[0] in ("insert", "update", "delete")
    ]


def _client_spec(workload):
    """One scheduler-client workload entry: a plain item list (a
    classic 2PL writer), or ``{"items": [...], "isolation": mode}``
    with mode one of ``"locked"`` / ``"read_only"`` / ``"occ"``
    (``{"read_only": True}`` is accepted as legacy spelling).

    Read-only clients are lock-free MVCC snapshot readers (pure
    ``search``/``think`` items); they change no durable state, so the
    committed-prefix model is untouched by them — but their presence
    at the crash exercises recovery with version chains live (all
    volatile: recovery starts with none).  OCC clients buffer their
    writes and install them at commit, so the committed-prefix model
    is identical to a 2PL client's: only committed transactions may
    surface, in commit order."""
    if isinstance(workload, dict):
        isolation = workload.get("isolation")
        if isolation is None:
            isolation = (
                "read_only" if workload.get("read_only") else "locked"
            )
        return workload["items"], isolation
    return workload, "locked"


def _scheduled_model(clients, commit_order):
    """Replay the committed transactions in commit order — strict 2PL
    makes the interleaving serializable in exactly that order, so this
    is the one state a correct recovery may expose (modulo the
    in-flight commit)."""
    items_of = {client.name: client.items for client in clients}
    model = {}
    for name, item_idx in commit_order:
        _apply(model, ("txn", _writes_of(items_of[name][item_idx])))
    return model


def run_scheduler_to_crash_point(scheme, workloads, budget, *, config=None,
                                 policy=None, seed=0, checker_factory=None,
                                 pick_strategy_factory=None):
    """Crash an N-client scheduled run after ``budget`` armed memory
    events, recover, and validate the serializable committed prefix.

    ``workloads`` is one entry per client: an item list (items as in
    ``run_to_crash_point``: bare ``(op, key, value)`` tuples or
    ``("txn", [ops])``, plus ``("search", key, None)`` reads), or
    ``{"items": [...], "isolation": mode}`` — see ``_client_spec``.
    The recovered database must equal the committed transactions
    replayed in the scheduler's commit order, optionally plus the
    whole item that was in flight on the one client executing at the
    crash — any other state (a torn commit, a half-rolled-back abort,
    another session's uncommitted pages surfacing) is a violation.

    ``checker_factory`` (optional) attaches a trace checker to the run
    (advanced at every scheduler step, sealed at the crash — recovery's
    redo stores are legitimately out of scope).

    ``pick_strategy_factory`` (optional) builds a fresh scheduler
    ``pick_strategy`` per run, so the schedule-space explorer can crash
    a *specific* explored interleaving (the schedule × crash-point
    product mode).  The strategy's ``sched_pick`` events live in the
    obs trace, not the crashable memory, so arming budgets are
    unchanged by it.
    """
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    engine, pm = _build_engine(config, scheme)
    checker = checker_factory(engine) if checker_factory is not None else None
    on_step = None if checker is None else (lambda _client: checker.advance())
    # No error cleanup: a CrashPoint is a simulated power failure, and
    # the recovered state must be exactly what the crash left behind —
    # rolling the running transaction back would write *after* the
    # power was cut.
    scheduler = Scheduler(
        engine, cleanup_on_error=False, on_step=on_step,
        pick_strategy=(
            pick_strategy_factory() if pick_strategy_factory is not None
            else None
        ),
    )
    for workload in workloads:
        items, isolation = _client_spec(workload)
        scheduler.add_client(items, isolation=isolation)
    crashed = False
    pm.budget = budget
    pm.events = 0
    pm.armed = True
    try:
        scheduler.run()
    except CrashPoint:
        crashed = True
    finally:
        pm.armed = False
        if checker is not None:
            checker.close()

    committed = _scheduled_model(scheduler.clients, scheduler.commit_order)

    if not crashed:
        recovered = {k: v for k, v in engine.scan()}
        result = CrashTestResult(False, committed, (), recovered)
        # Per-session invariants: every client drained its workload,
        # and every commit it counted is in the global commit order.
        order_counts = {}
        for name, _ in scheduler.commit_order:
            order_counts[name] = order_counts.get(name, 0) + 1
        for client in scheduler.clients:
            if client.commits != len(client.items):
                result.violations.append(
                    "client %r committed %d of %d items"
                    % (client.name, client.commits, len(client.items))
                )
            if order_counts.get(client.name, 0) != client.commits:
                result.violations.append(
                    "client %r commit count disagrees with commit order"
                    % client.name
                )
        _validate(engine, result, strict_inflight=False)
        return result

    # Only the client that was executing can have an in-flight commit;
    # every other open transaction was parked mid-operation and its
    # effects must vanish with the volatile state.
    inflight = ()
    running = scheduler.running_client
    if running is not None and not running.finished:
        writes = _writes_of(running.items[running.item_idx])
        if writes:
            inflight = ("txn", writes)

    # Group commit: the serializable committed prefix may legally stop
    # at the open epoch's boundary instead of the full commit order.
    items_of = {client.name: client.items for client in scheduler.clients}
    ordered = [
        ("txn", _writes_of(items_of[name][item_idx]))
        for name, item_idx in scheduler.commit_order
    ]
    prefix_candidates = _group_candidates(engine, ordered, inflight)

    pm.crash(policy or RandomPersist(rng=random.Random(seed)))
    try:
        engine = engine_class(scheme).attach(config, pm)
        recovered = {k: v for k, v in engine.scan()}
    except Exception as err:  # corruption can crash recovery itself
        result = CrashTestResult(True, committed, inflight, {})
        result.violations.append(
            "recovery crashed: %s: %s" % (type(err).__name__, err)
        )
        return result
    result = CrashTestResult(True, committed, inflight, recovered)
    _validate(engine, result, strict_inflight=True,
              prefix_candidates=prefix_candidates)
    return result


def scheduler_crash_points_in(scheme, workloads, *, config=None,
                              pick_strategy_factory=None):
    """Armed memory events in a full scheduled run (the sweep range)."""
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    engine, pm = _build_engine(config, scheme)
    scheduler = Scheduler(
        engine, cleanup_on_error=False,
        pick_strategy=(
            pick_strategy_factory() if pick_strategy_factory is not None
            else None
        ),
    )
    for workload in workloads:
        items, isolation = _client_spec(workload)
        scheduler.add_client(items, isolation=isolation)
    pm.budget = None
    pm.events = 0
    pm.armed = True
    scheduler.run()
    pm.armed = False
    return pm.events


def run_scheduler_crash_sweep(scheme, workloads, *, config=None, stride=1,
                              seeds=(0, 1), policies=None, max_points=None,
                              checker_factory=None,
                              pick_strategy_factory=None):
    """Crash the scheduled multi-client run at every ``stride``-th
    memory event; returns the failing ``CrashTestResult`` list (empty =
    the committed prefix survived every interleaved crash point)."""
    total = scheduler_crash_points_in(
        scheme, workloads, config=config,
        pick_strategy_factory=pick_strategy_factory,
    )
    budgets = list(range(1, total + 1, stride))
    if max_points is not None and len(budgets) > max_points:
        step = max(1, len(budgets) // max_points)
        budgets = budgets[::step]
    failures = []
    for budget in budgets:
        if policies is not None:
            runs = [(None, policy) for policy in policies]
        else:
            runs = [(seed, None) for seed in seeds]
        for seed, policy in runs:
            result = run_scheduler_to_crash_point(
                scheme, workloads, budget,
                config=config, policy=policy, seed=seed or budget,
                checker_factory=checker_factory,
                pick_strategy_factory=pick_strategy_factory,
            )
            if not result.ok:
                failures.append((budget, result))
    return failures


# ----------------------------------------------------------------------
# Crash injection through the sharded router (cross-shard 2PC)
# ----------------------------------------------------------------------


def _build_sharded(config, scheme, nshards):
    from repro.storage.sharding import ShardRouter, total_arena_bytes

    pm = CrashablePM(
        total_arena_bytes(config, nshards),
        latency=config.latency,
        cost=config.cost,
        atomic_granularity=config.atomic_granularity,
        cache_lines=config.cache_lines,
    )
    return ShardRouter.create(config, nshards, scheme=scheme, pm=pm), pm


def run_sharded_to_crash_point(scheme, workloads, budget, *, shards=2,
                               config=None, policy=None, seed=0,
                               checker_factory=None):
    """Crash an N-client run over a sharded router after ``budget``
    armed memory events, recover (resolving in-doubt 2PC participants
    from the prepare/decision records), and validate.

    The validation is the same exact-state comparison as the unsharded
    scheduler harness — which is precisely what makes it a 2PC
    conformance check: a transaction whose commit marks landed on some
    shards but not others recovers to a state that is neither the
    committed prefix nor prefix-plus-whole-in-flight-item, and fails
    as an atomicity blend.
    """
    from repro.core.scheduler import Scheduler
    from repro.storage.sharding import ShardRouter

    config = config or SystemConfig(**_SMALL_CONFIG)
    router, pm = _build_sharded(config, scheme, shards)
    checker = checker_factory(router) if checker_factory is not None else None
    scheduler = Scheduler(
        router, cleanup_on_error=False,
        on_step=None if checker is None else lambda _client: checker.advance(),
    )
    for workload in workloads:
        items, isolation = _client_spec(workload)
        scheduler.add_client(items, isolation=isolation)
    crashed = False
    pm.budget = budget
    pm.events = 0
    pm.armed = True
    try:
        scheduler.run()
    except CrashPoint:
        crashed = True
    finally:
        pm.armed = False
        if checker is not None:
            checker.close()  # seal at the crash; recovery is unchecked

    committed = _scheduled_model(scheduler.clients, scheduler.commit_order)

    if not crashed:
        recovered = {k: v for k, v in router.scan()}
        result = CrashTestResult(False, committed, (), recovered)
        _validate(router, result, strict_inflight=False)
        return result

    inflight = ()
    running = scheduler.running_client
    if running is not None and not running.finished:
        writes = _writes_of(running.items[running.item_idx])
        if writes:
            inflight = ("txn", writes)

    pm.crash(policy or RandomPersist(rng=random.Random(seed)))
    try:
        router = ShardRouter.attach(config, shards, pm, scheme=scheme)
        recovered = {k: v for k, v in router.scan()}
    except Exception as err:  # corruption can crash recovery itself
        result = CrashTestResult(True, committed, inflight, {})
        result.violations.append(
            "recovery crashed: %s: %s" % (type(err).__name__, err)
        )
        return result
    result = CrashTestResult(True, committed, inflight, recovered)
    # All-or-nothing across shards: after attach, no shard may carry a
    # leftover prepare record and the coordinator must be clear.
    for shard in router.shards:
        if shard.twopc.prepared() is not None:
            result.violations.append(
                "2PC: prepare record survived recovery on a shard"
            )
    if router.coordinator.decided_commit() is not None:
        result.violations.append("2PC: decision record survived recovery")
    _validate(router, result, strict_inflight=True)
    return result


def sharded_crash_points_in(scheme, workloads, *, shards=2, config=None):
    """Armed memory events in a full sharded run (the sweep range)."""
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    router, pm = _build_sharded(config, scheme, shards)
    scheduler = Scheduler(router, cleanup_on_error=False)
    for workload in workloads:
        items, isolation = _client_spec(workload)
        scheduler.add_client(items, isolation=isolation)
    pm.budget = None
    pm.events = 0
    pm.armed = True
    scheduler.run()
    pm.armed = False
    return pm.events


def run_sharded_crash_sweep(scheme, workloads, *, shards=2, config=None,
                            stride=1, seeds=(0, 1), policies=None,
                            max_points=None, checker_factory=None):
    """Crash the sharded multi-client run at every ``stride``-th memory
    event — which enumerates every instant between redo-frame writes,
    prepare records, the coordinator decision, and the per-shard commit
    marks — and validate all-shards-or-none recovery at each.  Returns
    the failing ``CrashTestResult`` list (empty = conformant)."""
    total = sharded_crash_points_in(
        scheme, workloads, shards=shards, config=config,
    )
    budgets = list(range(1, total + 1, stride))
    if max_points is not None and len(budgets) > max_points:
        step = max(1, len(budgets) // max_points)
        budgets = budgets[::step]
    failures = []
    for budget in budgets:
        if policies is not None:
            runs = [(None, policy) for policy in policies]
        else:
            runs = [(seed, None) for seed in seeds]
        for seed, policy in runs:
            result = run_sharded_to_crash_point(
                scheme, workloads, budget, shards=shards,
                config=config, policy=policy, seed=seed or budget,
                checker_factory=checker_factory,
            )
            if not result.ok:
                failures.append((budget, result))
    return failures


def run_crash_sweep(scheme, workload, *, config=None, stride=1, seeds=(0, 1),
                    policies=None, max_points=None, checker_factory=None):
    """Crash the workload at every ``stride``-th memory event under
    each policy/seed; returns the list of failing ``CrashTestResult``.
    ``checker_factory`` attaches a fresh trace checker to every
    budgeted run (see ``run_to_crash_point``).

    An empty return value is the theorem the paper argues in Section
    4.4: no crash point and no writeback ordering breaks the scheme.
    """
    total = crash_points_in(scheme, workload, config=config)
    budgets = list(range(1, total + 1, stride))
    if max_points is not None and len(budgets) > max_points:
        step = max(1, len(budgets) // max_points)
        budgets = budgets[::step]
    failures = []
    for budget in budgets:
        if policies is not None:
            runs = [(None, policy) for policy in policies]
        else:
            runs = [(seed, None) for seed in seeds]
        for seed, policy in runs:
            result = run_to_crash_point(
                scheme, workload, budget,
                config=config, policy=policy, seed=seed or budget,
                checker_factory=checker_factory,
            )
            if not result.ok:
                failures.append((budget, result))
    return failures
