"""Crash-consistency test harness.

Runs workloads under systematic power-failure injection: the simulated
machine is crashed after the N-th memory event for every (sampled) N,
recovery is run, and the ACID invariants of paper Section 4.4 are
checked — every committed transaction durable, the in-flight
transaction all-or-nothing, and the B-tree structurally intact.
"""

from repro.testing.crashsim import (
    AtomicityViolation,
    CrashPoint,
    CrashablePM,
    CrashTestResult,
    crash_points_in,
    run_crash_sweep,
    run_sharded_crash_sweep,
    run_sharded_to_crash_point,
    run_to_crash_point,
    sharded_crash_points_in,
)

__all__ = [
    "AtomicityViolation",
    "CrashPoint",
    "CrashTestResult",
    "CrashablePM",
    "crash_points_in",
    "run_crash_sweep",
    "run_sharded_crash_sweep",
    "run_sharded_to_crash_point",
    "run_to_crash_point",
    "sharded_crash_points_in",
]
