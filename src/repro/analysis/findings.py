"""Findings, suppressions, and the committed baseline.

A :class:`Finding` is one rule violation with provenance: static
findings carry ``file:line``, dynamic findings carry the trace sequence
number (``trace_seq``) of the offending event.  Both render as one
stable line of text — the unit of comparison for the baseline file and
for the fixture tests that pin exact analyzer output.

Suppressions are source comments::

    pm.write_u32(addr, value)  # repro: allow[PM001] atomic pointer swap

``allow[RULE]`` on the flagged line (or the line directly above it)
suppresses that rule there; the justification text after the tag is
mandatory by convention and checked by the lint pass itself (an allow
with no justification is a finding).

The baseline file is a JSON list of finding keys.  ``new_findings``
returns only findings not in the baseline — CI fails on any; this
repository commits an *empty* baseline, so every finding is new.
"""

import json
import re

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z]+\d+)\]\s*(.*)")


class Finding:
    """One rule violation with provenance."""

    __slots__ = ("rule", "message", "file", "line", "trace_seq")

    def __init__(self, rule, message, *, file=None, line=None,
                 trace_seq=None):
        self.rule = rule
        self.message = message
        self.file = file
        self.line = line
        self.trace_seq = trace_seq

    @property
    def provenance(self):
        if self.file is not None:
            return "%s:%d" % (self.file, self.line or 0)
        if self.trace_seq is not None:
            return "trace@%d" % self.trace_seq
        return "<unknown>"

    @property
    def key(self):
        """Stable identity used for baseline matching (no line numbers
        for static findings, so unrelated edits don't churn the
        baseline: rule + file + message)."""
        if self.file is not None:
            return "%s %s %s" % (self.rule, self.file, self.message)
        return "%s %s" % (self.rule, self.message)

    def render(self):
        return "%s: %s: %s" % (self.provenance, self.rule, self.message)

    def as_dict(self):
        entry = {"rule": self.rule, "message": self.message}
        if self.file is not None:
            entry["file"] = self.file
            entry["line"] = self.line
        if self.trace_seq is not None:
            entry["trace_seq"] = self.trace_seq
        return entry

    def __repr__(self):
        return "Finding(%s)" % self.render()

    def __eq__(self, other):
        return isinstance(other, Finding) and self.render() == other.render()

    def __hash__(self):
        return hash(self.render())


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------

def parse_allows(source):
    """``{line_number: (rule, justification)}`` for every ``# repro:
    allow[RULE]`` comment in ``source`` (1-based line numbers)."""
    allows = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match:
            allows[lineno] = (match.group(1), match.group(2).strip())
    return allows


def is_suppressed(allows, rule, line):
    """True when ``rule`` is allowed at ``line`` — by a tag on the
    line itself or on the line directly above it."""
    for candidate in (line, line - 1):
        entry = allows.get(candidate)
        if entry is not None and entry[0] == rule:
            return True
    return False


def unjustified_allows(allows, file):
    """Findings for allow tags with no justification text: a
    suppression must say *why* (one line) or it is itself flagged."""
    findings = []
    for lineno, (rule, justification) in sorted(allows.items()):
        if not justification:
            findings.append(Finding(
                "PM000",
                "allow[%s] without a one-line justification" % rule,
                file=file, line=lineno,
            ))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def load_baseline(path):
    """The set of baselined finding keys (empty for a missing file)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return set()
    return set(data.get("findings", []))


def save_baseline(path, findings):
    """Write ``findings`` as the new baseline (sorted, stable)."""
    with open(path, "w") as fh:
        json.dump(
            {"findings": sorted({f.key for f in findings})},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")


def new_findings(findings, baseline):
    """Findings whose key is not in the ``baseline`` key set."""
    return [f for f in findings if f.key not in baseline]
