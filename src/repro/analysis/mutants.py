"""Seeded-bug mutants: known-broken engines the explorer must catch.

Static analyzers prove themselves on known-bad fixtures
(:mod:`repro.analysis.selftest`); a model checker has to prove itself
the same way, on *seeded concurrency bugs* — deliberate, minimal
breakages of the engine's synchronization or commit protocol that the
schedule-space explorer (:mod:`repro.analysis.explore`) is required to
detect within its default budget.  Each mutant is a context manager
that monkeypatches exactly one method for the duration of an
exploration and restores it on exit, so the mutated code path is never
visible outside the ``with`` block.

Three mutants, matching the halves of the detector suite:

``skip_page_lock``
    :meth:`LockingContext.update_record` forgets ``_xlock_page`` — an
    update writes its leaf under only the descent's S latch.  Two
    sessions updating keys on one leaf interleave their writes with no
    consistent protecting X lock: the TC110 lockset race detector must
    flag the page.

``mark_before_fence``
    :meth:`SlotHeaderLog.flush_frames` becomes a no-op, so the commit
    mark is published while the staged log frames are still sitting
    dirty in the cache — the mark retires *before* the lines it
    depends on, the paper's cardinal ordering sin (Section 3.2: the
    mark *is* the atomicity of the commit, and it depends on every
    staged line being flushed and fenced first).  The TC101
    flush-before-fence-before-mark invariant must flag the dirty
    lines at the mark.  (Skipping only the *fence* would be masked in
    the event-level model: the commit word's own ``persist`` issues a
    fence right before the mark event, retiring the inflight lines —
    on real hardware that still leaves the mark's line racing the
    frame lines, but the trace model is line-state-based, so the seed
    drops the flush instead.)

``skip_cache_invalidate``
    :meth:`TieredPageCache.invalidate` ignores install-reason calls,
    so committed installs stop evicting stale frames from the DRAM
    page cache (evictions and page frees stay intact).  A snapshot
    reader that cached a leaf before a concurrent writer's commit
    keeps serving the pre-commit bytes from DRAM: the TC111 cache
    coherence invariant must flag the stale hit.
"""

from contextlib import contextmanager

from repro.core import SystemConfig
from repro.core.locking import LockingContext
from repro.obs import trace as ev
from repro.storage.cache import TieredPageCache
from repro.wal.slot_header_log import SlotHeaderLog


@contextmanager
def skip_page_lock():
    """Drop the X page lock from ``update_record`` (race seed)."""
    original = LockingContext.update_record

    def update_record(self, page, slot, payload):
        offset = self._inner.update_record(page, slot, payload)
        self.__dict__["op_mutated"] = True
        return offset

    LockingContext.update_record = update_record
    try:
        yield
    finally:
        LockingContext.update_record = original


@contextmanager
def mark_before_fence():
    """Commit marks no longer wait for the staged lines' durability
    (ordering seed)."""
    original = SlotHeaderLog.flush_frames

    def flush_frames(self):
        pass

    SlotHeaderLog.flush_frames = flush_frames
    try:
        yield
    finally:
        SlotHeaderLog.flush_frames = original


@contextmanager
def skip_cache_invalidate():
    """Committed installs no longer invalidate the DRAM page cache
    (stale-read seed); eviction and free invalidations stay intact."""
    original = TieredPageCache.invalidate

    def invalidate(self, page_no, reason=ev.INVAL_INSTALL):
        if reason != ev.INVAL_INSTALL:
            original(self, page_no, reason)

    TieredPageCache.invalidate = invalidate
    try:
        yield
    finally:
        TieredPageCache.invalidate = original


#: name -> (mutant context manager, the rule that must fire, workloads
#: builder) — the exploration self-test registry.
def _race_workloads():
    payload = bytes(range(48))
    return {
        "preload": [(b"hot%d" % i, payload) for i in range(4)],
        "workloads": [
            [("txn", [("update", b"hot0", payload),
                      ("update", b"hot1", payload)])],
            [("txn", [("update", b"hot0", payload),
                      ("update", b"hot2", payload)])],
        ],
    }


def _ordering_workloads():
    # Each transaction updates keys on three different leaves, so its
    # commit stages three slot-header frames — past the cache line the
    # commit word lives in, where the skipped flush is observable (a
    # single-frame commit's line is flushed as a side effect of the
    # commit word's own persist).
    payload = bytes(40)
    return {
        "preload": [(b"k%05d" % i, payload) for i in range(24)],
        "workloads": [
            [("txn", [("update", b"k00000", payload),
                      ("update", b"k00011", payload),
                      ("update", b"k00023", payload)])],
            [("txn", [("update", b"k00001", payload),
                      ("update", b"k00012", payload),
                      ("update", b"k00022", payload)])],
        ],
    }


def _stale_read_workloads():
    # A snapshot reader shares one hot leaf with a locked writer under
    # a cache-enabled config.  Each read item is its own snapshot
    # transaction, so under the round-robin default schedule some read
    # lands after the writer's commit: with install invalidations
    # seeded out, that read serves the pre-commit frame from DRAM and
    # TC111 must flag the hit.
    payload = bytes(range(48))
    fresh = bytes(range(47, -1, -1))
    read = ("search", b"hot0", None)
    return {
        "preload": [(b"hot%d" % i, payload) for i in range(4)],
        "workloads": [
            {"items": [read, read, read, read], "read_only": True},
            [("txn", [("update", b"hot0", fresh)])],
        ],
        "config": SystemConfig(
            dram_cache_pages=8, npages=128, page_size=512,
            log_bytes=16384, heap_bytes=1 << 20, dram_bytes=64 * 512,
        ),
    }


MUTANTS = {
    "TC110-skip-page-lock": (skip_page_lock, "TC110", _race_workloads),
    "TC101-mark-before-fence": (
        mark_before_fence, "TC101", _ordering_workloads,
    ),
    "TC111-skip-cache-invalidate": (
        skip_cache_invalidate, "TC111", _stale_read_workloads,
    ),
}

__all__ = [
    "skip_page_lock", "mark_before_fence", "skip_cache_invalidate",
    "MUTANTS",
]
