"""Trace-checked corpora: curated runs with a :class:`TraceChecker`
attached.

Four harnesses, together covering every execution mode the dynamic
invariants apply to:

* :func:`run_single_client` — FAST / FAST⁺ single-session workloads
  with full checking (flush coverage, mark atomicity, live-range
  protection refreshed from the committed state before every
  transaction);
* :func:`run_group_commit` — the single-client workload with
  epoch-pipelined group commit on: each group mark is checked exactly
  like a transaction mark (every member's log lines flushed + fenced
  before the one shared fence, the mark a single ≤8-byte store);
* :func:`run_scheduled` — the multi-client contention bench under the
  deterministic scheduler, checking ordering plus strict 2PL off the
  lock/txn event stream (live ranges are per-transaction snapshots,
  which interleaving invalidates, so that invariant is out of scope
  here); ``run_all`` drives it both grouped and ungrouped;
* :func:`run_mvcc_scheduled` — writers plus read-only MVCC sessions,
  adding the snapshot invariant (TC107): a read-only transaction must
  acquire zero locks and only resolve versions with commit timestamp
  ≤ its pinned snapshot timestamp; ``run_all`` drives it (and the OCC
  variant) a second time with the tiered DRAM page cache enabled and
  the cache coherence invariant (TC111) armed — no cached read may
  serve bytes older than the latest committed install for its page;
* :func:`run_occ_single_client` / :func:`run_occ_scheduled` /
  :func:`run_occ_crash_swept` — the optimistic writer path (TC109): a
  lock-free read phase, commit-time validation against the version
  publish history, installs under short X locks only after a clean
  validation — single-session, racing 2PL writers and MVCC readers
  under the scheduler (grouped and ungrouped), and crash-swept;
* :func:`run_crash_swept` — the crash-injection sweep with a checker
  riding along on every budgeted run: ordering violations surface even
  at executions that happen to recover correctly;
* :func:`run_sharded_scheduled` — clients over a sharded router with
  single- and cross-shard transactions, adding the 2PC invariant
  (TC108: no shard commit mark before its prepare record and the
  coordinator decision) plus per-shard flush/atomic checkers scoped to
  each shard's own log and commit word;
* :func:`run_sharded_crash_swept` — the cross-shard crash sweep with a
  TC108-armed checker on every budgeted run.

``python -m repro.analysis --trace-check`` runs all of them and merges
the findings.

One corpus lives outside ``run_all`` because it multiplies executions
rather than adding one: :func:`run_explored` model-checks *every
feasible interleaving* (DPOR over the scheduler's pick hook — see
:mod:`repro.analysis.explore`) of a conflict-rich locked workload and
a mixed locked/OCC/read-only workload, with a bounded schedule ×
crash-point product.  ``python -m repro.analysis --explore`` drives it.
"""

from repro.analysis.tracecheck import TraceChecker
from repro.core import SystemConfig, open_engine

#: Arena geometry shared by all corpora: small pages so the workloads
#: exercise splits, reclaims, and checkpoints within a few dozen ops.
_SMALL_CONFIG = dict(
    npages=128, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)

#: Schemes with a commit mark the ordering invariants apply to.
SCHEMES = ("fast", "fastplus")


def _workload(items):
    """A deterministic mixed workload: inserts (driving page splits at
    the 512-byte page size), same-key updates, multi-op transactions,
    and deletes — every store path of the commit schemes."""
    payload = bytes(range(48))
    ops = []
    for i in range(items):
        ops.append(("insert", b"ck%04d" % i, payload))
    for i in range(0, items, 3):
        ops.append(("update", b"ck%04d" % i, payload[::-1]))
    for i in range(0, items, 4):
        ops.append(("txn", [
            ("insert", b"cx%04d" % i, payload),
            ("delete", b"ck%04d" % ((i + 1) % items), None),
        ]))
    for i in range(0, items, 5):
        ops.append(("delete", b"cx%04d" % ((i // 5) * 5), None))
    return ops


def _execute(txn, item):
    ops = item[1] if item[0] == "txn" else [item]
    for kind, key, value in ops:
        if kind == "insert":
            txn.insert(key, value, replace=True)
        elif kind == "update":
            txn.update(key, value)
        else:
            txn.delete(key)


def _account(engine, checker):
    stats = checker.stats
    engine.obs.inc("analysis.trace.txns", stats["txns"])
    engine.obs.inc("analysis.trace.events", stats["events"])
    engine.obs.inc("analysis.trace.findings", stats["findings"])
    return stats


def run_single_client(scheme, *, items=30, config=None):
    """Full-invariant checked run of one session; returns
    ``(findings, stats)``."""
    config = config or SystemConfig(**_SMALL_CONFIG)
    engine = open_engine(config, scheme=scheme)
    checker = TraceChecker.for_engine(engine)
    for item in _workload(items):
        checker.begin_txn(TraceChecker.live_ranges_of(engine))
        txn = engine.transaction()
        _execute(txn, item)
        txn.commit()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_group_commit(scheme, *, items=30, config=None):
    """Full-invariant checked run with epoch-pipelined group commit on:
    the single-client workload committing through shared fences and
    ≤8-byte group marks.  TC101/TC102 validate every group mark — one
    mark, every member's log lines flushed and fenced before it — and
    the end-of-run drain closes the last epoch under the checker."""
    config = config or SystemConfig(
        group_commit=True, group_commit_size=4, **_SMALL_CONFIG
    )
    engine = open_engine(config, scheme=scheme)
    checker = TraceChecker.for_engine(engine)
    for item in _workload(items):
        checker.begin_txn(TraceChecker.live_ranges_of(engine))
        txn = engine.transaction()
        _execute(txn, item)
        txn.commit()
    engine.drain_group_commit()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_scheduled(scheme, *, clients=4, items=12, config=None):
    """Ordering + strict-2PL checked multi-client scheduler run."""
    from repro.bench.multiclient import client_workload
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    engine = open_engine(config, scheme=scheme)
    payload = bytes(48)
    for i in range(0, 200, 4):
        engine.insert(b"mk%05d" % i, payload, replace=True)
    checker = TraceChecker.for_engine(
        engine, invariants=("flush", "atomic", "twopl"),
    )
    # Drain the ring after every step: the checker never lets the ring
    # wrap, and the wait-for graph is validated at every grant.
    scheduler = Scheduler(engine, on_step=lambda _client: checker.advance())
    for index in range(clients):
        scheduler.add_client(client_workload(index, items=items))
    scheduler.run()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_mvcc_scheduled(scheme, *, writers=2, readers=2, items=12,
                       config=None):
    """Writers under 2PL plus lock-free MVCC reader sessions, with the
    snapshot invariant armed: TC107 fires if any read-only session
    acquires a lock or resolves a version younger than its snapshot."""
    from repro.bench.multiclient import client_workload
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    engine = open_engine(config, scheme=scheme)
    payload = bytes(48)
    for i in range(0, 200, 4):
        engine.insert(b"mk%05d" % i, payload, replace=True)
    checker = TraceChecker.for_engine(
        engine, invariants=("flush", "atomic", "twopl", "snapshot", "cache"),
    )
    scheduler = Scheduler(engine, on_step=lambda _client: checker.advance())
    for index in range(writers):
        scheduler.add_client(client_workload(index, items=items))
    for index in range(writers, writers + readers):
        scheduler.add_client(
            client_workload(index, items=items, read_ratio=1.0),
            read_only=True,
        )
    scheduler.run()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_occ_single_client(scheme, *, items=30, config=None):
    """Full-invariant checked run of one OCC session: lock-free read
    phase, commit-time validation, write-set install under short X
    locks — the live-range and mark-ordering rules apply to the
    install's commit exactly as to a 2PL transaction's, and the occ
    invariant (TC109) audits the validation exchange itself."""
    config = config or SystemConfig(**_SMALL_CONFIG)
    engine = open_engine(config, scheme=scheme)
    checker = TraceChecker.for_engine(engine)
    with engine.session("occ", isolation="occ") as session:
        for item in _workload(items):
            checker.begin_txn(TraceChecker.live_ranges_of(engine))
            txn = session.transaction()
            _execute(txn, item)
            txn.commit()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_occ_scheduled(scheme, *, occ=2, locked=1, readers=1, items=10,
                      config=None):
    """Mixed-isolation scheduler run with the occ invariant armed: OCC
    writers racing 2PL writers and MVCC readers over one hot keyspace,
    so validation aborts, install conflicts, retries, and 2PL
    fallbacks all happen under the checker (TC104-TC107 plus TC109 off
    one interleaved event stream)."""
    from repro.bench.multiclient import client_workload
    from repro.core.scheduler import Scheduler

    config = config or SystemConfig(**_SMALL_CONFIG)
    engine = open_engine(config, scheme=scheme)
    payload = bytes(48)
    for i in range(0, 200, 4):
        engine.insert(b"mk%05d" % i, payload, replace=True)
    checker = TraceChecker.for_engine(
        engine,
        invariants=("flush", "atomic", "twopl", "snapshot", "occ", "cache"),
    )
    scheduler = Scheduler(engine, on_step=lambda _client: checker.advance())
    for index in range(occ):
        scheduler.add_client(
            client_workload(index, items=items), isolation="occ",
        )
    for index in range(occ, occ + locked):
        scheduler.add_client(client_workload(index, items=items))
    for index in range(occ + locked, occ + locked + readers):
        scheduler.add_client(
            client_workload(index, items=items, read_ratio=1.0),
            isolation="read_only",
        )
    scheduler.run()
    findings = checker.finish()
    return findings, _account(engine, checker)


def run_occ_crash_swept(scheme, *, items=4, stride=11, max_points=30):
    """Scheduled crash sweep with an OCC client racing a 2PL client and
    an occ-armed checker sealed at every crash point (same contract as
    :func:`run_crash_swept`: recovery itself is unchecked, and sweep
    failures surface as TC000 findings)."""
    from repro.analysis.findings import Finding
    from repro.bench.multiclient import client_workload
    from repro.testing.crashsim import run_scheduler_crash_sweep

    checkers = []

    def factory(engine):
        checker = TraceChecker.for_engine(
            engine,
            invariants=("flush", "atomic", "twopl", "snapshot", "occ"),
        )
        checkers.append(checker)
        return checker

    workloads = [
        {"items": client_workload(0, items=items), "isolation": "occ"},
        client_workload(1, items=items),
    ]
    failures = run_scheduler_crash_sweep(
        scheme, workloads, stride=stride, seeds=(0,),
        max_points=max_points, checker_factory=factory,
    )
    findings = []
    stats = {"txns": 0, "events": 0, "findings": 0}
    for checker in checkers:
        findings.extend(checker.findings)
        for key in stats:
            stats[key] += checker.stats[key]
    for budget, result in failures:
        findings.append(Finding(
            "TC000",
            "occ crash sweep violation at budget %d: %s"
            % (budget, "; ".join(result.violations)),
        ))
    return findings, stats


def run_crash_swept(scheme, *, items=6, stride=7, max_points=40):
    """The crash-injection sweep with a checker on every budgeted run.

    Recovery is *not* checked (its redo stores legitimately overwrite
    live bytes); each checker observes the run up to its crash point.
    Correctness of the recovered state stays the crash sweep's own job
    — a sweep failure here is surfaced as a TC000 finding so the CLI
    cannot report a clean trace over a broken execution.
    """
    from repro.analysis.findings import Finding
    from repro.testing.crashsim import run_crash_sweep

    checkers = []

    def factory(engine):
        checker = TraceChecker.for_engine(engine)
        checkers.append(checker)
        return checker

    failures = run_crash_sweep(
        scheme, _workload(items), stride=stride, seeds=(0,),
        max_points=max_points, checker_factory=factory,
    )
    findings = []
    stats = {"txns": 0, "events": 0, "findings": 0}
    for checker in checkers:
        findings.extend(checker.finish())
        for key in stats:
            stats[key] += checker.stats[key]
    for budget, result in failures:
        findings.append(Finding(
            "TC000",
            "crash sweep violation at budget %d: %s"
            % (budget, "; ".join(result.violations)),
        ))
    return findings, stats


def run_sharded_scheduled(scheme, *, shards=2, clients=4, items=10,
                          cross_ratio=0.25, config=None):
    """Clients over a sharded router, mixing single-shard and 2PC
    cross-shard transactions, with TC108 armed.

    One global checker reads the merged trace for the 2PL + 2PC
    invariants; additionally each shard gets a checker scoped to *its*
    log range and commit word for the flush/atomic ordering rules —
    other shards' stores fall outside its geometry and are ignored, so
    per-shard commit discipline is checked shard by shard off one
    interleaved event stream.
    """
    from repro.bench.multiclient import sharded_client_workload
    from repro.core.scheduler import Scheduler
    from repro.storage.sharding import ShardRouter

    config = config or SystemConfig(**_SMALL_CONFIG)
    router = ShardRouter.create(config, shards, scheme=scheme)
    checkers = [
        TraceChecker(router.trace, invariants=("twopl", "twopc", "occ"))
    ]
    for shard in router.shards:
        checkers.append(TraceChecker.for_engine(
            shard, invariants=("flush", "atomic"), shared_trace=True,
        ))

    def drain(_client):
        for checker in checkers:
            checker.advance()

    scheduler = Scheduler(router, on_step=drain)
    for index in range(clients):
        scheduler.add_client(sharded_client_workload(
            index, items=items, cross_ratio=cross_ratio,
            key_space=20, read_ratio=0.2,
        ))
    # One optimistic client over client 0's exact key slice: per-shard
    # validation + install inside the commit path, single-shard and
    # cross-shard (2PC) alike, with contention guaranteed.
    scheduler.add_client(
        sharded_client_workload(
            0, items=items, cross_ratio=cross_ratio,
            key_space=20, read_ratio=0.2,
        ),
        isolation="occ",
    )
    scheduler.run()
    findings = []
    for checker in checkers:
        findings.extend(checker.finish())
    stats = {
        "txns": 0,
        "events": checkers[0].stats["events"],
        "findings": len(findings),
    }
    router.obs.inc("analysis.trace.events", stats["events"])
    router.obs.inc("analysis.trace.findings", stats["findings"])
    return findings, stats


def run_sharded_crash_swept(scheme, *, shards=2, stride=9, max_points=30):
    """The cross-shard crash sweep with a TC108-armed checker on every
    budgeted run (same shape as :func:`run_crash_swept`: each checker
    observes its run up to the crash, recovery itself is unchecked, and
    sweep failures surface as TC000 so a broken execution can never
    report a clean trace)."""
    from repro.analysis.findings import Finding
    from repro.bench.multiclient import sharded_client_workload
    from repro.testing.crashsim import run_sharded_crash_sweep

    checkers = []

    def factory(router):
        checker = TraceChecker(
            router.obs.trace, invariants=("twopl", "twopc"),
        )
        checkers.append(checker)
        return checker

    workloads = [
        sharded_client_workload(
            index, items=3, cross_ratio=0.5, key_space=8, read_ratio=0.2,
        )
        for index in range(2)
    ]
    failures = run_sharded_crash_sweep(
        scheme, workloads, shards=shards, stride=stride, seeds=(0,),
        max_points=max_points, checker_factory=factory,
    )
    findings = []
    stats = {"txns": 0, "events": 0, "findings": 0}
    for checker in checkers:
        findings.extend(checker.finish())
        for key in stats:
            stats[key] += checker.stats[key]
    for budget, result in failures:
        findings.append(Finding(
            "TC000",
            "sharded crash sweep violation at budget %d: %s"
            % (budget, "; ".join(result.violations)),
        ))
    return findings, stats


def mixed_explore_workloads():
    """The exploration corpus's mixed-isolation target: a 2PL writer,
    an OCC writer racing it on a shared hot key, and a lock-free MVCC
    reader — every session mode in one small schedule space."""
    payload = bytes(range(40))
    return [
        [("txn", [("insert", b"w-a", payload),
                  ("insert", b"hot", payload)])],
        {"items": [("txn", [("insert", b"o-a", payload),
                            ("insert", b"hot", payload)])],
         "isolation": "occ"},
        {"items": [("search", b"hot", None), ("search", b"w-a", None)],
         "isolation": "read_only"},
    ]


def run_explored(schemes=("fast",), *, budget=None, clients=2,
                 crash_schedules=2, obs=None):
    """The schedule-space exploration corpus (DPOR model checking; see
    :mod:`repro.analysis.explore`): every feasible interleaving of two
    small workloads — the default conflict-rich locked workload, with
    a bounded schedule × crash-point product at its most distinct
    schedules, and a mixed locked/OCC/read-only workload — runs under
    TC101-TC110 plus the commit-order serializability oracle.

    Returns ``(findings, stats)``; ``stats`` carries one JSON-ready
    per-run summary list plus corpus totals.  With ``obs`` the
    ``explore.*`` counters are filed into that handle too.
    """
    from repro.analysis.explore import (
        DEFAULT_BUDGET, Explorer, default_workloads,
    )

    budget = budget or DEFAULT_BUDGET
    findings = []
    runs = []
    totals = {"schedules": 0, "attempts": 0, "crash_points": 0, "runs": 0}
    targets = (
        ("locked", default_workloads(clients=clients), crash_schedules),
        ("mixed", mixed_explore_workloads(), 0),
    )
    for scheme in schemes:
        for name, workloads, crashes in targets:
            explorer = Explorer(
                scheme, workloads=workloads, budget=budget,
                crash_schedules=crashes,
            )
            result = explorer.run()
            if obs is not None:
                explorer.publish(obs)
            findings.extend(explorer.findings)
            runs.append(dict(result, workload=name))
            totals["schedules"] += result["schedules"]
            totals["attempts"] += result["attempts"]
            totals["crash_points"] += result["crash_points"]
            totals["runs"] += 1
    stats = dict(totals, findings=len(findings), explorations=runs)
    return findings, stats


def run_all(schemes=SCHEMES):
    """Every corpus over every scheme; returns ``(findings, stats)``."""
    findings = []
    totals = {"txns": 0, "events": 0, "findings": 0, "runs": 0}

    def merge(result):
        run_findings, stats = result
        findings.extend(run_findings)
        for key in ("txns", "events"):
            totals[key] += stats[key]
        totals["findings"] += len(run_findings)
        totals["runs"] += 1

    grouped = SystemConfig(
        group_commit=True, group_commit_size=4, **_SMALL_CONFIG
    )
    # Tiered DRAM page cache on: snapshot readers fill and hit frames,
    # so the TC111 coherence invariant sees real cache traffic (locked
    # single-client runs read through contexts and never touch it).
    cached = SystemConfig(dram_cache_pages=16, **_SMALL_CONFIG)
    for scheme in schemes:
        merge(run_single_client(scheme))
        merge(run_group_commit(scheme))
        merge(run_scheduled(scheme))
        merge(run_scheduled(scheme, config=grouped))
        merge(run_mvcc_scheduled(scheme))
        merge(run_mvcc_scheduled(scheme, config=cached))
        merge(run_occ_single_client(scheme))
        merge(run_occ_scheduled(scheme))
        merge(run_occ_scheduled(scheme, config=grouped))
        merge(run_occ_scheduled(scheme, config=cached))
        merge(run_occ_crash_swept(scheme))
        merge(run_crash_swept(scheme))
        merge(run_sharded_scheduled(scheme))
        merge(run_sharded_crash_swept(scheme))
    return findings, totals
