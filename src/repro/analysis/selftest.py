"""Analyzer self-test: every rule must fire on its known-bad input.

A lint or trace checker that silently stops matching is worse than none
— CI would keep passing on green nothing.  ``python -m repro.analysis
--self-test`` runs every static rule against an embedded known-bad
module and every dynamic invariant against an embedded known-bad event
trace, and fails unless each produces exactly its expected rule.  The
richer fixture files (with exact-output assertions) live in
``tests/analysis/fixtures``; these embedded copies keep the CLI
self-contained.
"""

from repro.analysis.explore import explore
from repro.analysis.lint import lint_source
from repro.analysis.mutants import MUTANTS
from repro.analysis.tracecheck import TraceChecker
from repro.core.locking import LOCK_S, LOCK_X, encode_lock
from repro.obs import trace as ev

# ----------------------------------------------------------------------
# Static rules: (module path that scopes the rule, known-bad source)
# ----------------------------------------------------------------------

STATIC_FIXTURES = {
    "PM001": ("core/bad.py", (
        "def f(pm):\n"
        "    pm.write_u64(0, 1)\n"
        "    pm.flush_range(0, 8)\n"
    )),
    "PM002": ("core/bad.py", (
        "def commit(self):\n"
        "    self.pm.write_u64(self.head, 1)  "
        "# repro: allow[PM001] fixture isolates PM002\n"
        "    self.log.commit(7)\n"
    )),
    "PM003": ("core/bad.py", (
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    )),
    "PM004": ("core/bad.py", (
        "def f(obs):\n"
        "    obs.inc('engine.txn.bogus')\n"
    )),
    "PM005": ("core/bad.py", (
        "def f(g):\n"
        "    try:\n"
        "        g()\n"
        "    except LockConflict:\n"
        "        pass\n"
    )),
    "PM006": ("core/bad.py", (
        "def f(session, resource):\n"
        "    session.lock_manager.acquire(session.sid, resource, 'X')\n"
    )),
}

# ----------------------------------------------------------------------
# Dynamic invariants: known-bad event traces
# ----------------------------------------------------------------------

_LOG = (0x10000, 0x14000)
_WORD = 0x10008
_PAGES = (0, 0x10000)
_LIVE = [(0x100, 0x140)]

_RES_A = encode_lock(("page", 1), LOCK_X)
_RES_B = encode_lock(("page", 2), LOCK_X)
_RES_C = encode_lock(("page", 3), LOCK_X)


def _ordering_checker():
    return TraceChecker(
        None, log_range=_LOG, commit_word=_WORD, page_range=_PAGES,
    )


def _tc101():
    # A log frame stored but never flushed when the mark lands.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.STORE, 0x10040, 16),
        (2, 0.0, ev.STORE, _WORD, 8),
        (3, 0.0, ev.CLFLUSH, 0x10000, 0),
        (4, 0.0, ev.FENCE, 0, 0),
        (5, 0.0, ev.COMMIT_MARK, 1, 0),
    ])
    return checker.finish()


def _tc102():
    # The commit mark published by a 16-byte (non-atomic) store.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.STORE, _WORD, 16),
        (2, 0.0, ev.CLFLUSH, 0x10000, 0),
        (3, 0.0, ev.FENCE, 0, 0),
        (4, 0.0, ev.COMMIT_MARK, 1, 0),
    ])
    return checker.finish()


def _tc101_group():
    # Group commit: two members share one epoch, but the second
    # member's frames miss the shared fence (its flush would arrive
    # only after the group mark) — dirty log lines at the mark.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.STORE, 0x10040, 16),   # member 1 frames
        (2, 0.0, ev.STORE, 0x10080, 16),   # member 2 frames
        (3, 0.0, ev.CLFLUSH, 0x10040, 0),  # only member 1 flushed
        (4, 0.0, ev.FENCE, 0, 0),          # the epoch's shared fence
        (5, 0.0, ev.STORE, _WORD, 8),      # group mark word
        (6, 0.0, ev.CLFLUSH, 0x10000, 0),
        (7, 0.0, ev.FENCE, 0, 0),
        (8, 0.0, ev.COMMIT_MARK, 2, 0),    # member 2 still dirty here
    ])
    return checker.finish()


def _tc102_group():
    # Group commit: a 16-byte group mark — the whole point of the
    # shared mark is that it still fits one ≤8-byte atomic store.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.STORE, 0x10040, 16),   # member 1 frames
        (2, 0.0, ev.CLFLUSH, 0x10040, 0),
        (3, 0.0, ev.STORE, 0x10080, 16),   # member 2 frames
        (4, 0.0, ev.CLFLUSH, 0x10080, 0),
        (5, 0.0, ev.FENCE, 0, 0),          # shared fence, both flushed
        (6, 0.0, ev.STORE, _WORD, 16),     # 16-byte mark: not atomic
        (7, 0.0, ev.CLFLUSH, 0x10000, 0),
        (8, 0.0, ev.FENCE, 0, 0),
        (9, 0.0, ev.COMMIT_MARK, 2, 0),
    ])
    return checker.finish()


def _group_good():
    # A well-formed epoch close: every member's frames flushed before
    # the ONE shared fence, then a single ≤8-byte group mark.  Must
    # produce zero findings — the checkers accept group marks.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.STORE, 0x10040, 16),   # member 1 frames
        (2, 0.0, ev.CLFLUSH, 0x10040, 0),
        (3, 0.0, ev.STORE, 0x10080, 16),   # member 2 frames
        (4, 0.0, ev.CLFLUSH, 0x10080, 0),
        (5, 0.0, ev.FENCE, 0, 0),          # one fence for the group
        (6, 0.0, ev.STORE, _WORD, 8),      # one 8-byte group mark
        (7, 0.0, ev.CLFLUSH, 0x10000, 0),
        (8, 0.0, ev.FENCE, 0, 0),
        (9, 0.0, ev.COMMIT_MARK, 2, 0),
    ])
    return checker.finish()


def _tc103():
    # A 32-byte pre-commit store straight onto live bytes.
    checker = _ordering_checker()
    checker.begin_txn(_LIVE)
    checker.feed([(1, 0.0, ev.STORE, 0x100, 32)])
    return checker.finish()


def _tc103_swap():
    # An atomic pointer swap that is never flushed before the window
    # ends — the exemption requires immediate flush + fence.
    checker = _ordering_checker()
    checker.begin_txn(_LIVE)
    checker.feed([(1, 0.0, ev.STORE, 0x100, 8)])
    return checker.finish()


def _tc104():
    # Acquire after release: a second growth phase.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
        (3, 0.0, ev.LOCK_RELEASE, 1, _RES_A),
        (4, 0.0, ev.LOCK_ACQUIRE, 1, _RES_B),
    ])
    return checker.finish()


def _tc105():
    # Commit with a lock still held.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
        (3, 0.0, ev.TXN_COMMIT, 1, 0),
    ])
    return checker.finish()


def _tc106():
    # A wait-for cycle (1 waits on 2, 2 waits on 1) still present when
    # a later acquire is granted — deadlock detection failed to abort.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
        (2, 0.0, ev.LOCK_ACQUIRE, 2, _RES_B),
        (3, 0.0, ev.LOCK_WAIT, 1, _RES_B),
        (4, 0.0, ev.LOCK_WAIT, 2, _RES_A),
        (5, 0.0, ev.LOCK_ACQUIRE, 3, _RES_C),
    ])
    return checker.finish()


def _tc107():
    # A "read-only" snapshot session that acquires a lock anyway.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.SNAPSHOT_BEGIN, 1, 100),
        (2, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
    ])
    return checker.finish()


def _tc107_read():
    # A snapshot read resolving a version younger than its pinned ts.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.SNAPSHOT_BEGIN, 1, 100),
        (2, 0.0, ev.SNAPSHOT_READ, 1, 200),
    ])
    return checker.finish()


def _tc108():
    # A shard commit mark with no prepare record behind it.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 7, 0),
        (2, 0.0, ev.TWOPC_DECISION, 7, (2 << 1) | 1),
        (3, 0.0, ev.TWOPC_COMMIT, 7, 0),
        (4, 0.0, ev.TWOPC_COMMIT, 7, 1),  # shard 1 never prepared
    ])
    return checker.finish()


def _tc108_decision():
    # A shard commit mark before any coordinator decision persisted.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 7, 0),
        (2, 0.0, ev.TWOPC_COMMIT, 7, 0),
    ])
    return checker.finish()


def _tc108_abort():
    # A shard commit mark against an abort decision.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TWOPC_PREPARE, 7, 0),
        (2, 0.0, ev.TWOPC_DECISION, 7, (1 << 1) | 0),
        (3, 0.0, ev.TWOPC_COMMIT, 7, 0),
    ])
    return checker.finish()


def _tc109():
    # An OCC session taking a lock during its read phase (before the
    # commit-point validation) — the optimistic path silently
    # degraded into hybrid locking.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.OCC_BEGIN, 1, 100),
        (3, 0.0, ev.OCC_READ, 1, _RES_A),
        (4, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
        (5, 0.0, ev.OCC_VALIDATE, 1, 100),
        (6, 0.0, ev.LOCK_RELEASE, 1, _RES_A),
        (7, 0.0, ev.TXN_COMMIT, 1, 0),
    ])
    return checker.finish()


def _tc109_stale():
    # A validated commit whose read set has a committed version in
    # (pin_ts, commit_ts] — validation let a stale read through.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.OCC_BEGIN, 1, 100),
        (3, 0.0, ev.OCC_READ, 1, _RES_A),
        (4, 0.0, ev.VERSION_PUBLISH, _RES_A, 150),
        (5, 0.0, ev.OCC_VALIDATE, 1, 100),
        (6, 0.0, ev.TXN_COMMIT, 1, 0),
    ])
    return checker.finish()


_PAGE_SIZE = 0x200
_S_PAGE1 = encode_lock(("page", 1), LOCK_S)
_X_PAGE1 = encode_lock(("page", 1), LOCK_X)


def _lockset_checker():
    return TraceChecker(
        None, log_range=_LOG, commit_word=_WORD, page_range=_PAGES,
        page_size=_PAGE_SIZE,
    )


def _tc110():
    # Two sessions write one page holding only (compatible) S latches:
    # no consistent protecting X lock — the Eraser lockset empties.
    # ``sched_pick`` events attribute the stores (as the explorer's
    # pick-strategy-driven scheduler emits them).
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.TXN_BEGIN, 2, 0),
        (3, 0.0, ev.LOCK_ACQUIRE, 1, _S_PAGE1),
        (4, 0.0, ev.SCHED_PICK, 1, 0),
        (5, 0.0, ev.STORE, 0x240, 16),
        (6, 0.0, ev.LOCK_ACQUIRE, 2, _S_PAGE1),
        (7, 0.0, ev.SCHED_PICK, 2, 1),
        (8, 0.0, ev.STORE, 0x250, 16),
    ])
    return checker.finish()


def _lockset_good():
    # The same two writers properly serialized under the page's X lock
    # (writer 2 acquires only after writer 1 released): the candidate
    # set stays non-empty.  Must produce zero findings.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.LOCK_ACQUIRE, 1, _X_PAGE1),
        (2, 0.0, ev.SCHED_PICK, 1, 0),
        (3, 0.0, ev.STORE, 0x240, 16),
        (4, 0.0, ev.LOCK_RELEASE, 1, _X_PAGE1),
        (5, 0.0, ev.LOCK_ACQUIRE, 2, _X_PAGE1),
        (6, 0.0, ev.SCHED_PICK, 2, 1),
        (7, 0.0, ev.STORE, 0x250, 16),
        (8, 0.0, ev.LOCK_RELEASE, 2, _X_PAGE1),
    ])
    return checker.finish()


def _tc111():
    # A cached page whose header window is overwritten by a committed
    # install (store into the page's first 6 bytes), then served from
    # the cache with no CACHE_INVAL in between — a stale read.  Page 1
    # starts at 0x200 under the 0x200-byte fixture geometry.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),      # header install on page 1
        (3, 0.0, ev.CACHE_HIT, 1, 0),      # stale bytes served
    ])
    return checker.finish()


def _tc111_reinstall():
    # The first install is invalidated correctly; the page is refilled
    # and a SECOND install (an nrecords bump) misses its invalidation.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x200, 8),
        (3, 0.0, ev.CACHE_INVAL, 1, ev.INVAL_INSTALL),
        (4, 0.0, ev.CACHE_FILL, 1, 0),
        (5, 0.0, ev.STORE, 0x202, 2),      # nrecords, no inval after
        (6, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    return checker.finish()


def _cache_good():
    # The full coherent lifecycle: fill, pre-commit cell traffic into
    # the cached page (legal — record bytes land in free space the
    # durable header does not yet reach), hit, a committed install
    # followed by its invalidation in the same step, refill, fresh
    # hit, and free-list head traffic (bytes 6-8, carved out of the
    # header window).  Must produce zero findings.
    checker = _lockset_checker()
    checker.feed([
        (1, 0.0, ev.CACHE_FILL, 1, 0),
        (2, 0.0, ev.STORE, 0x3c0, 16),     # cell store: not an install
        (3, 0.0, ev.CACHE_HIT, 1, 0),
        (4, 0.0, ev.STORE, 0x200, 8),      # header install...
        (5, 0.0, ev.CACHE_INVAL, 1, ev.INVAL_INSTALL),  # ...invalidated
        (6, 0.0, ev.CACHE_FILL, 1, 0),
        (7, 0.0, ev.CACHE_HIT, 1, 0),
        (8, 0.0, ev.STORE, 0x206, 2),      # free-list head: carved out
        (9, 0.0, ev.CACHE_HIT, 1, 0),
    ])
    return checker.finish()


def _occ_good():
    # A clean optimistic commit: lock-free read phase, an *older*
    # concurrent publish (ts ≤ pin is not stale), install locks only
    # after validation, all released before commit.  Zero findings.
    checker = _ordering_checker()
    checker.feed([
        (1, 0.0, ev.TXN_BEGIN, 1, 0),
        (2, 0.0, ev.OCC_BEGIN, 1, 100),
        (3, 0.0, ev.OCC_READ, 1, _RES_A),
        (4, 0.0, ev.VERSION_PUBLISH, _RES_A, 90),
        (5, 0.0, ev.OCC_VALIDATE, 1, 100),
        (6, 0.0, ev.LOCK_ACQUIRE, 1, _RES_A),
        (7, 0.0, ev.LOCK_RELEASE, 1, _RES_A),
        (8, 0.0, ev.TXN_COMMIT, 1, 0),
    ])
    return checker.finish()


DYNAMIC_FIXTURES = {
    "TC101": _tc101,
    "TC101-group": _tc101_group,
    "TC102": _tc102,
    "TC102-group": _tc102_group,
    "TC103": _tc103,
    "TC103-swap": _tc103_swap,
    "TC104": _tc104,
    "TC105": _tc105,
    "TC106": _tc106,
    "TC107": _tc107,
    "TC107-read": _tc107_read,
    "TC108": _tc108,
    "TC108-decision": _tc108_decision,
    "TC108-abort": _tc108_abort,
    "TC109": _tc109,
    "TC109-stale": _tc109_stale,
    "TC110": _tc110,
    "TC111": _tc111,
    "TC111-reinstall": _tc111_reinstall,
}

#: Known-good traces that must produce ZERO findings — guards against
#: a checker growing a false positive (e.g. rejecting group marks).
GOOD_FIXTURES = {
    "group-mark": _group_good,
    "occ-commit": _occ_good,
    "lockset-serialized": _lockset_good,
    "cache-coherent": _cache_good,
}

#: Exploration budget for the seeded-bug mutants.  Both mutants are
#: caught within single-digit schedule counts; the budget is head-room,
#: not a tuning knob.
EXPLORE_BUDGET = 64


def run_mutants(budget=EXPLORE_BUDGET):
    """Run the schedule-space explorer over every seeded-bug mutant
    (:mod:`repro.analysis.mutants`); returns failure strings.

    Unlike the exact-rule fixtures above, the expectation here is
    *containment*: a deliberately broken engine may trip collateral
    invariants beyond the seeded one (a race also breaks the
    serializability oracle, say), so the seeded rule must be AMONG the
    findings, and there must be findings at all."""
    failures = []
    for name, (mutant, rule, builder) in sorted(MUTANTS.items()):
        spec = builder()
        with mutant():
            result = explore(
                workloads=spec["workloads"], preload=spec["preload"],
                config=spec.get("config"), budget=budget,
            )
        fired = {line.split(": ")[1] for line in result["findings"]}
        if rule not in fired:
            failures.append(
                "%s: the explorer missed the seeded bug within budget %d "
                "(expected %s among findings, got %s)"
                % (name, budget, rule, sorted(fired) or "nothing")
            )
    return failures


def run():
    """Run every fixture; returns a list of failure strings (empty =
    every rule still fires and no known-good trace is flagged)."""
    failures = []
    for rule, (module, source) in sorted(STATIC_FIXTURES.items()):
        findings = lint_source(source, file=module, module=module)
        fired = {f.rule for f in findings}
        if fired != {rule}:
            failures.append(
                "%s: expected exactly {%s} from its fixture, got %s"
                % (rule, rule, sorted(fired) or "nothing")
            )
    for name, fixture in sorted(DYNAMIC_FIXTURES.items()):
        rule = name.split("-")[0]
        findings = fixture()
        fired = {f.rule for f in findings}
        if fired != {rule}:
            failures.append(
                "%s: expected exactly {%s} from its fixture, got %s"
                % (name, rule, sorted(fired) or "nothing")
            )
    for name, fixture in sorted(GOOD_FIXTURES.items()):
        findings = fixture()
        if findings:
            failures.append(
                "%s: known-good trace produced findings: %s"
                % (name, sorted({f.rule for f in findings}))
            )
    failures.extend(run_mutants())
    return failures
