"""Dynamic invariant checking over the ``TraceRecorder`` event ring.

A :class:`TraceChecker` consumes the typed event stream the simulation
already emits (stores, flushes, fences, commit marks, RTM windows, and
— since this PR — lock and transaction events) and asserts the paper's
ordering theorem *as it executes*:

``TC101`` (flush-before-fence-before-mark)
    At every commit mark, every cache line of the log region dirtied
    since the last truncate must be flushed AND fenced — a dirty or
    in-flight log line at the mark means the mark could become durable
    before the frames it validates (paper Section 3.3's ordering).
    This accepts *group* commit marks unchanged: with
    ``SystemConfig.group_commit`` on, several transactions' frames
    accumulate (written + flushed, unfenced) and one shared fence +
    one mark covers them all — the invariant is exactly that every
    member line reached the fence before the mark, however many
    transactions the mark covers.
``TC102`` (atomic commit mark)
    The commit mark must be published by a single ≤8-byte store that
    does not cross an 8-byte-atomic word boundary (the hardware's
    failure-atomic unit, Section 3.1).  A group commit mark is the
    same 8-byte (tail, seq) word with the tail spanning the members'
    prefix — growing the mark beyond 8 bytes to describe the group
    would break failure atomicity, and is exactly what this rule
    rejects.
``TC103`` (no live overwrite)
    Before its commit mark, a transaction must never store into a live
    (committed-reachable) byte range of the FAST/FAST⁺ page space —
    records go to free space, headers are published only by the mark
    (Section 4.1).  Two sanctioned exemptions: stores inside an RTM
    window (the hardware-atomic in-place commit), and single-word
    (≤8 B) stores immediately flushed + fenced (the paper's atomic
    pointer swap, Section 4.3).
``TC104``/``TC105``/``TC106`` (strict 2PL)
    Per session: no lock acquired after the first release (TC104), no
    lock still held at transaction end (TC105), and the wait-for graph
    is acyclic at every granted acquire and commit (TC106) — a cycle
    must be resolved by victim abort before anyone else makes progress.
``TC107`` (lock-free snapshot reads)
    A read-only MVCC transaction (``snapshot_begin`` … ``snapshot_end``)
    must acquire **zero** locks — that is the whole point of the
    version chains — and every ``snapshot_read`` it performs must
    resolve a version with commit timestamp ≤ its pinned snapshot
    timestamp (reading a younger version would break snapshot
    isolation).  A sharded reader pins one snapshot per shard touched
    (several ``snapshot_begin`` events per sid); the checker keeps the
    newest pin.
``TC109`` (optimistic concurrency control)
    An OCC transaction (``occ_begin`` … commit) must acquire **zero**
    locks before its commit point (``occ_validate``) — the read phase
    is lock-free by construction, and a pre-validation lock means the
    optimistic path silently degraded into hybrid locking.  And a
    *validated* commit's read set must be genuinely clean: replaying
    the ``version_publish`` history, no resource the transaction read
    (``occ_read``) may carry a committed version in ``(pin_ts,
    commit_ts]`` unless the transaction raised ``occ_conflict`` and
    aborted.  Sharded transactions pin one shard-local timestamp per
    leg (the shard namespace rides the ``occ_begin`` payload's high
    bits), and each read resource validates against its own shard's
    pin.
``TC108`` (two-phase commit ordering)
    A shard's 2PC commit mark (``twopc_commit``) must be preceded by
    that shard's prepare record (``twopc_prepare``) AND the
    coordinator's *commit* decision (``twopc_decision``) for the same
    global transaction; a commit mark against an abort decision, or a
    commit decision recorded before every participant prepared, is a
    half-committed transaction waiting for a crash.
``TC110`` (lockset race detection, Eraser-shape)
    Every shared arena resource — a data page or a named root slot —
    written by two or more sessions must have a *consistent protecting
    lock*: the intersection of the writers' X-mode-held locksets at
    their write instants must stay nonempty.  An empty intersection
    means two sessions mutated the same bytes with no common lock
    serializing them — under some schedule those writes interleave.
    The rule needs per-store session attribution, which only the
    ``sched_pick`` event carries (emitted when a ``pick_strategy``
    drives the scheduler, i.e. under ``repro.analysis.explore``);
    without attribution the rule is dormant, so default-scheduled
    corpora are unaffected.  MVCC and OCC stay exempt structurally:
    snapshot readers never store, OCC read-phase writes buffer in DRAM
    (outside the page range), and OCC installs run inside
    ``commit_scope`` X locks.  Carve-outs mirror the engine's
    sanctioned lock-free stores: store-header allocator words
    (single-word-atomic by the paper's Section 4.4 contract, roots
    excepted), the in-page free-list head bytes, and format stores to
    a page no session holds any lock on (``allocate_page`` formats
    before it latches — a fresh page is uncontended by construction).
``TC111`` (DRAM page-cache coherence)
    No cached read may return bytes older than the latest committed
    install for its page.  The tiered DRAM page cache
    (``repro.storage.cache``) emits ``cache_fill`` / ``cache_hit`` /
    ``cache_inval`` events; an install is any STORE overlapping the
    page's first six header bytes — the page-type/flags/nrecords/
    content-start words that every committed header publish
    (checkpoint apply, RTM in-place commit, recovery replay, NVWAL
    copy-back) and every free-list link rewrites, and exactly the
    bytes TC103's live ranges protect (the free-list head word at
    offsets 6-8 is carved out on both sides: it is reconstructible
    and rewritten in place pre-commit).  A ``cache_hit`` on a page
    whose frame was filled before such an install, with no
    ``cache_inval`` or re-fill in between, is a stale read.
    Pre-commit record/cell traffic lands outside the window by
    construction, so legitimately cached pages never trip the rule.
    Cache-off runs emit no cache events and the rule is dormant.

Harness protocol: call :meth:`begin_txn` (with fresh live ranges)
before each transaction and :meth:`advance` after it; or just
:meth:`advance` periodically for lock-discipline-only checking (the
scheduler corpus).  Call :meth:`finish` at the end.  Findings carry
the trace sequence number of the offending event.
"""

from repro.core.locking import _COMPATIBLE, LOCK_X, decode_lock
from repro.analysis.findings import Finding
from repro.obs import trace as ev

_WORD = 8

#: Everything the checker can assert; pick a subset per corpus.
ALL_INVARIANTS = (
    "flush", "atomic", "live", "twopl", "snapshot", "twopc", "occ",
    "lockset", "cache",
)

#: TC111 install window: the first six header bytes of a page (type,
#: flags, nrecords, content-start) — rewritten by every committed
#: header install and by free-list link words, never by pre-commit
#: record traffic.  Bytes 6-8 (the in-page free-list head) are
#: excluded, mirroring TC103's live-range carve-out.
_CACHE_WINDOW = 6

#: Shard-namespace shift of packed resource idents and occ_begin pin
#: words (== repro.storage.sharding.SHARD_NS_SHIFT; 0 when unsharded).
_NS_SHIFT = 24
_NS_MASK = (1 << _NS_SHIFT) - 1

#: Store-header layout (== repro.storage.pagestore): the named-root
#: words TC110 treats as lockable state sit at [16, 16 + 4*12).
_ROOTS_OFF = 16
_N_ROOT_SLOTS = 12


def _lines_of(addr, length):
    return range(addr >> 6, ((addr + max(length, 1) - 1) >> 6) + 1)


class _SessionState:
    __slots__ = ("held", "released", "open")

    def __init__(self):
        self.held = {}        # resource -> mode
        self.released = False
        self.open = False


class _OccState:
    """One OCC transaction's window (``occ_begin`` .. txn end)."""

    __slots__ = ("pins", "reads", "validated", "stale", "conflicted")

    def __init__(self):
        self.pins = {}        # shard namespace -> pinned timestamp
        self.reads = set()    # packed read-set resource words
        self.validated = False
        self.stale = ()       # stale resources recomputed at validate
        self.conflicted = False


class TraceChecker:
    """Streaming checker over a trace event sequence."""

    def __init__(self, trace=None, *, log_range=None, commit_word=None,
                 page_range=None, page_size=None, invariants=ALL_INVARIANTS,
                 shared_trace=False):
        self.trace = trace
        self.findings = []
        self.invariants = frozenset(invariants)
        #: [base, end) of the redo-log region (TC101 coverage scope).
        self.log_range = log_range
        #: Address of the 8-byte commit word (TC102).
        self.commit_word = commit_word
        #: The trace interleaves several engines (a sharded router's
        #: merged stream) and this checker is scoped to one of them: a
        #: COMMIT_MARK with no in-scope commit-word store belongs to
        #: another shard and is skipped, not a TC102 finding.  Safe
        #: because a shard's word store and its mark are adjacent in
        #: the stream (both happen inside one cooperative commit step).
        self.shared_trace = shared_trace
        #: [base, end) of the page arena incl. the store header
        #: (TC103 scope).
        self.page_range = page_range
        #: Page granularity of the arena (TC110 needs it to map a
        #: store address to the page resource a lock would protect;
        #: without it the lockset rule is dormant).
        self.page_size = page_size
        self._cursor = 0
        self._events_seen = 0
        self._txns_seen = 0
        # -- ordering state -------------------------------------------
        self._line_state = {}     # log-region line -> "dirty"|"inflight"
        self._word_store = None   # last (seq, addr, len) at commit word
        # -- live-range state -----------------------------------------
        self._live = []           # sorted (start, end) committed ranges
        self._pre_commit = False  # inside a txn, before its mark
        self._in_rtm = False
        self._pending_swap = None  # (seq, addr, len, flushed, fenced)
        # -- 2PL state ------------------------------------------------
        self._sessions = {}       # sid -> _SessionState
        self._waits = {}          # sid -> (resource, mode)
        # -- MVCC snapshot state --------------------------------------
        self._snapshot_ts = {}    # sid -> pinned snapshot timestamp
        # -- OCC state ------------------------------------------------
        self._occ = {}            # sid -> _OccState (occ_begin .. txn end)
        self._publish_ts = {}     # packed resource -> latest publish ts
        # -- 2PC state ------------------------------------------------
        self._twopc = {}          # gtid -> {prepared, decision, committed}
        # -- lockset (TC110) state ------------------------------------
        self._actor = None        # sid the current stores belong to
        self._lockset = {}        # resource -> {writers, candidates, reported}
        # -- page-cache coherence (TC111) state -----------------------
        self._cache_filled = {}   # page_no -> fill seq (frame is live)
        self._cache_stale = {}    # page_no -> install seq since the fill

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_engine(cls, engine, *, invariants=ALL_INVARIANTS,
                   shared_trace=False):
        """A checker scoped to ``engine``'s arena geometry."""
        config = engine.config
        log_range = None
        commit_word = None
        if getattr(engine, "log", None) is not None:
            log_range = (config.log_base, config.log_base + config.log_bytes)
            commit_word = config.log_base + 8
        page_range = (
            config.store_base,
            config.store_base + config.npages * config.page_size,
        )
        return cls(
            engine.obs.trace,
            log_range=log_range,
            commit_word=commit_word,
            page_range=page_range,
            page_size=config.page_size,
            invariants=invariants,
            shared_trace=shared_trace,
        )

    @staticmethod
    def live_ranges_of(engine):
        """Committed-reachable byte ranges of ``engine``'s page space:
        the named-root pointer words, and every reachable page's
        durable slot header plus its allocated cells.  Pure reads —
        computing this never perturbs the traced store stream.

        The free-list head word (header bytes 6-8) is carved out: the
        in-page free list is reconstructible by design (paper Section
        4.3) and is deliberately rewritten in place, unflushed, at any
        time."""
        store = engine.store
        ranges = []
        roots_base = store.base + 16  # _OFF_ROOTS
        ranges.append((roots_base, roots_base + 4 * 12))
        for page_no in sorted(engine.reachable_pages()):
            page = store.page(page_no)
            image = page.committed_header_image()
            ranges.append((page.base, page.base + 6))
            ranges.append((page.base + 8, page.base + len(image)))
            for offset in page.committed_offsets():
                size = page.cell_allocated_size(offset)
                ranges.append((page.base + offset, page.base + offset + size))
        ranges.sort()
        return ranges

    # ------------------------------------------------------------------
    # Harness protocol
    # ------------------------------------------------------------------

    def begin_txn(self, live_ranges=None):
        """Open a transaction window: drain pending events (the tail of
        the previous transaction is post-commit), then arm pre-commit
        checking against ``live_ranges``."""
        self.advance()
        self._flush_pending_swap(at_end=True)
        if live_ranges is not None:
            self._live = sorted(live_ranges)
        self._pre_commit = True
        self._txns_seen += 1

    def advance(self):
        """Process every event recorded since the last call."""
        if self.trace is None:
            return
        events = self.trace.events(since_seq=self._cursor)
        if events and events[0][0] > self._cursor + 1 and self._cursor:
            self.findings.append(Finding(
                "TC000",
                "trace ring dropped %d events; checking is incomplete "
                "(enlarge the recorder capacity or advance more often)"
                % (events[0][0] - self._cursor - 1),
                trace_seq=events[0][0],
            ))
        for event in events:
            self._process(event)
        if events:
            self._cursor = events[-1][0]

    def finish(self):
        """Drain remaining events and run end-of-stream checks."""
        self.advance()
        self._flush_pending_swap(at_end=True)
        return self.findings

    def close(self):
        """Seal the checker at the current stream position: drain what
        was recorded so far, then detach from the recorder so later
        events are never consumed.  The crash harness calls this at the
        simulated power cut — recovery's redo stores legitimately
        rewrite live bytes and must not be judged by pre-crash state."""
        self.advance()
        # An atomic swap still awaiting its flush at the power cut is
        # not a violation — the interrupted code was about to issue it,
        # and either direction of the swap is committed-equivalent.
        self._pending_swap = None
        self.trace = None
        return self.findings

    def feed(self, events):
        """Process raw ``(seq, t_ns, kind, a, b)`` tuples directly
        (fixture traces; no recorder needed)."""
        for event in events:
            self._process(event)
            self._cursor = event[0]
        return self

    @property
    def stats(self):
        return {
            "events": self._events_seen,
            "txns": self._txns_seen,
            "findings": len(self.findings),
        }

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def _process(self, event):
        seq, _t, kind, a, b = event
        self._events_seen += 1
        if kind == ev.STORE:
            self._on_store(seq, a, b)
        elif kind in (ev.CLFLUSH, ev.CLWB):
            self._on_flush(a)
        elif kind == ev.FENCE:
            self._on_fence()
        elif kind == ev.COMMIT_MARK:
            self._on_commit_mark(seq)
        elif kind == ev.RTM_BEGIN:
            self._in_rtm = True
        elif kind == ev.RTM_ABORT:
            self._in_rtm = False
        elif kind == ev.RTM_COMMIT:
            self._in_rtm = False
            # FAST⁺ in-place publish: the header line itself is the
            # commit mark; everything after it is post-commit.
            self._pre_commit = False
        elif kind == ev.LOCK_ACQUIRE or kind == ev.LOCK_UPGRADE:
            self._on_lock_acquire(seq, a, b, upgrade=kind == ev.LOCK_UPGRADE)
        elif kind == ev.LOCK_RELEASE:
            self._on_lock_release(a, b)
        elif kind == ev.LOCK_WAIT:
            resource, mode = decode_lock(b)
            self._waits[a] = (resource, mode)
        elif kind == ev.LOCK_WAKE:
            self._waits.pop(a, None)
        elif kind == ev.TXN_BEGIN:
            state = self._sessions.setdefault(a, _SessionState())
            state.open = True
            state.released = False
            self._txns_seen += 1
        elif kind in (ev.TXN_COMMIT, ev.TXN_ABORT):
            self._on_txn_end(seq, a, committed=kind == ev.TXN_COMMIT)
        elif kind == ev.SNAPSHOT_BEGIN:
            # A sharded reader pins per shard (max: the newest pin).
            previous = self._snapshot_ts.get(a)
            self._snapshot_ts[a] = b if previous is None else max(previous, b)
        elif kind == ev.SNAPSHOT_READ:
            self._on_snapshot_read(seq, a, b)
        elif kind == ev.SNAPSHOT_END:
            self._snapshot_ts.pop(a, None)
        elif kind == ev.OCC_BEGIN:
            state = self._occ.setdefault(a, _OccState())
            state.pins[b >> _NS_SHIFT] = b & ((1 << _NS_SHIFT) - 1)
        elif kind == ev.OCC_READ:
            state = self._occ.get(a)
            if state is not None:
                state.reads.add(b)
        elif kind == ev.OCC_VALIDATE:
            self._on_occ_validate(seq, a)
        elif kind == ev.OCC_CONFLICT:
            state = self._occ.get(a)
            if state is not None:
                state.conflicted = True
        elif kind == ev.VERSION_PUBLISH:
            previous = self._publish_ts.get(a, 0)
            self._publish_ts[a] = max(previous, b)
        elif kind == ev.SCHED_PICK:
            self._actor = a
        elif kind == ev.TWOPC_PREPARE:
            self._twopc_state(a)["prepared"].add(b)
        elif kind == ev.TWOPC_DECISION:
            self._on_twopc_decision(seq, a, b)
        elif kind == ev.TWOPC_COMMIT:
            self._on_twopc_commit(seq, a, b)
        elif kind == ev.CACHE_FILL:
            if "cache" in self.invariants:
                self._cache_filled[a] = seq
                self._cache_stale.pop(a, None)
        elif kind == ev.CACHE_HIT:
            if "cache" in self.invariants:
                self._on_cache_hit(seq, a)
        elif kind == ev.CACHE_INVAL:
            if "cache" in self.invariants:
                self._cache_filled.pop(a, None)
                self._cache_stale.pop(a, None)

    # ------------------------------------------------------------------
    # TC101 / TC102 — flush coverage and mark atomicity
    # ------------------------------------------------------------------

    def _log_lines(self, addr, length):
        base, end = self.log_range
        if addr + length <= base or addr >= end:
            return ()
        return _lines_of(max(addr, base), min(addr + length, end) - max(addr, base))

    def _on_store(self, seq, addr, length):
        if self.log_range is not None:
            for line in self._log_lines(addr, length):
                self._line_state[line] = "dirty"
        if self.commit_word is not None:
            if addr <= self.commit_word < addr + length:
                self._word_store = (seq, addr, length)
        if "live" in self.invariants:
            self._check_live_store(seq, addr, length)
        if "lockset" in self.invariants:
            self._check_lockset(seq, addr, length)
        if self._cache_filled:
            self._check_cache_store(seq, addr, length)

    def _on_flush(self, addr):
        line = addr >> 6
        if self._line_state.get(line) == "dirty":
            self._line_state[line] = "inflight"
        swap = self._pending_swap
        if swap is not None and (swap[1] >> 6) == (addr >> 6):
            self._pending_swap = (swap[0], swap[1], swap[2], True, False)

    def _on_fence(self):
        self._line_state = {
            line: state for line, state in self._line_state.items()
            if state != "inflight"
        }
        swap = self._pending_swap
        if swap is not None and swap[3]:
            self._pending_swap = None  # flushed + fenced: sanctioned

    def _on_commit_mark(self, seq):
        if self.shared_trace and self._word_store is None:
            return  # another shard's mark: out of scope
        if "flush" in self.invariants and self.log_range is not None:
            bad = sorted(
                line for line, state in self._line_state.items()
                if state in ("dirty", "inflight")
            )
            if bad:
                self.findings.append(Finding(
                    "TC101",
                    "commit mark with %d log line(s) not flushed+fenced "
                    "(first: line %#x %s)"
                    % (len(bad), bad[0] << 6, self._line_state[bad[0]]),
                    trace_seq=seq,
                ))
        if "atomic" in self.invariants and self.commit_word is not None:
            store = self._word_store
            if store is None:
                self.findings.append(Finding(
                    "TC102",
                    "commit mark event with no store to the commit word",
                    trace_seq=seq,
                ))
            else:
                _sseq, addr, length = store
                crosses = (addr // _WORD) != ((addr + length - 1) // _WORD)
                if length > _WORD or crosses:
                    self.findings.append(Finding(
                        "TC102",
                        "commit mark published by a %d-byte store at %#x "
                        "(not a single ≤8-byte atomic store)"
                        % (length, addr),
                        trace_seq=seq,
                    ))
            self._word_store = None
        # The mark closes the transaction's pre-commit window.
        self._pre_commit = False

    # ------------------------------------------------------------------
    # TC103 — no store to live ranges before the commit mark
    # ------------------------------------------------------------------

    def _overlaps_live(self, addr, length):
        end = addr + length
        for start, stop in self._live:
            if start >= end:
                break
            if stop > addr:
                return (start, stop)
        return None

    def _check_live_store(self, seq, addr, length):
        if not self._pre_commit or self._in_rtm:
            return
        if self.page_range is not None:
            base, end = self.page_range
            if addr + length <= base or addr >= end:
                return
        hit = self._overlaps_live(addr, length)
        if hit is None:
            return
        # A previous small swap must complete (flush+fence) before the
        # next store; a second store while one is pending breaks the
        # "immediately persisted" exemption.
        self._flush_pending_swap(at_end=False)
        atomic = (
            length <= _WORD
            and (addr // _WORD) == ((addr + length - 1) // _WORD)
        )
        if atomic:
            self._pending_swap = (seq, addr, length, False, False)
            return
        self.findings.append(Finding(
            "TC103",
            "pre-commit store of %d bytes at %#x overwrites live "
            "range [%#x, %#x)" % (length, addr, hit[0], hit[1]),
            trace_seq=seq,
        ))

    def _flush_pending_swap(self, *, at_end):
        swap = self._pending_swap
        if swap is None:
            return
        self._pending_swap = None
        seq, addr, _length, flushed, _fenced = swap
        self.findings.append(Finding(
            "TC103",
            "atomic pointer-swap store at %#x was not %s before the "
            "next %s (live bytes may tear)"
            % (
                addr,
                "fenced" if flushed else "flushed",
                "window end" if at_end else "store",
            ),
            trace_seq=seq,
        ))

    # ------------------------------------------------------------------
    # TC104 / TC105 / TC106 — strict two-phase locking
    # ------------------------------------------------------------------

    def _on_lock_acquire(self, seq, sid, word, *, upgrade):
        if "occ" in self.invariants:
            occ = self._occ.get(sid)
            if occ is not None and not occ.validated:
                resource, mode = decode_lock(word)
                self.findings.append(Finding(
                    "TC109",
                    "OCC session %d %s %s on %r before validating "
                    "(the read phase must acquire zero locks)"
                    % (sid, "upgraded to" if upgrade else "acquired",
                       mode, (resource,)[0]),
                    trace_seq=seq,
                ))
        if "snapshot" in self.invariants and sid in self._snapshot_ts:
            resource, mode = decode_lock(word)
            self.findings.append(Finding(
                "TC107",
                "read-only snapshot session %d %s %s on %r (MVCC "
                "readers must acquire zero locks)"
                % (sid, "upgraded to" if upgrade else "acquired",
                   mode, (resource,)[0]),
                trace_seq=seq,
            ))
        if "twopl" not in self.invariants:
            return
        resource, mode = decode_lock(word)
        state = self._sessions.setdefault(sid, _SessionState())
        if state.released:
            self.findings.append(Finding(
                "TC104",
                "session %d acquired %s on %r after releasing locks "
                "(strict 2PL forbids a second growth phase)"
                % (sid, mode, (resource,)[0]),
                trace_seq=seq,
            ))
        state.held[resource] = mode
        self._waits.pop(sid, None)
        self._check_acyclic(seq)

    def _on_lock_release(self, sid, word):
        if "twopl" not in self.invariants:
            return
        resource, _mode = decode_lock(word)
        state = self._sessions.setdefault(sid, _SessionState())
        state.held.pop(resource, None)
        state.released = True

    def _on_txn_end(self, seq, sid, *, committed):
        state = self._sessions.setdefault(sid, _SessionState())
        if "twopl" in self.invariants and state.held:
            self.findings.append(Finding(
                "TC105",
                "session %d %s with %d lock(s) still held (first: %r)"
                % (
                    sid,
                    "committed" if committed else "aborted",
                    len(state.held),
                    sorted(state.held)[0],
                ),
                trace_seq=seq,
            ))
        if "twopl" in self.invariants and committed:
            self._check_acyclic(seq)
        state.held.clear()
        state.released = False
        state.open = False
        self._waits.pop(sid, None)
        self._on_occ_txn_end(seq, sid, committed=committed)

    # ------------------------------------------------------------------
    # TC107 — lock-free snapshot reads
    # ------------------------------------------------------------------

    def _on_snapshot_read(self, seq, sid, version_ts):
        if "snapshot" not in self.invariants:
            return
        snapshot_ts = self._snapshot_ts.get(sid)
        if snapshot_ts is not None and version_ts > snapshot_ts:
            self.findings.append(Finding(
                "TC107",
                "snapshot session %d read a version committed at ts %d "
                "> its snapshot ts %d (snapshot isolation violated)"
                % (sid, version_ts, snapshot_ts),
                trace_seq=seq,
            ))

    # ------------------------------------------------------------------
    # TC110 — lockset race detection (Eraser-shape)
    # ------------------------------------------------------------------

    def set_actor(self, sid):
        """Attribute subsequent stores to session ``sid`` (or None to
        stop attributing).  ``sched_pick`` events do this automatically
        for pick-strategy-driven schedules; harnesses that interleave
        sessions by hand may call this directly instead."""
        self._actor = sid

    def _lockset_resource(self, addr, length):
        """The lockable resource a store mutates, or None if the store
        is outside the arena or inside a sanctioned lock-free region."""
        base, end = self.page_range
        if addr < base or addr + length > end:
            return None
        page_no = (addr - base) // self.page_size
        offset = addr - base - page_no * self.page_size
        if page_no == 0:
            # Store header: only the named-root words are lock-managed
            # state.  Magic/geometry/free-head words are allocator
            # machinery published by single-word atomic stores (paper
            # Section 4.4) with no lock discipline to check.
            roots_end = _ROOTS_OFF + 4 * _N_ROOT_SLOTS
            if offset < _ROOTS_OFF or offset >= roots_end:
                return None
            return ("root", (offset - _ROOTS_OFF) // 4)
        if offset >= 6 and offset + length <= 8:
            # In-page free-list head: reconstructible by design and
            # rewritten in place at any time (TC103 carves out the
            # same two bytes from the live ranges).
            return None
        return ("page", page_no)

    def _check_lockset(self, seq, addr, length):
        sid = self._actor
        if sid is None:
            return  # unattributed stores (preload, recovery, defaults)
        if self.page_range is None or self.page_size is None:
            return  # no arena geometry: the rule stays dormant
        resource = self._lockset_resource(addr, length)
        if resource is None:
            return
        # The writer's X-mode lockset at this instant.  Lock resources
        # carry the shard namespace in their ident; store addresses
        # are shard-local, so mask it off to correlate.
        state = self._sessions.get(sid)
        held = state.held if state is not None else {}
        held_x = {
            (res[0], res[1] & _NS_MASK)
            for res, mode in held.items() if mode == LOCK_X
        }
        if resource[0] == "page" and resource not in {
            (res[0], res[1] & _NS_MASK) for res in held
        }:
            # A store to a page the writer holds no lock on at all, in
            # any mode: allocation-format traffic iff nobody else
            # holds it either (``allocate_page`` formats the fresh
            # page before latching it — uncontended by construction).
            # If any session holds the page, this store is a genuine
            # unprotected write and stays in the analysis.
            if not any(
                resource in {(r[0], r[1] & _NS_MASK) for r in other.held}
                for other in self._sessions.values()
            ):
                return
        entry = self._lockset.get(resource)
        if entry is None:
            self._lockset[resource] = {
                "writers": {sid},
                "candidates": held_x,
                "reported": False,
            }
            return
        entry["writers"].add(sid)
        entry["candidates"] &= held_x
        if (len(entry["writers"]) >= 2 and not entry["candidates"]
                and not entry["reported"]):
            entry["reported"] = True
            self.findings.append(Finding(
                "TC110",
                "%s %d written by sessions %s with an empty lockset "
                "(no consistent protecting X lock across writers)"
                % (resource[0], resource[1],
                   ",".join(str(s) for s in sorted(entry["writers"]))),
                trace_seq=seq,
            ))

    # ------------------------------------------------------------------
    # TC111 — DRAM page-cache coherence
    # ------------------------------------------------------------------

    def _check_cache_store(self, seq, addr, length):
        """Mark filled pages whose install window this store rewrites.

        Only entered while at least one frame is live (``_cache_filled``
        is empty in cache-off runs and whenever ``"cache"`` is not
        armed, so the common store path pays one falsy check).
        """
        if self.page_range is None or not self.page_size:
            return
        base, end = self.page_range
        if addr + length <= base or addr >= end:
            return
        first = (max(addr, base) - base) // self.page_size
        last = (min(addr + length, end) - 1 - base) // self.page_size
        for page_no in range(first, last + 1):
            if page_no not in self._cache_filled:
                continue
            page_base = base + page_no * self.page_size
            if addr < page_base + _CACHE_WINDOW and addr + length > page_base:
                self._cache_stale[page_no] = seq

    def _on_cache_hit(self, seq, page_no):
        """A hit on a stale-marked frame is the TC111 violation.  A hit
        with no recorded fill is implicit-fill territory (the checker
        may have attached mid-stream) and passes."""
        install_seq = self._cache_stale.get(page_no)
        if install_seq is None:
            return
        self.findings.append(Finding(
            "TC111",
            "cached read of page %d served bytes older than the "
            "committed install at trace seq %d (no invalidation "
            "between install and hit)" % (page_no, install_seq),
            trace_seq=seq,
        ))

    # ------------------------------------------------------------------
    # TC109 — optimistic concurrency control
    # ------------------------------------------------------------------

    def _on_occ_validate(self, seq, sid):
        """Recompute the stale set independently: the read set against
        the ``version_publish`` history at this instant.  Validation is
        the transaction's commit point (the cooperative scheduler runs
        validate-then-install atomically), so "committed version in
        ``(pin_ts, commit_ts]``" is exactly "published ts > pin as of
        this event" — recomputing here also keeps the transaction's own
        installs (published before its TXN_COMMIT) out of the check."""
        state = self._occ.get(sid)
        if state is None:
            return
        state.validated = True
        if "occ" not in self.invariants:
            return
        stale = []
        for resource in sorted(state.reads):
            ident = decode_lock(resource)[0][1]
            pin = state.pins.get(ident >> _NS_SHIFT)
            if pin is None:
                continue
            if self._publish_ts.get(resource, 0) > pin:
                stale.append(resource)
        state.stale = tuple(stale)

    def _on_occ_txn_end(self, seq, sid, *, committed):
        state = self._occ.pop(sid, None)
        if state is None or "occ" not in self.invariants:
            return
        if not committed:
            return
        if not state.validated:
            self.findings.append(Finding(
                "TC109",
                "OCC session %d committed without validating its read "
                "set" % sid,
                trace_seq=seq,
            ))
        elif state.stale and not state.conflicted:
            self.findings.append(Finding(
                "TC109",
                "OCC session %d committed with %d stale read-set "
                "resource(s) (first: %#x has a committed version newer "
                "than the pin)" % (sid, len(state.stale), state.stale[0]),
                trace_seq=seq,
            ))

    # ------------------------------------------------------------------
    # TC108 — two-phase commit ordering
    # ------------------------------------------------------------------

    def _twopc_state(self, gtid):
        state = self._twopc.get(gtid)
        if state is None:
            state = self._twopc[gtid] = {
                "prepared": set(),     # shard indexes with a prepare record
                "decision": None,      # (participants, commit?) once decided
                "committed": set(),    # shard indexes with a commit mark
            }
        return state

    def _on_twopc_decision(self, seq, gtid, word):
        state = self._twopc_state(gtid)
        participants, commit = word >> 1, bool(word & 1)
        state["decision"] = (participants, commit)
        if "twopc" not in self.invariants:
            return
        if commit and len(state["prepared"]) < participants:
            self.findings.append(Finding(
                "TC108",
                "commit decision for gtid %d with %d/%d participants "
                "prepared" % (gtid, len(state["prepared"]), participants),
                trace_seq=seq,
            ))

    def _on_twopc_commit(self, seq, gtid, shard):
        state = self._twopc_state(gtid)
        state["committed"].add(shard)
        if "twopc" not in self.invariants:
            return
        if shard not in state["prepared"]:
            self.findings.append(Finding(
                "TC108",
                "shard %d commit mark for gtid %d with no prepare record"
                % (shard, gtid),
                trace_seq=seq,
            ))
        decision = state["decision"]
        if decision is None:
            self.findings.append(Finding(
                "TC108",
                "shard %d commit mark for gtid %d before the coordinator "
                "decision" % (shard, gtid),
                trace_seq=seq,
            ))
        elif not decision[1]:
            self.findings.append(Finding(
                "TC108",
                "shard %d commit mark for gtid %d against an abort "
                "decision" % (shard, gtid),
                trace_seq=seq,
            ))

    def _blockers(self, sid, resource, mode):
        compatible = _COMPATIBLE[mode]
        blockers = []
        for other, state in self._sessions.items():
            if other == sid:
                continue
            other_mode = state.held.get(resource)
            if other_mode is not None and other_mode not in compatible:
                blockers.append(other)
        return blockers

    def _check_acyclic(self, seq):
        """The wait-for graph must be acyclic at every granted acquire
        and at every commit: a deadlock cycle may exist only in the
        instant between parking and victim selection, never across a
        subsequent grant."""
        edges = {
            sid: self._blockers(sid, resource, mode)
            for sid, (resource, mode) in self._waits.items()
        }
        for start in sorted(edges):
            path, on_path = [start], {start}
            if self._dfs_cycle(start, start, edges, path, on_path):
                self.findings.append(Finding(
                    "TC106",
                    "wait-for cycle persists across a lock grant: %s"
                    % " -> ".join(str(s) for s in path + [start]),
                    trace_seq=seq,
                ))
                return

    def _dfs_cycle(self, start, node, edges, path, on_path):
        for blocker in edges.get(node, ()):
            if blocker == start:
                return True
            if blocker in on_path or blocker not in edges:
                continue
            path.append(blocker)
            on_path.add(blocker)
            if self._dfs_cycle(start, blocker, edges, path, on_path):
                return True
            on_path.discard(path.pop())
        return False
