"""CLI: ``python -m repro.analysis`` — lint + trace-check + self-test.

Exit status is the contract CI enforces: 0 when every finding (static
and dynamic) is in the committed baseline — which this repository
keeps *empty*, so 0 means "no findings at all" — and 1 otherwise.

    python -m repro.analysis --lint src/repro      # static rules
    python -m repro.analysis --trace-check          # dynamic corpora
    python -m repro.analysis --lint --trace-check   # both
    python -m repro.analysis --explore              # DPOR model checker
    python -m repro.analysis --explore --budget 64 --clients 3
    python -m repro.analysis --self-test            # rules still fire
    python -m repro.analysis --write-baseline       # accept findings

With no mode flags, the lint and trace-check passes run (``--explore``
stays opt-in: it multiplies executions across interleavings).
"""

import argparse
import json
import sys

from repro.analysis import findings as findings_mod
from repro.analysis.lint import lint_paths

DEFAULT_BASELINE = "ANALYSIS_BASELINE.json"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="persistence-ordering & lock-discipline analyzer",
    )
    parser.add_argument("--lint", action="store_true",
                        help="run the static rules (PM001-PM005)")
    parser.add_argument("--trace-check", action="store_true",
                        help="run the dynamic corpora (TC101-TC111)")
    parser.add_argument("--explore", action="store_true",
                        help="model-check schedule space (DPOR + lockset "
                             "race detection over the deterministic "
                             "scheduler)")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="max schedules per exploration (default: "
                             "explore.DEFAULT_BUDGET)")
    parser.add_argument("--clients", type=int, default=None, metavar="N",
                        help="clients in the explored locked workload "
                             "(default 2)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its known-bad "
                             "fixture")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file (default %(default)s)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout")
    parser.add_argument("paths", nargs="*", default=None,
                        help="lint roots (default: src/repro)")
    args = parser.parse_args(argv)

    run_lint = args.lint
    run_trace = args.trace_check
    run_explore = args.explore
    if not (run_lint or run_trace or run_explore or args.self_test):
        run_lint = run_trace = True

    failures = []
    if args.self_test:
        from repro.analysis import selftest

        failures = selftest.run()

    findings = []
    stats = {}
    if run_lint:
        findings.extend(lint_paths(args.paths or ["src/repro"]))
    if run_trace:
        from repro.analysis import corpus

        trace_findings, stats = corpus.run_all()
        findings.extend(trace_findings)
    explore_stats = {}
    if run_explore:
        from repro.analysis import corpus

        explore_findings, explore_stats = corpus.run_explored(
            budget=args.budget, clients=args.clients or 2,
        )
        findings.extend(explore_findings)

    baseline = findings_mod.load_baseline(args.baseline)
    fresh = findings_mod.new_findings(findings, baseline)

    if args.write_baseline:
        findings_mod.save_baseline(args.baseline, findings)

    if args.as_json:
        json.dump({
            "findings": [f.as_dict() for f in findings],
            "new": [f.render() for f in fresh],
            "baselined": len(findings) - len(fresh),
            "self_test_failures": failures,
            "trace_stats": stats,
            "explore_stats": explore_stats,
        }, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for finding in fresh:
            print(finding.render())
        if failures:
            print("self-test FAILED:")
            for failure in failures:
                print("  " + failure)
        summary = []
        if run_lint or run_trace or run_explore:
            summary.append(
                "%d finding(s), %d new vs baseline"
                % (len(findings), len(fresh))
            )
        if stats:
            summary.append(
                "%(runs)d checked runs, %(txns)d txns, %(events)d events"
                % stats
            )
        if explore_stats:
            summary.append(
                "%(runs)d explorations, %(schedules)d schedules, "
                "%(crash_points)d crash points" % explore_stats
            )
        if args.self_test and not failures:
            summary.append("self-test ok")
        print("; ".join(summary) if summary else "nothing to do")

    if args.write_baseline:
        return 0
    return 1 if (fresh or failures) else 0


if __name__ == "__main__":
    sys.exit(main())
