"""Systematic schedule-space exploration: a stateless DPOR model checker.

Every other corpus in :mod:`repro.analysis` checks the *one*
interleaving the deterministic scheduler produces per seed.  This
module turns the scheduler into a model checker: the ``pick_strategy``
hook on :class:`repro.core.scheduler.Scheduler` lets an explorer force
any feasible interleaving of a small multi-client workload, and every
explored schedule runs under the full dynamic invariant suite
(TC101-TC111) plus a commit-order serializability oracle.

Algorithm
---------

Stateless depth-first search with **dynamic partial-order reduction**
(Flanagan & Godefroid) and **sleep sets**, over a persistent prefix
tree:

* Each *execution* replays a forced prefix of scheduling choices on a
  fresh engine, then extends it with a default continuation (the first
  enabled client not in the state's sleep set).  Every step's
  *footprint* — the resources it touched, with access modes — is read
  off the obs trace ring the engine already emits.
* After each execution, a race analysis walks the step sequence: for
  every step *j* and every other client with an earlier step *i*
  whose footprint is *dependent* with *j*'s, the chooser of *j* is
  added to the backtrack set of the state where *i* was scheduled
  (or, if not enabled there, the whole enabled set is — the classic
  conservative fallback).  DFS then re-executes from the deepest
  state with an unexplored backtrack choice, until none remain or the
  schedule budget runs out.
* Sleep sets carry ``{client: footprint}`` of already-explored
  siblings into each child state (dropping entries whose footprint is
  dependent with the step taken); a continuation whose every enabled
  client is asleep is provably redundant and is pruned.

Independence relation
---------------------

Two steps are *dependent* iff their footprints share a resource in
incompatible access modes (the lock compatibility matrix — so two IX
holders of the same root slot commute, two X writers of one page do
not).  A footprint collects, per step: lock acquire/upgrade/release/
wait events (decoded resource + mode), arena page stores (``("page",
n)`` in X), named-root stores (``("root", slot)`` in X), OCC read-set
events (S) and version publishes (X).  Stores to the shared redo log
and its commit word are deliberately *excluded*: the log is an
implementation detail of durability, every commit appends to it, and
treating those appends as conflicts would make all commit steps
pairwise dependent — collapsing DPOR back to naive enumeration.  Two
transactions over disjoint data commute semantically (their committed
arena state is order-independent), which is exactly the equivalence
the serializability oracle double-checks per schedule.

Budgets and pruning
-------------------

State explosion is capped three ways: a schedule budget (``budget``
executions, complete or pruned), a per-schedule step budget
(``max_steps``), and state-hash dedup — each completed schedule's
``(commit order, committed arena scan)`` is digested, and the
serializability oracle runs only once per distinct digest.  The
schedule × crash-point product mode re-runs bounded crash sweeps with
the explored schedule *forced*, at the first ``crash_schedules``
most-distinct explored schedules (one per distinct state digest).

Findings
--------

* TC101-TC111 from the riding :class:`TraceChecker` (per schedule);
* ``EX000`` — an engine exception or scheduler failure under an
  explored (legal) schedule;
* ``EX001`` — a committed state that differs from the serial replay
  of its own commit order (serializability violation);
* ``EX002`` — a crash-sweep violation under a forced explored
  schedule (the product mode).

Findings are deduplicated by key across schedules and reported
sorted, so two identical explorations are byte-identical — the
explorer is itself subject to the repo's determinism contract.
"""

import zlib

from repro.analysis.findings import Finding
from repro.analysis.tracecheck import TraceChecker
from repro.core import SystemConfig, open_engine
from repro.core.locking import (
    _COMPATIBLE, _upgrade, LOCK_S, LOCK_X, decode_lock,
)
from repro.core.scheduler import (
    RetriesExhausted, Scheduler, SchedulerError, _ops_of,
)
from repro.obs import trace as ev

#: Arena geometry for exploration runs: small pages, small workloads.
_SMALL_CONFIG = dict(
    npages=128, page_size=512, log_bytes=16384,
    heap_bytes=1 << 20, dram_bytes=64 * 512,
)

#: Invariants armed on every explored schedule.  ``live`` is out of
#: scope (its per-transaction live-range snapshots are invalidated by
#: interleaving, exactly as in the scheduled corpora).
EXPLORE_INVARIANTS = (
    "flush", "atomic", "twopl", "snapshot", "occ", "lockset", "cache",
)

#: Adversarial schedules legitimately force more aborts than the
#: default retry policy expects (the explorer may schedule the same
#: loser over and over); a generous budget keeps retry exhaustion out
#: of the findings unless something is genuinely livelocked.
_MAX_RETRIES = 50

DEFAULT_BUDGET = 256
DEFAULT_MAX_STEPS = 400

#: Store-header layout (== repro.storage.pagestore).
_ROOTS_OFF = 16
_N_ROOT_SLOTS = 12


class ExplorationError(Exception):
    """The explorer observed nondeterministic re-execution (a replayed
    prefix produced a different enabled set) — a bug, not a finding."""


class _SleepBlocked(Exception):
    """Every enabled client is in the sleep set: this continuation is
    provably redundant (covered by an already-explored schedule)."""


class _StepBudget(Exception):
    """The per-schedule step budget ran out."""


# ----------------------------------------------------------------------
# Footprints and the independence relation
# ----------------------------------------------------------------------

def _merge(footprint, resource, mode):
    held = footprint.get(resource)
    footprint[resource] = mode if held is None else _upgrade(held, mode)


def _footprint(events, base, page_size, npages):
    """The resources one step touched, with their strongest access
    modes.  See the module docstring for what is (and deliberately is
    not) included.

    A step that ends in a transaction abort gets a *wildcard* entry
    ("*"): the failed acquire that caused the abort raises before it
    can trace the contended resource, so the step's true conflict set
    is unknowable from the trace — treating it as dependent with
    everything keeps sleep sets and backtracking sound (a sleeping
    sibling is always woken, and the race analysis backtracks
    conservatively) at the cost of exploring abort/retry orderings
    naively."""
    footprint = {}
    end = base + npages * page_size
    for _seq, _t, kind, a, b in events:
        if kind == ev.TXN_ABORT:
            footprint["*"] = LOCK_X
        elif kind == ev.STORE:
            if a < base or a + max(b, 1) > end:
                continue  # log/commit-word/DRAM: excluded by design
            page_no = (a - base) // page_size
            if page_no == 0:
                offset = a - base
                if _ROOTS_OFF <= offset < _ROOTS_OFF + 4 * _N_ROOT_SLOTS:
                    _merge(footprint,
                           ("root", (offset - _ROOTS_OFF) // 4), LOCK_X)
                continue  # allocator words: single-word-atomic contract
            _merge(footprint, ("page", page_no), LOCK_X)
        elif kind in (ev.LOCK_ACQUIRE, ev.LOCK_UPGRADE,
                      ev.LOCK_RELEASE, ev.LOCK_WAIT):
            resource, mode = decode_lock(b)
            _merge(footprint, resource, mode)
        elif kind == ev.OCC_READ:
            _merge(footprint, decode_lock(b)[0], LOCK_S)
        elif kind == ev.VERSION_PUBLISH:
            _merge(footprint, decode_lock(a)[0], LOCK_X)
    return footprint


def _dependent(fp_a, fp_b):
    """Two footprints conflict iff they share a resource in
    incompatible modes (the lock compatibility matrix).  A wildcard
    entry (an aborted step — see ``_footprint``) conflicts with every
    non-empty footprint."""
    if ("*" in fp_a and fp_b) or ("*" in fp_b and fp_a):
        return True
    if len(fp_b) < len(fp_a):
        fp_a, fp_b = fp_b, fp_a
    for resource, mode in fp_a.items():
        other = fp_b.get(resource)
        if other is not None and other not in _COMPATIBLE[mode]:
            return True
    return False


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def _client_spec(workload):
    """An item list, or ``{"items": [...], "isolation": mode}`` (the
    same shapes :mod:`repro.testing.crashsim` accepts)."""
    if isinstance(workload, dict):
        isolation = workload.get("isolation")
        if isolation is None:
            isolation = (
                "read_only" if workload.get("read_only") else "locked"
            )
        return workload["items"], isolation
    return workload, "locked"


def default_workloads(clients=2, ops=2):
    """The default exploration target: ``clients`` locked writers,
    each running one multi-op transaction over a shared hot key (so
    transactions hold locks across steps and genuinely conflict) plus
    per-client exclusive inserts."""
    payload = bytes(range(40))
    workloads = []
    for index in range(clients):
        txn_ops = [
            ("insert", b"ex%d-%d" % (index, op), payload)
            for op in range(max(ops - 1, 1))
        ]
        txn_ops.append(("insert", b"shared", payload))
        workloads.append([("txn", txn_ops)])
    return workloads


# ----------------------------------------------------------------------
# The prefix tree
# ----------------------------------------------------------------------

class _Node:
    """One state of the schedule tree, keyed by the choice path that
    reaches it."""

    __slots__ = ("enabled", "done", "backtrack", "sleep")

    def __init__(self, enabled, sleep, backtrack):
        self.enabled = enabled    # tuple of client indices, sorted
        self.done = {}            # choice -> footprint of that step
        self.backtrack = backtrack  # set of choices still to explore
        self.sleep = sleep        # {choice: footprint} — redundant here


class _ForcedReplay:
    """A pick strategy that forces a recorded choice path, then falls
    back to the default first-ready choice.  Used by the schedule ×
    crash-point product mode: pre-crash execution is deterministic, so
    the forced picks always find their client."""

    __slots__ = ("_path", "_pos")

    def __init__(self, path):
        self._path = path
        self._pos = 0

    def __call__(self, scheduler, ready):
        if self._pos < len(self._path):
            want = self._path[self._pos]
            self._pos += 1
            for client in ready:
                if client.index == want:
                    return client
        return ready[0]


# ----------------------------------------------------------------------
# The explorer
# ----------------------------------------------------------------------

class Explorer:
    """DFS + DPOR over the schedule space of one multi-client workload.

    ``reduction=False`` disables both the race analysis and the sleep
    sets and seeds every state's backtrack set with its full enabled
    set — naive exhaustive DFS, kept as the reference the reduction is
    measured (and tested) against.
    """

    def __init__(self, scheme="fast", *, workloads=None, preload=(),
                 config=None, budget=DEFAULT_BUDGET,
                 max_steps=DEFAULT_MAX_STEPS, reduction=True, oracle=True,
                 crash_schedules=0, crash_stride=7, crash_max_points=10,
                 invariants=EXPLORE_INVARIANTS):
        self.scheme = scheme
        self.config = config or SystemConfig(**_SMALL_CONFIG)
        if self.config.group_commit:
            # An epoch closer applies *other* members' headers at its
            # own commit — per-step attribution (and with it TC110)
            # does not compose with grouped visibility.
            raise ExplorationError(
                "exploration requires group_commit=False"
            )
        self.workloads = (
            workloads if workloads is not None else default_workloads()
        )
        self.preload = list(preload)
        self.budget = budget
        self.max_steps = max_steps
        self.reduction = reduction
        self.oracle = oracle
        self.crash_schedules = crash_schedules
        self.crash_stride = crash_stride
        self.crash_max_points = crash_max_points
        self.invariants = invariants
        # -- the persistent prefix tree -------------------------------
        self._nodes = {}          # path tuple -> _Node
        self._order = []          # node paths in creation (DFS) order
        # -- results --------------------------------------------------
        self.findings = []
        self._finding_keys = set()
        self._digests = {}        # state digest -> first schedule path
        self.stats = {
            "attempts": 0,        # executions, complete or pruned
            "schedules": 0,       # completed schedules
            "steps": 0,           # scheduler steps executed, total
            "pruned_sleep": 0,    # executions pruned by sleep sets
            "pruned_state": 0,    # oracle runs skipped (digest seen)
            "truncated": 0,       # executions over the step budget
            "starved": 0,         # executions ended by retry exhaustion
            "max_frontier": 0,    # peak count of states with pending
            "crash_points": 0,    # crash-product points executed
            "budget_exhausted": False,
        }

    # -- findings ----------------------------------------------------------

    def _add_finding(self, finding):
        if finding.key not in self._finding_keys:
            self._finding_keys.add(finding.key)
            self.findings.append(finding)

    # -- tree plumbing -----------------------------------------------------

    def _node_at(self, path, enabled, sleep):
        node = self._nodes.get(path)
        if node is None:
            if self.reduction:
                node = _Node(enabled, dict(sleep), set())
            else:
                node = _Node(enabled, {}, set(enabled))
            self._nodes[path] = node
            self._order.append(path)
        elif node.enabled != enabled:
            raise ExplorationError(
                "nondeterministic re-execution at %r: enabled %r, "
                "previously %r" % (path, enabled, node.enabled)
            )
        return node

    def _pending_of(self, node):
        return node.backtrack.difference(node.done, node.sleep)

    def _next_forced(self):
        """The deepest state with an unexplored backtrack choice (and
        the frontier size, for the stats)."""
        forced = None
        frontier = 0
        for path in reversed(self._order):
            pending = self._pending_of(self._nodes[path])
            if pending:
                frontier += 1
                if forced is None:
                    forced = path + (min(pending),)
        self.stats["max_frontier"] = max(self.stats["max_frontier"], frontier)
        return forced

    # -- one execution -----------------------------------------------------

    def _execute(self, forced):
        """Run one schedule: forced prefix, sleep-aware continuation.
        Returns the per-step records for the race analysis."""
        engine = open_engine(self.config, scheme=self.scheme)
        for key, value in self.preload:
            engine.insert(key, value, replace=True)
        checker = TraceChecker.for_engine(engine, invariants=self.invariants)
        trace = engine.obs.trace
        config = self.config
        state = {
            "path": [],
            "steps": [],      # (parent path, choice, footprint, enabled)
            "cursor": trace.seq,   # skip the preload's events
            "next_sleep": {},
        }
        checker._cursor = trace.seq

        def pick(_scheduler, ready):
            path = tuple(state["path"])
            enabled = tuple(sorted(client.index for client in ready))
            node = self._node_at(path, enabled, state["next_sleep"])
            position = len(path)
            if position < len(forced):
                choice = forced[position]
            else:
                # Default continuation: the first *awake* client in the
                # scheduler's own pick order (ready is pre-sorted by
                # (ready_at, last_step, index)) — following the default
                # order keeps retry backoff meaningful, so a freshly
                # aborted client yields to the conflict winner instead
                # of re-aborting until its retries run out.
                choice = None
                for client in ready:
                    if client.index not in node.sleep:
                        choice = client.index
                        break
                if choice is None:
                    raise _SleepBlocked
            for client in ready:
                if client.index == choice:
                    state["path"].append(choice)
                    return client
            raise ExplorationError(
                "forced choice %d not enabled at %r (enabled %r)"
                % (choice, path, enabled)
            )

        def on_step(_client):
            batch = trace.events(since_seq=state["cursor"])
            if batch:
                state["cursor"] = batch[-1][0]
            checker.feed(batch)
            footprint = _footprint(
                batch, config.store_base, config.page_size, config.npages,
            )
            choice = state["path"][-1]
            parent = tuple(state["path"][:-1])
            node = self._nodes[parent]
            if choice not in node.done:
                node.done[choice] = footprint
            # The child's sleep set: already-explored siblings and the
            # inherited sleepers survive iff independent of this step.
            sleep = {}
            if self.reduction:
                for other, other_fp in list(node.sleep.items()) + [
                    (d, fp) for d, fp in node.done.items() if d != choice
                ]:
                    if other != choice and not _dependent(other_fp, footprint):
                        sleep[other] = other_fp
            state["next_sleep"] = sleep
            state["steps"].append((parent, choice, footprint, node.enabled))
            if len(state["steps"]) > self.max_steps:
                raise _StepBudget

        scheduler = Scheduler(
            engine, max_retries=_MAX_RETRIES,
            pick_strategy=pick, on_step=on_step,
        )
        for workload in self.workloads:
            items, isolation = _client_spec(workload)
            scheduler.add_client(items, isolation=isolation)

        completed = False
        merge_checker = True
        try:
            scheduler.run()
            completed = True
        except _SleepBlocked:
            self.stats["pruned_sleep"] += 1
            merge_checker = False  # the prefix is covered elsewhere
        except _StepBudget:
            self.stats["truncated"] += 1
        except ExplorationError:
            raise
        except RetriesExhausted:
            # Scheduling-induced livelock: an adversarial prefix can
            # starve any client past the retry cap.  A liveness cap,
            # not a safety violation — the schedule is truncated.
            self.stats["starved"] += 1
        except SchedulerError as err:
            self._add_finding(Finding(
                "EX000",
                "scheduler failed under an explored schedule: %s" % err,
            ))
        except Exception as err:
            self._add_finding(Finding(
                "EX000",
                "engine exception under an explored schedule: %s: %s"
                % (type(err).__name__, err),
            ))
        self.stats["steps"] += len(state["steps"])
        if merge_checker:
            for finding in checker.finish():
                self._add_finding(finding)
        if completed:
            self.stats["schedules"] += 1
            self._check_schedule(engine, scheduler, tuple(state["path"]))
        return state["steps"]

    # -- per-schedule oracle -----------------------------------------------

    def _check_schedule(self, engine, scheduler, path):
        """Digest the committed state; run the serializability oracle
        once per distinct digest."""
        if not self.oracle:
            return
        final = tuple(sorted(engine.scan()))
        order = tuple(scheduler.commit_order)
        digest = zlib.crc32(repr((order, final)).encode())
        if digest in self._digests:
            self.stats["pruned_state"] += 1
            return
        self._digests[digest] = path
        serial = self._serial_state(order)
        if serial != final:
            self._add_finding(Finding(
                "EX001",
                "schedule %s: committed state diverges from the serial "
                "replay of its commit order %s (%d vs %d records)"
                % (list(path), list(order), len(final),
                   len(serial) if isinstance(serial, tuple) else -1),
            ))

    def _serial_state(self, commit_order):
        """The committed items replayed serially, in commit order, on a
        fresh engine — the one state a serializable schedule may
        produce."""
        engine = open_engine(self.config, scheme=self.scheme)
        for key, value in self.preload:
            engine.insert(key, value, replace=True)
        items_of = {}
        for index, workload in enumerate(self.workloads):
            items, _isolation = _client_spec(workload)
            items_of["c%d" % index] = items
        try:
            for name, item_idx in commit_order:
                txn = engine.transaction()
                for kind, key, value in _ops_of(items_of[name][item_idx]):
                    if kind == "insert":
                        txn.insert(key, value, replace=True)
                    elif kind == "update":
                        txn.update(key, value)
                    elif kind == "delete":
                        txn.delete(key)
                txn.commit()
        except Exception as err:
            return ("serial replay failed",
                    "%s: %s" % (type(err).__name__, err))
        return tuple(sorted(engine.scan()))

    # -- race analysis -----------------------------------------------------

    def _analyze_races(self, steps):
        """Classic DPOR backtracking: for each step *j*, find the last
        earlier step of every *other* client whose footprint is
        dependent with *j*'s, and make *j*'s chooser explorable there."""
        for j, (_path_j, chooser_j, fp_j, _enabled_j) in enumerate(steps):
            if not fp_j:
                continue
            last_dependent = {}
            for i in range(j):
                _p, chooser_i, fp_i, _e = steps[i]
                if chooser_i != chooser_j and _dependent(fp_i, fp_j):
                    last_dependent[chooser_i] = i
            for other in sorted(last_dependent):
                i = last_dependent[other]
                path_i, _chooser_i, _fp_i, enabled_i = steps[i]
                node = self._nodes[path_i]
                if chooser_j in enabled_i:
                    node.backtrack.add(chooser_j)
                else:
                    node.backtrack.update(enabled_i)

    # -- schedule × crash-point product --------------------------------------

    def _crash_product(self):
        """Bounded crash sweeps with the most-distinct explored
        schedules *forced*: one schedule per distinct committed-state
        digest, first ``crash_schedules`` in discovery order."""
        if not self.crash_schedules:
            return
        from repro.testing.crashsim import (
            run_scheduler_to_crash_point, scheduler_crash_points_in,
        )
        paths = list(self._digests.values())[:self.crash_schedules]
        for path in paths:
            def factory(path=path):
                return _ForcedReplay(path)
            total = scheduler_crash_points_in(
                self.scheme, self.workloads, config=self.config,
                pick_strategy_factory=factory,
            )
            budgets = list(range(1, total + 1, self.crash_stride))
            if len(budgets) > self.crash_max_points:
                step = max(1, len(budgets) // self.crash_max_points)
                budgets = budgets[::step]
            for budget in budgets:
                result = run_scheduler_to_crash_point(
                    self.scheme, self.workloads, budget,
                    config=self.config, seed=budget,
                    pick_strategy_factory=factory,
                )
                self.stats["crash_points"] += 1
                if not result.ok:
                    self._add_finding(Finding(
                        "EX002",
                        "crash at budget %d under forced schedule %s "
                        "violates the committed prefix: %s"
                        % (budget, list(path),
                           "; ".join(result.violations)),
                    ))

    # -- the DFS loop ------------------------------------------------------

    def run(self):
        """Explore to completion (or budget); returns the result dict."""
        forced = ()
        while True:
            if self.stats["attempts"] >= self.budget:
                self.stats["budget_exhausted"] = True
                break
            self.stats["attempts"] += 1
            steps = self._execute(forced)
            if self.reduction:
                self._analyze_races(steps)
            nxt = self._next_forced()
            if nxt is None:
                break
            forced = nxt
        self._crash_product()
        return self.result()

    def publish(self, obs):
        """File the exploration's counters into an
        :class:`~repro.obs.context.Observability` handle (schema names
        ``explore.*``), so snapshots/reports carry the exploration
        alongside the engine counters."""
        races = sum(1 for f in self.findings if f.rule == "TC110")
        obs.inc("explore.schedules", self.stats["schedules"])
        obs.inc("explore.attempts", self.stats["attempts"])
        obs.inc("explore.steps", self.stats["steps"])
        obs.inc("explore.nodes", len(self._nodes))
        obs.inc("explore.states", len(self._digests))
        obs.inc("explore.pruned.sleep", self.stats["pruned_sleep"])
        obs.inc("explore.pruned.state", self.stats["pruned_state"])
        obs.inc("explore.truncated", self.stats["truncated"])
        obs.inc("explore.starved", self.stats["starved"])
        obs.inc("explore.races", races)
        obs.inc("explore.findings", len(self.findings))
        obs.inc("explore.crash_points", self.stats["crash_points"])
        gauge = max(
            obs.registry.gauge("explore.max_frontier").value,
            self.stats["max_frontier"],
        )
        obs.registry.set_gauge("explore.max_frontier", gauge)

    def result(self):
        """A JSON-ready, deterministic summary."""
        self.findings.sort(key=lambda f: (f.rule, f.message))
        races = [f for f in self.findings if f.rule == "TC110"]
        out = {
            "scheme": self.scheme,
            "clients": len(self.workloads),
            "reduction": self.reduction,
            "budget": self.budget,
            "distinct_states": len(self._digests),
            "nodes": len(self._nodes),
            "races": [f.render() for f in races],
            "findings": [f.render() for f in self.findings],
        }
        out.update(self.stats)
        return out


def explore(scheme="fast", **kwargs):
    """One-shot exploration; returns the result dict (see
    :meth:`Explorer.result`)."""
    return Explorer(scheme, **kwargs).run()


__all__ = [
    "Explorer", "ExplorationError", "explore", "default_workloads",
    "EXPLORE_INVARIANTS", "DEFAULT_BUDGET",
]
