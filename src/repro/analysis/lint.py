"""Static lint: ``ast``-based persistence-discipline rules PM001-PM006.

Every rule is repo-specific — it encodes one invariant of the paper's
ordering argument (or of this reproduction's determinism contract) as
a syntactic check:

``PM001``
    Raw PM store calls (``pm.write`` / ``write_u16/u32/u64`` /
    ``_write_fixed``) outside the approved wrapper layers.  Record
    bytes, headers, and log frames must flow through the storage/wal/
    btree wrappers so the flush discipline stays in one place; engine
    and policy code reaching for the arena directly is flagged.
``PM002``
    A raw store in core scheme code with no ``persist`` /
    ``flush_range`` / ``clflush`` / ``clwb`` after it (and before any
    commit-mark emission in the same function).  Intraprocedural,
    flag-and-allowlist: a store the commit mark depends on that is
    never flushed would break the paper's ordering theorem.
``PM003``
    Nondeterminism sources in simulation-path modules: host wall-clock
    reads, module-level ``random.*`` calls (a seeded ``random.Random``
    is fine), and iteration directly over set displays/constructors —
    order-sensitive code over sets of pages breaks byte-identical
    replay.  CLI entry points (``__main__.py``) may read wall time.
``PM004``
    Literal metric names not registered in the ``repro.obs.schema``
    inventory: an unregistered name is a silent typo'd counter.
``PM005``
    Bare ``except:`` and handlers that swallow ``LockConflict`` /
    ``LockError`` / broad exceptions with a body of only ``pass`` —
    a swallowed lock error leaks held locks.
``PM006``
    Direct ``LockManager.acquire`` calls outside ``core/locking.py``.
    The only structurally safe ways to take a lock are
    ``LockingContext`` (locks released by the session's commit/abort
    on every path) and ``commit_scope`` (a ``with`` block) — a bare
    ``.acquire`` anywhere else has no release-on-all-paths guarantee,
    and a leaked lock deadlocks every later schedule (the exact bug
    class the schedule-space explorer hunts dynamically; PM006 is its
    static shadow).

Suppress a deliberate violation with ``# repro: allow[RULE] why`` on
the flagged line (or the line above).
"""

import ast
import os

from repro.analysis.findings import (
    Finding, is_suppressed, parse_allows, unjustified_allows,
)
from repro.obs import schema

RULES = ("PM001", "PM002", "PM003", "PM004", "PM005", "PM006")

#: Attribute names that issue a raw store on the arena.
_STORE_METHODS = frozenset(
    {"write", "write_u16", "write_u32", "write_u64", "_write_fixed"}
)
#: Attribute names that flush/persist stored lines.
_FLUSH_METHODS = frozenset(
    {"persist", "flush_range", "clflush", "clwb"}
)
#: Receiver tails that denote the PM arena (``self.pm``, ``pm``,
#: ``engine.pm``...).  ``dram`` receivers are volatile and exempt.
_PM_RECEIVERS = frozenset({"pm", "memory", "arena"})

#: First path component (under ``repro/``) of the approved wrapper
#: layers: raw stores ARE these modules' job.
_WRAPPER_LAYERS = frozenset(
    {"pm", "storage", "wal", "btree", "htm", "hashindex", "testing"}
)
#: Modules whose functions PM002 checks (the commit schemes).
_CORE_LAYERS = frozenset({"core"})

#: Wall-clock reads (module attr -> flagged names).
_WALLCLOCK = {
    "time": {"time", "monotonic", "perf_counter", "process_time"},
    "datetime": {"now", "utcnow", "today"},
}
#: Module-level ``random.*`` functions (unseeded global PRNG).
_RANDOM_FUNCS = frozenset({
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "seed", "uniform", "getrandbits",
})
#: Registry mutators whose first literal argument is a metric name.
_METRIC_METHODS = frozenset({
    "inc", "counter", "gauge", "histogram", "set_gauge", "observe",
    "value",
})
#: Exception names PM005 refuses to see swallowed.
_SWALLOW_NAMES = frozenset({
    "LockConflict", "LockError", "Exception", "BaseException",
})

#: Receiver tails that denote the lock manager (``self._locks``,
#: ``engine.lock_manager``...), for PM006.
_LOCK_RECEIVERS = frozenset({"lock_manager", "locks", "_locks"})
#: The one module allowed to call ``.acquire`` on it: the module that
#: *defines* the release-on-all-paths wrappers.
_LOCKING_MODULE = "core/locking.py"


def _receiver_tail(node):
    """The last name of a call receiver chain (``self.pm`` -> "pm")."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None, None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr, func.attr
    if isinstance(value, ast.Name):
        return value.id, func.attr
    return None, func.attr


def _is_pm_store(node):
    receiver, method = _receiver_tail(node)
    return (
        method in _STORE_METHODS
        and receiver is not None
        and receiver in _PM_RECEIVERS
    )


def _is_pm_flush(node):
    receiver, method = _receiver_tail(node)
    return (
        method in _FLUSH_METHODS
        and receiver is not None
        and receiver in _PM_RECEIVERS
    )


def _is_commit_mark(node):
    """A commit-mark emission: ``<log|wal>.commit(...)`` or the RTM
    in-place publish ``<page>.commit_pending_inplace(...)``."""
    receiver, method = _receiver_tail(node)
    if method == "commit_pending_inplace":
        return True
    return method == "commit" and receiver in ("log", "wal")


def _layer_of(module):
    """First path component of a ``repro/``-relative module path."""
    return module.split("/", 1)[0] if "/" in module else ""


def _literal_names(node):
    """Metric-name string literals in a call's first argument
    (a constant, or an IfExp choosing between constants)."""
    if not node.args:
        return []
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return [(arg.value, arg.lineno)]
    if isinstance(arg, ast.IfExp):
        names = []
        for side in (arg.body, arg.orelse):
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                names.append((side.value, side.lineno))
        return names
    return []


def _iterates_set(iter_node):
    """True when a ``for``/comprehension iterable is syntactically a
    set: a set display, a set comprehension, or a ``set()`` /
    ``frozenset()`` call."""
    if isinstance(iter_node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
        return iter_node.func.id in ("set", "frozenset")
    return False


def _swallows(handler):
    """True when an except handler catches a lock/broad exception and
    its body does nothing but ``pass``/``...``/``continue``."""
    htype = handler.type
    if htype is None:
        return True  # bare except is always flagged
    names = []
    for node in ([htype.elts] if isinstance(htype, ast.Tuple) else [[htype]])[0]:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    if not any(name in _SWALLOW_NAMES for name in names):
        return False
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


class _Visitor(ast.NodeVisitor):
    """One pass collecting the raw material for every rule."""

    def __init__(self):
        self.stores = []        # (node, enclosing function frame)
        self.flushes = []
        self.marks = []
        self.wallclock = []
        self.randoms = []
        self.set_iters = []
        self.metric_names = []
        self.handlers = []
        self.lock_acquires = []
        self._frames = []       # stack of function-def frame dicts

    # -- function frames (for the intraprocedural PM002) ---------------

    def _enter_function(self, node):
        frame = {"name": node.name, "stores": [], "flushes": [], "marks": []}
        self._frames.append(frame)
        self.generic_visit(node)
        self._frames.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    # -- collection ----------------------------------------------------

    def visit_Call(self, node):
        frame = self._frames[-1] if self._frames else None
        if _is_pm_store(node):
            self.stores.append((node, frame))
            if frame is not None:
                frame["stores"].append(node)
        elif _is_pm_flush(node):
            self.flushes.append(node)
            if frame is not None:
                frame["flushes"].append(node)
        if _is_commit_mark(node):
            self.marks.append(node)
            if frame is not None:
                frame["marks"].append(node)
        receiver, method = _receiver_tail(node)
        if receiver in _WALLCLOCK and method in _WALLCLOCK[receiver]:
            self.wallclock.append(node)
        if receiver == "random" and method in _RANDOM_FUNCS:
            self.randoms.append(node)
        if method in _METRIC_METHODS:
            self.metric_names.extend(_literal_names(node))
        if method == "acquire" and receiver in _LOCK_RECEIVERS:
            self.lock_acquires.append(node)
        self.generic_visit(node)

    def visit_For(self, node):
        if _iterates_set(node.iter):
            self.set_iters.append(node)
        self.generic_visit(node)

    def _visit_comp(self, node):
        for gen in node.generators:
            if _iterates_set(gen.iter):
                self.set_iters.append(node)
                break
        self.generic_visit(node)

    visit_ListComp = visit_SetComp = visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_ExceptHandler(self, node):
        self.handlers.append(node)
        self.generic_visit(node)


def lint_source(source, *, file, module):
    """Lint one module's source text.

    ``module`` is the ``repro/``-relative path (e.g. ``core/fast.py``)
    that decides rule scoping; ``file`` is the provenance path reported
    in findings.
    """
    try:
        tree = ast.parse(source, filename=file)
    except SyntaxError as err:
        return [Finding(
            "PM000", "syntax error: %s" % err, file=file,
            line=err.lineno or 0,
        )]
    allows = parse_allows(source)
    visitor = _Visitor()
    visitor.visit(tree)
    layer = _layer_of(module)
    is_cli = os.path.basename(module) == "__main__.py"
    findings = list(unjustified_allows(allows, file))

    def add(rule, line, message):
        if not is_suppressed(allows, rule, line):
            findings.append(Finding(rule, message, file=file, line=line))

    # PM001 — raw stores outside the wrapper layers.
    if layer not in _WRAPPER_LAYERS:
        for node, _frame in visitor.stores:
            _, method = _receiver_tail(node)
            add("PM001", node.lineno,
                "raw PM store %s() outside the approved wrapper layers "
                "(pm/storage/wal/btree/htm/hashindex/testing)" % method)

    # PM002 — store with no flush on the path to the commit mark
    # (core scheme modules only, intraprocedural by line position).
    if layer in _CORE_LAYERS:
        seen_frames = []
        for _node, frame in visitor.stores:
            if frame is None or frame in seen_frames:
                continue
            seen_frames.append(frame)
            mark_line = min(
                (m.lineno for m in frame["marks"]), default=None
            )
            for store in frame["stores"]:
                flushed = any(
                    flush.lineno >= store.lineno
                    and (mark_line is None or flush.lineno <= mark_line
                         or store.lineno > mark_line)
                    for flush in frame["flushes"]
                )
                if not flushed:
                    add("PM002", store.lineno,
                        "PM store in %s() has no flush_range/clflush "
                        "before the enclosing commit-mark emission"
                        % frame["name"])

    # PM003 — nondeterminism in simulation-path modules.
    if not is_cli:
        for node in visitor.wallclock:
            receiver, method = _receiver_tail(node)
            add("PM003", node.lineno,
                "host wall-clock read %s.%s() in a simulation-path "
                "module (use the SimClock)" % (receiver, method))
        for node in visitor.randoms:
            _, method = _receiver_tail(node)
            add("PM003", node.lineno,
                "module-level random.%s() (unseeded global PRNG); use "
                "a seeded random.Random(seed)" % method)
        for node in visitor.set_iters:
            add("PM003", node.lineno,
                "iteration directly over a set; order-sensitive code "
                "must sort (sorted(...)) for deterministic replay")

    # PM004 — unregistered metric names.
    for name, line in visitor.metric_names:
        if not schema.is_registered(name):
            add("PM004", line,
                "metric name %r is not registered in repro.obs.schema"
                % name)

    # PM005 — bare except / swallowed lock errors.
    for handler in visitor.handlers:
        if _swallows(handler):
            label = (
                "bare except:" if handler.type is None
                else "swallowed exception handler (body is only pass)"
            )
            add("PM005", handler.lineno, label)

    # PM006 — direct lock acquisition outside core/locking.py.
    if module != _LOCKING_MODULE:
        for node in visitor.lock_acquires:
            receiver, _method = _receiver_tail(node)
            add("PM006", node.lineno,
                "direct %s.acquire() outside LockingContext/commit_scope "
                "(no release-on-all-paths guarantee)" % receiver)

    findings.sort(key=lambda f: (f.file, f.line or 0, f.rule))
    return findings


def _module_path(path):
    """The ``repro/``-relative module path of a source file (falls
    back to the basename for files outside the package)."""
    parts = os.path.normpath(path).split(os.sep)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return parts[-1]


def iter_sources(paths):
    """Yield (file, module) pairs for every ``.py`` under ``paths``."""
    for path in paths:
        if os.path.isfile(path):
            yield path, _module_path(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs.sort()
            for name in sorted(files):
                if name.endswith(".py"):
                    full = os.path.join(root, name)
                    yield full, _module_path(full)


def lint_paths(paths):
    """Lint every Python file under ``paths``; returns all findings."""
    findings = []
    for file, module in iter_sources(paths):
        with open(file) as fh:
            source = fh.read()
        findings.extend(lint_source(source, file=file, module=module))
    return findings
