"""``repro.analysis``: persistence-ordering & lock-discipline analyzer.

Two cooperating passes over the reproduction:

* a **static lint pass** (:mod:`repro.analysis.lint`) — ``ast``-based
  rules PM001-PM005 over ``src/repro`` enforcing the paper's write
  discipline at the source level (raw stores stay inside wrapper
  modules, stores are flushed before commit marks, simulation code is
  deterministic, metric names are schema-registered, lock errors are
  never swallowed);
* a **dynamic invariant checker** (:mod:`repro.analysis.tracecheck`) —
  a :class:`TraceChecker` consuming the ``TraceRecorder`` event ring
  and asserting, per committed transaction, the ordering theorem the
  paper argues in Section 4.4: every dirtied log line is flushed and
  fenced before the ≤8-byte commit mark, the mark itself is a single
  atomic store, no pre-commit store lands on live (committed-reachable)
  bytes in FAST/FAST⁺ page space, and every session obeys strict 2PL.

``python -m repro.analysis --lint --trace-check`` runs both; findings
carry file:line / trace-offset provenance, honour ``# repro:
allow[RULE]`` suppressions, and are compared against a committed
baseline (which this repo keeps empty).
"""

from repro.analysis.findings import Finding, load_baseline, new_findings
from repro.analysis.lint import lint_paths
from repro.analysis.tracecheck import TraceChecker

__all__ = [
    "Finding", "TraceChecker", "lint_paths",
    "load_baseline", "new_findings",
]
