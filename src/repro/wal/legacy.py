"""Legacy block-device recovery schemes (paper Section 2.1, Figure 1).

Traditional DBMSs running on block storage protect themselves with a
rollback journal or a write-ahead log, and the file system underneath
journals its own metadata — the "journaling of journal" anomaly.  This
module reproduces those write paths at byte granularity so the
motivation experiment can compare the amount of I/O per committed
transaction against the PM-native schemes.

All three models are driven by the *same* per-transaction dirty-page
counts recorded from a real engine run, so the comparison shares one
workload.
"""

from dataclasses import dataclass, field


@dataclass
class BlockDevice:
    """Counts block-granularity writes and syncs."""

    block_size: int = 4096
    writes: int = 0
    bytes_written: int = 0
    fsyncs: int = 0

    def write_blocks(self, count):
        self.writes += count
        self.bytes_written += count * self.block_size

    def write_bytes(self, nbytes):
        """A write padded up to whole blocks (what the kernel issues)."""
        blocks = max(1, -(-nbytes // self.block_size))
        self.write_blocks(blocks)

    def fsync(self):
        self.fsyncs += 1


@dataclass
class FileSystemModel:
    """EXT4-ordered-style metadata journaling on top of the device.

    Every fsync of a file that grew or changed metadata writes a
    journal descriptor + commit block (the paper cites [13, 16] for
    this amplification).
    """

    device: BlockDevice
    journal_blocks_per_fsync: int = 2
    journal_bytes: int = 0

    def fsync(self):
        self.device.fsync()
        self.device.write_blocks(self.journal_blocks_per_fsync)
        self.journal_bytes += self.journal_blocks_per_fsync * self.device.block_size


class JournalingRun:
    """SQLite rollback-journal mode (paper Figure 1a).

    Per commit of D dirty pages: D journal (before-image) page writes +
    fsync, D database page writes + fsync, journal truncate + fsync —
    each fsync amplified by file-system journaling.
    """

    def __init__(self, page_size=4096):
        self.device = BlockDevice(block_size=page_size)
        self.fs = FileSystemModel(self.device)

    def commit(self, dirty_pages):
        self.device.write_blocks(dirty_pages)   # journal before-images
        self.fs.fsync()
        self.device.write_blocks(dirty_pages)   # database pages
        self.fs.fsync()
        self.device.write_blocks(1)             # journal header truncate
        self.fs.fsync()


class WALRun:
    """SQLite WAL mode (paper Figure 1b).

    Per commit: D WAL frame writes (page + frame header) + one fsync;
    a checkpoint copies accumulated pages into the database when the
    WAL exceeds ``checkpoint_frames``.
    """

    FRAME_HEADER = 24  # SQLite WAL frame header bytes

    def __init__(self, page_size=4096, checkpoint_frames=1000):
        self.device = BlockDevice(block_size=page_size)
        self.fs = FileSystemModel(self.device)
        self.checkpoint_frames = checkpoint_frames
        self._pending_frames = 0
        self._pending_pages = set()
        self._counter = 0

    def commit(self, dirty_pages):
        for _ in range(dirty_pages):
            self.device.write_bytes(self.device.block_size + self.FRAME_HEADER)
            self._counter += 1
            self._pending_pages.add(self._counter % 997)
        self._pending_frames += dirty_pages
        self.fs.fsync()
        if self._pending_frames >= self.checkpoint_frames:
            self.device.write_blocks(len(self._pending_pages))
            self.fs.fsync()
            self._pending_frames = 0
            self._pending_pages.clear()


@dataclass
class WriteAmplification:
    """Bytes written per layer for one scheme over one workload."""

    scheme: str
    logical_bytes: int
    storage_bytes: int
    fs_journal_bytes: int = 0
    fsyncs: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def total_bytes(self):
        return self.storage_bytes

    @property
    def amplification(self):
        if not self.logical_bytes:
            return 0.0
        return self.total_bytes / self.logical_bytes


def run_legacy_models(commit_page_counts, *, page_size=4096, record_bytes=64,
                      registry=None):
    """Feed a recorded workload through both legacy schemes.

    Returns ``[WriteAmplification, ...]`` for journaling and WAL modes.
    When ``registry`` (a :class:`repro.obs.MetricsRegistry`) is given,
    each scheme additionally publishes ``legacy.<scheme>.*`` counters
    so figure scripts can read everything from one place.
    """
    logical = record_bytes * len(commit_page_counts)
    results = []
    journaling = JournalingRun(page_size)
    for dirty in commit_page_counts:
        journaling.commit(max(1, dirty))
    results.append(
        WriteAmplification(
            "journaling",
            logical,
            journaling.device.bytes_written,
            fs_journal_bytes=journaling.fs.journal_bytes,
            fsyncs=journaling.device.fsyncs,
        )
    )
    wal = WALRun(page_size)
    for dirty in commit_page_counts:
        wal.commit(max(1, dirty))
    results.append(
        WriteAmplification(
            "wal",
            logical,
            wal.device.bytes_written,
            fs_journal_bytes=wal.fs.journal_bytes,
            fsyncs=wal.device.fsyncs,
        )
    )
    if registry is not None:
        for result in results:
            prefix = "legacy.%s." % result.scheme
            registry.counter(prefix + "logical_bytes").value = result.logical_bytes
            registry.counter(prefix + "storage_bytes").value = result.storage_bytes
            registry.counter(prefix + "fs_journal_bytes").value = (
                result.fs_journal_bytes
            )
            registry.counter(prefix + "fsync").value = result.fsyncs
    return results
