"""Two-phase-commit durability records for sharded deployments.

A cross-shard transaction cannot use the single-shard commit protocol:
each shard's 8-byte commit word *is* that shard's commit mark, so
publishing it on one shard before the global outcome is decided would
let a crash commit half a transaction.  Instead the shard router runs
classic presumed-abort 2PC over two tiny PM records:

:class:`PrepareRegion` (one per shard, after the shard's heap)::

    +0   u32  magic
    +8   u64  prepare word:  low 32 bits = staged frame bytes ("tail"),
              high 32 bits = global transaction id (gtid)
    +16  u64  log sequence number the prepared txn will commit with

A shard *prepares* by writing + flushing + fencing its redo frames
exactly as a normal commit would, then — instead of the commit word —
publishing the prepare word with one 8-byte-atomic store (the seq word
is persisted first, so a valid prepare word always finds a valid seq).
The frames are durable but *invisible*: the shard's log still carries
commit word 0, so a crash before the global decision recovers the
shard to its pre-transaction state for free.

:class:`CoordinatorLog` (one per arena, after the last shard)::

    +0   u32  magic
    +8   u64  decision word:  (gtid << 8) | 1  — commit decision
              (0 = no decision on record)

Presumed abort: only *commit* decisions are ever persisted.  Recovery
finding a prepared shard with no matching decision word aborts it by
clearing the prepare word — the frames become garbage exactly like an
uncommitted single-shard crash.  A prepared shard whose gtid matches
the decision word is in doubt the other way: the coordinator decided
commit, so recovery re-publishes the shard's commit word from the
saved (seq, tail) pair and replays the frames.

The decision word is cleared only after every participant's commit
mark is durable, and recovery always ends with a clear decision word
and clear prepare words — so a single word per region suffices (at
most one cross-shard transaction is ever between decision and
completion, a property the cooperative scheduler guarantees).
"""

_MAGIC_PREPARE = 0x57A6_20C0
_MAGIC_DECISION = 0x57A6_20C1

_OFF_MAGIC = 0
_OFF_WORD = 8
_OFF_SEQ = 16

#: Bytes each region needs (rounded up to a cache line by callers).
PREPARE_REGION_BYTES = 24
COORDINATOR_BYTES = 16


class PrepareRegion:
    """One shard's prepare record at ``base`` of a PM arena."""

    def __init__(self, pm, base):
        self.pm = pm
        self.base = base

    @classmethod
    def format(cls, pm, base):
        region = cls(pm, base)
        pm.write_u32(base + _OFF_MAGIC, _MAGIC_PREPARE)
        pm.write_u64(base + _OFF_WORD, 0)
        pm.write_u64(base + _OFF_SEQ, 0)
        pm.persist(base, PREPARE_REGION_BYTES)
        return region

    @classmethod
    def attach(cls, pm, base):
        if pm.read_u32(base + _OFF_MAGIC) != _MAGIC_PREPARE:
            raise ValueError("no 2PC prepare region at %#x" % base)
        return cls(pm, base)

    def prepare(self, gtid, seq, tail):
        """Durably record that this shard is prepared for ``gtid``:
        its frames (``tail`` bytes) are persisted and would commit
        with sequence number ``seq``.  The seq word is persisted
        *before* the atomic prepare word — a valid word always finds
        a valid seq."""
        self.pm.write_u64(self.base + _OFF_SEQ, seq)
        self.pm.persist(self.base + _OFF_SEQ, 8)
        self.pm.write_u64(self.base + _OFF_WORD, (gtid << 32) | tail)
        self.pm.persist(self.base + _OFF_WORD, 8)
        self.pm.obs.inc("twopc.prepare")

    def clear(self):
        """Erase the prepare record (after commit, or to abort)."""
        self.pm.write_u64(self.base + _OFF_WORD, 0)
        self.pm.persist(self.base + _OFF_WORD, 8)

    def prepared(self):
        """``(gtid, seq, tail)`` of the on-record prepare, or None."""
        word = self.pm.read_u64(self.base + _OFF_WORD)
        if word == 0:
            return None
        return word >> 32, self.pm.read_u64(self.base + _OFF_SEQ), word & 0xFFFF_FFFF


class CoordinatorLog:
    """The arena-wide commit-decision record at ``base``."""

    def __init__(self, pm, base):
        self.pm = pm
        self.base = base

    @classmethod
    def format(cls, pm, base):
        log = cls(pm, base)
        pm.write_u32(base + _OFF_MAGIC, _MAGIC_DECISION)
        pm.write_u64(base + _OFF_WORD, 0)
        pm.persist(base, COORDINATOR_BYTES)
        return log

    @classmethod
    def attach(cls, pm, base):
        if pm.read_u32(base + _OFF_MAGIC) != _MAGIC_DECISION:
            raise ValueError("no 2PC coordinator log at %#x" % base)
        return cls(pm, base)

    def decide_commit(self, gtid, fence=True):
        """Durably publish the commit decision for ``gtid`` (the
        transaction's global commit point): one 8-byte-atomic store,
        flushed and fenced before any shard's commit mark.

        With ``fence=False`` (group commit) the decision word is
        written and flushed but the fence is left to the caller — the
        shared fence of the epoch the decision joins completes it
        together with every member's frames, still strictly before
        any participant's commit mark becomes visible to recovery."""
        self.pm.write_u64(self.base + _OFF_WORD, (gtid << 8) | 1)
        if fence:
            self.pm.persist(self.base + _OFF_WORD, 8)
        else:
            self.pm.flush_range(self.base + _OFF_WORD, 8)
        self.pm.obs.inc("twopc.decision")

    def clear(self):
        """Erase the decision (after every participant committed)."""
        self.pm.write_u64(self.base + _OFF_WORD, 0)
        self.pm.persist(self.base + _OFF_WORD, 8)

    def decided_commit(self):
        """The gtid with a commit decision on record, or None."""
        word = self.pm.read_u64(self.base + _OFF_WORD)
        if word & 1:
            return word >> 8
        return None
