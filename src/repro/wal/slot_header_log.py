"""The Failure-Atomic Slot-Header log (paper Section 3.3).

Layout of the log region::

    +0   u32  magic
    +8   u64  commit word:  low 32 bits = valid byte count ("tail"),
              high 32 bits = transaction sequence number
    +16  frame bytes ...

Commit protocol (exactly the paper's ordering argument):

1. frames — the updated slot-header of every dirty page, plus any root
   pointer updates — are *written* past the current tail in any order;
2. the frames (and, before them, the in-place record writes in the
   pages) are flushed and fenced;
3. the **commit mark** — a single 8-byte-atomic store of the new
   (tail, seq) word — is written, flushed, and fenced.

A crash before step 3 leaves tail = 0, so the frames are garbage and
"the log entries are all meaningless unless we have a valid commit
mark".  A crash after step 3 is recovered by replaying the frames
(checkpointing is idempotent).  After the eager checkpoint the tail is
reset to zero with another atomic store.

Frame encodings::

    PAGE frame:  u8 0x01 | u32 page_no | u16 image_len | image bytes
    ROOT frame:  u8 0x02 | u32 root_slot | u32 page_no
"""

from repro.obs import trace as ev

_MAGIC = 0x57A6_10D0
_OFF_MAGIC = 0
_OFF_COMMIT = 8
_FRAMES_BASE = 16

_FRAME_PAGE = 0x01
_FRAME_ROOT = 0x02


class LogFullError(Exception):
    """A transaction's frames exceed the log region."""


class SlotHeaderLog:
    """The FAST redo log over ``[base, base + size)`` of a PM arena."""

    def __init__(self, pm, base, size):
        self.pm = pm
        self.base = base
        self.size = size
        self._staged = []
        self._staged_bytes = 0
        # Group commit: frames of epoch members that already wrote +
        # flushed their slice of the log but whose shared commit mark
        # has not been published yet.  The next member's frames land
        # after this prefix; the group mark's tail covers all of it.
        self._group_bytes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def format(cls, pm, base, size):
        log = cls(pm, base, size)
        pm.write_u32(base + _OFF_MAGIC, _MAGIC)
        pm.write_u64(base + _OFF_COMMIT, 0)
        pm.persist(base, _FRAMES_BASE)
        return log

    @classmethod
    def attach(cls, pm, base, size):
        if pm.read_u32(base + _OFF_MAGIC) != _MAGIC:
            raise ValueError("no slot-header log at %#x" % base)
        return cls(pm, base, size)

    # ------------------------------------------------------------------
    # Writing a transaction (called while committing)
    # ------------------------------------------------------------------

    def stage_page_header(self, page_no, image):
        """Queue a page's updated slot header for the next commit."""
        frame = (
            bytes([_FRAME_PAGE])
            + page_no.to_bytes(4, "little")
            + len(image).to_bytes(2, "little")
            + image
        )
        self._stage(frame)

    def stage_root_update(self, root_slot, page_no):
        """Queue a named-root pointer update for the next commit."""
        frame = (
            bytes([_FRAME_ROOT])
            + root_slot.to_bytes(4, "little")
            + page_no.to_bytes(4, "little")
        )
        self._stage(frame)

    def _stage(self, frame):
        used = self._group_bytes + self._staged_bytes
        if _FRAMES_BASE + used + len(frame) > self.size:
            raise LogFullError(
                "transaction needs %d log bytes but only %d remain"
                % (len(frame), self.size - _FRAMES_BASE - used)
            )
        self._staged.append(frame)
        self._staged_bytes += len(frame)

    @property
    def staged_frames(self):
        return len(self._staged)

    @property
    def staged_bytes(self):
        """Bytes the next commit word's tail must cover: the current
        transaction's staged frames plus any epoch members' frames
        already sitting before them in the log."""
        return self._group_bytes + self._staged_bytes

    @property
    def group_bytes(self):
        """Bytes held by epoch members awaiting the shared mark."""
        return self._group_bytes

    def write_frames(self):
        """Store all staged frames into the log region (no flushes —
        the paper's "update slot header" step happens without cache
        line flushes; durability comes from :meth:`flush_frames`)."""
        obs = self.pm.obs
        cursor = self.base + _FRAMES_BASE + self._group_bytes
        for frame in self._staged:
            self.pm.write(cursor, frame)
            obs.inc("log.frame")
            obs.event(ev.LOG_APPEND, cursor, len(frame))
            cursor += len(frame)

    def flush_frames(self):
        """Flush every staged frame line (the "Log Flush" step)."""
        self.pm.flush_range(
            self.base + _FRAMES_BASE + self._group_bytes, self._staged_bytes
        )

    def join_group(self):
        """Move the staged (written + flushed, unfenced) frames onto
        the open epoch: the shared group mark will cover them."""
        self._group_bytes += self._staged_bytes
        self._staged = []
        self._staged_bytes = 0

    def commit(self, seq):
        """Atomically publish the staged frames: the 8-byte commit word
        (tail, seq) is the commit mark.  With an open epoch the tail
        covers the members' prefix too — one mark, whole group."""
        tail = self._group_bytes + self._staged_bytes
        word = (seq << 32) | tail
        self.pm.write_u64(self.base + _OFF_COMMIT, word)
        self.pm.persist(self.base + _OFF_COMMIT, 8)
        self.pm.obs.inc("log.commit_mark")
        self.pm.obs.event(ev.COMMIT_MARK, seq, tail)

    def truncate(self):
        """Reset after checkpointing (atomically empties the log)."""
        self.pm.write_u64(self.base + _OFF_COMMIT, 0)
        self.pm.persist(self.base + _OFF_COMMIT, 8)
        self.pm.obs.inc("log.truncate")
        self.pm.obs.event(ev.LOG_TRUNCATE)
        self._staged = []
        self._staged_bytes = 0
        self._group_bytes = 0

    def discard(self):
        """Drop staged (never-committed) frames: rollback path.  Epoch
        members' frames are untouched — they are already promised."""
        self._staged = []
        self._staged_bytes = 0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def restore_commit(self, seq, tail):
        """Re-publish the commit word from a saved (seq, tail) pair.

        The in-doubt-commit path of 2PC recovery: the shard's frames
        are already durable (its prepare persisted them) but the crash
        hit before this shard's commit mark; the coordinator's
        decision says commit, so the mark is re-issued here and the
        normal recovery replay takes over."""
        word = (seq << 32) | tail
        self.pm.write_u64(self.base + _OFF_COMMIT, word)
        self.pm.persist(self.base + _OFF_COMMIT, 8)
        self.pm.obs.inc("log.commit_mark")
        self.pm.obs.event(ev.COMMIT_MARK, seq, tail)

    def committed_seq(self):
        """Sequence number of the committed-but-unapplied txn (0 if none)."""
        return self.pm.read_u64(self.base + _OFF_COMMIT) >> 32

    def pending_bytes(self):
        """Valid frame bytes awaiting checkpoint (0 = log empty)."""
        return self.pm.read_u64(self.base + _OFF_COMMIT) & 0xFFFF_FFFF

    def replay(self):
        """Yield the committed frames for checkpointing/recovery.

        Yields ``("page", page_no, image)`` and ``("root", slot,
        page_no)`` tuples in log order; yields nothing when the log
        carries no commit mark.
        """
        end = self.base + _FRAMES_BASE + self.pending_bytes()
        cursor = self.base + _FRAMES_BASE
        while cursor < end:
            kind = self.pm.read(cursor, 1)[0]
            if kind == _FRAME_PAGE:
                page_no = self.pm.read_u32(cursor + 1)
                image_len = self.pm.read_u16(cursor + 5)
                image = self.pm.read(cursor + 7, image_len)
                self.pm.obs.inc("log.replay")
                yield "page", page_no, image
                cursor += 7 + image_len
            elif kind == _FRAME_ROOT:
                slot = self.pm.read_u32(cursor + 1)
                page_no = self.pm.read_u32(cursor + 5)
                self.pm.obs.inc("log.replay")
                yield "root", slot, page_no
                cursor += 9
            else:
                raise ValueError("corrupt log frame kind %#x" % kind)
