"""NVWAL: persistent write-ahead log with differential logging.

This reproduces the baseline the paper compares against (Kim et al.,
"NVWAL: Exploiting NVRAM in Write-Ahead Logging") with every overhead
component the paper's Figure 8 attributes to it:

* **differential logging** — at commit, each dirty page in the
  volatile buffer cache is word-diffed against its transaction-start
  snapshot and only the changed ranges are logged ("NVWAL
  Computation");
* **user-level heap** — WAL frames are allocated from a persistent
  heap (``repro.pm.PersistentHeap``), whose metadata writes and
  bookkeeping form the "Heap Management" bar;
* **log flush** — frame stores, flushes and fences ("Log Flush");
* **WAL index** — a volatile index from page number to its frames,
  consulted on every buffer-cache miss and rebuilt on recovery
  ("Misc" / index construction);
* **lazy checkpointing** — dirty pages are written back to the
  database pages only when the WAL grows past a threshold, unlike
  FAST's eager checkpoint.

Persistent layout inside the WAL region::

    master:  u32 magic | u32 pad | u64 head | u64 commit_seq
    heap:    PersistentHeap managing the rest of the region

Frames are heap blocks chained through a ``next`` field; the 8-byte
``commit_seq`` store is the transaction commit mark: recovery ignores
(and reclaims) chained frames whose sequence exceeds it.

Frame encoding::

    u64 seq | u32 kind | u32 page_no_or_slot | u64 next | u32 nranges |
    (u16 offset, u16 length) * nranges | range bytes ...
"""

from repro.obs import trace as ev
from repro.pm.allocator import PersistentHeap
from repro.pm.memory import WORD

_MAGIC = 0x0077A1E0
_OFF_MAGIC = 0
_OFF_HEAD = 8
_OFF_COMMIT_SEQ = 16
_MASTER_SIZE = 64

FRAME_PAGE = 1
FRAME_ROOT = 2
FRAME_FREE = 3

_FRAME_HEADER = 28
_OFF_NEXT = 16  # within a frame


def word_diff(old, new):
    """Changed ranges between two equal-length buffers, at 8-byte
    granularity (NVWAL's differential logging unit).

    Returns ``[(offset, bytes), ...]`` with adjacent changed words
    merged into single ranges.
    """
    if len(old) != len(new):
        raise ValueError("buffers differ in length")
    if old == new:
        return []
    # Scan in 512-byte blocks first: a block-level equality compare is
    # one C call, and commit-time diffs are sparse (a few changed words
    # in a 4 KiB page), so most blocks are skipped without the per-word
    # loop.  Word-level decisions inside unequal blocks are unchanged,
    # so the resulting ranges are identical to the plain word scan.
    ranges = []
    start = None
    length = len(new)
    block = 512  # multiple of WORD
    # Word compares go through 64-bit memoryview casts when the buffers
    # are word-multiple (pages always are): an int compare per word
    # instead of two 8-byte slice allocations.
    if length % WORD == 0:
        old_w = memoryview(bytes(old)).cast("Q")
        new_w = memoryview(bytes(new)).cast("Q")
    else:
        old_w = new_w = None
    pos = 0
    while pos < length:
        hi = pos + block
        if hi > length:
            hi = length
        if (
            old_w[pos >> 3 : hi >> 3] == new_w[pos >> 3 : hi >> 3]
            if old_w is not None
            else old[pos:hi] == new[pos:hi]
        ):
            if start is not None:
                ranges.append((start, bytes(new[start:pos])))
                start = None
            pos = hi
            continue
        if old_w is not None:
            # Narrow to 64-byte sub-blocks before the per-word loop:
            # commit diffs touch a handful of words, so most sub-blocks
            # of an unequal block are still skipped by one C compare.
            for sub in range(pos, hi, 64):
                sub_w = sub >> 3
                hi_w = sub_w + 8
                if hi_w > hi >> 3:
                    hi_w = hi >> 3
                if old_w[sub_w:hi_w] == new_w[sub_w:hi_w]:
                    if start is not None:
                        ranges.append((start, bytes(new[start:sub])))
                        start = None
                    continue
                for word in range(sub_w, hi_w):
                    if old_w[word] != new_w[word]:
                        if start is None:
                            start = word << 3
                    elif start is not None:
                        ranges.append((start, bytes(new[start : word << 3])))
                        start = None
            pos = hi
            continue
        for word_off in range(pos, hi, WORD):
            changed = (
                old[word_off : word_off + WORD] != new[word_off : word_off + WORD]
            )
            if changed and start is None:
                start = word_off
            elif not changed and start is not None:
                ranges.append((start, bytes(new[start:word_off])))
                start = None
        pos = hi
    if start is not None:
        ranges.append((start, bytes(new[start:])))
    return ranges


def encode_frame(seq, kind, page_no, ranges):
    """Serialise a frame (``next`` starts as 0 and is patched when the
    successor is linked)."""
    body = bytearray()
    body += seq.to_bytes(8, "little")
    body += kind.to_bytes(4, "little")
    body += page_no.to_bytes(4, "little")
    body += (0).to_bytes(8, "little")  # next
    body += len(ranges).to_bytes(4, "little")
    for offset, data in ranges:
        body += offset.to_bytes(2, "little")
        body += len(data).to_bytes(2, "little")
    for _, data in ranges:
        body += data
    return bytes(body)


class NVWALog:
    """The persistent WAL region: master record + heap + frame chain."""

    def __init__(self, pm, base, size):
        self.pm = pm
        self.base = base
        self.size = size
        self.heap = None
        self.index = {}        # page_no -> [frame addr, ...] (volatile)
        self.roots = {}        # root slot -> page_no overlay (volatile)
        self._tail = 0         # last chained frame (volatile)
        self.bytes_used = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def format(cls, pm, base, size):
        log = cls(pm, base, size)
        pm.write_u32(base + _OFF_MAGIC, _MAGIC)
        pm.write_u64(base + _OFF_HEAD, 0)
        pm.write_u64(base + _OFF_COMMIT_SEQ, 0)
        pm.persist(base, _MASTER_SIZE)
        log.heap = PersistentHeap.format(pm, base + _MASTER_SIZE, size - _MASTER_SIZE)
        return log

    @classmethod
    def attach(cls, pm, base, size):
        """Recovery: rebuild the index from the committed chain prefix
        and reclaim frames of uncommitted transactions."""
        if pm.read_u32(base + _OFF_MAGIC) != _MAGIC:
            raise ValueError("no NVWAL region at %#x" % base)
        log = cls(pm, base, size)
        log.heap = PersistentHeap.attach(pm, base + _MASTER_SIZE, size - _MASTER_SIZE)
        committed = log.committed_seq
        addr = pm.read_u64(base + _OFF_HEAD)
        prev = 0
        seen = set()
        stale = []
        while addr:
            seen.add(addr)
            seq = pm.read_u64(addr)
            nxt = pm.read_u64(addr + _OFF_NEXT)
            if seq > committed:
                stale.append(addr)
            else:
                log._absorb(addr, count_bytes=True)
                pm.obs.inc("wal.replay")
                pm.obs.event(ev.RECOVERY_REPLAY, addr, seq)
                prev = addr
            addr = nxt
        if stale:
            # Truncate the chain before the uncommitted tail.
            if prev:
                pm.write_u64(prev + _OFF_NEXT, 0)
                pm.persist(prev + _OFF_NEXT, 8)
            else:
                pm.write_u64(base + _OFF_HEAD, 0)
                pm.persist(base + _OFF_HEAD, 8)
            for frame in stale:
                log.heap.pfree(frame)
        # Heap blocks allocated but never linked (crash between pmalloc
        # and chaining) are unreachable: reclaim them.
        for block in log.heap.allocated_blocks():
            if block not in seen:
                log.heap.pfree(block)
        log._tail = prev
        return log

    # ------------------------------------------------------------------
    # Append / commit
    # ------------------------------------------------------------------

    @property
    def committed_seq(self):
        return self.pm.read_u64(self.base + _OFF_COMMIT_SEQ)

    def append_frame(self, frame_bytes):
        """Allocate, store, flush and chain one frame; returns its
        address.  The frame is invisible to recovery until the commit
        mark covers its sequence number."""
        addr = self.heap.pmalloc(len(frame_bytes))
        self.install_frame(addr, frame_bytes)
        return addr

    def install_frame(self, addr, frame_bytes):
        """Store, flush and chain a frame into pre-allocated space
        (split from allocation so engines can attribute heap cost and
        log-flush cost to separate measurement segments).

        The frame content is fenced *before* the chain link is written:
        a durable link must imply a durable frame, otherwise recovery
        could walk into garbage.
        """
        self.pm.write(addr, frame_bytes)
        self.pm.flush_range(addr, len(frame_bytes))
        self.pm.sfence()
        if self._tail:
            self.pm.write_u64(self._tail + _OFF_NEXT, addr)
            self.pm.flush_range(self._tail + _OFF_NEXT, 8)
        else:
            self.pm.write_u64(self.base + _OFF_HEAD, addr)
            self.pm.flush_range(self.base + _OFF_HEAD, 8)
        self._tail = addr
        self.bytes_used += len(frame_bytes)
        self.pm.obs.inc("wal.frame")
        self.pm.obs.event(ev.LOG_APPEND, addr, len(frame_bytes))
        self.pm.obs.registry.set_gauge("wal.bytes_used", self.bytes_used)

    def commit(self, seq):
        """The 8-byte-atomic commit mark."""
        self.pm.write_u64(self.base + _OFF_COMMIT_SEQ, seq)
        self.pm.persist(self.base + _OFF_COMMIT_SEQ, 8)
        self.pm.obs.inc("wal.commit_mark")
        self.pm.obs.event(ev.COMMIT_MARK, seq)

    def publish(self, frames):
        """Post-commit: make the frames visible to page fetches."""
        for addr in frames:
            self._absorb(addr)

    # ------------------------------------------------------------------
    # Reading frames
    # ------------------------------------------------------------------

    def frame_kind(self, addr):
        return self.pm.read_u32(addr + 8)

    def frame_page_no(self, addr):
        return self.pm.read_u32(addr + 12)

    def frame_ranges(self, addr):
        """Decode a page frame's (offset, bytes) deltas."""
        nranges = self.pm.read_u32(addr + 24)
        pairs = []
        cursor = addr + _FRAME_HEADER
        for _ in range(nranges):
            offset = self.pm.read_u16(cursor)
            length = self.pm.read_u16(cursor + 2)
            pairs.append((offset, length))
            cursor += 4
        out = []
        for offset, length in pairs:
            out.append((offset, self.pm.read(cursor, length)))
            cursor += length
        return out

    def deltas_for(self, page_no):
        """Committed delta ranges for ``page_no``, oldest first."""
        for addr in self.index.get(page_no, ()):
            yield from self.frame_ranges(addr)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def reset(self):
        """Drop every frame after a checkpoint wrote the pages back."""
        addr = self.pm.read_u64(self.base + _OFF_HEAD)
        self.pm.write_u64(self.base + _OFF_HEAD, 0)
        self.pm.persist(self.base + _OFF_HEAD, 8)
        while addr:
            nxt = self.pm.read_u64(addr + _OFF_NEXT)
            self.heap.pfree(addr)
            addr = nxt
        self.index.clear()
        self._tail = 0
        self.bytes_used = 0
        self.pm.obs.inc("wal.reset")
        self.pm.obs.registry.set_gauge("wal.bytes_used", 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _absorb(self, addr, count_bytes=False):
        """Fold one committed frame into the volatile index."""
        kind = self.frame_kind(addr)
        target = self.frame_page_no(addr)
        if count_bytes:  # append_frame counted live appends already
            self.bytes_used += self.heap.block_size(addr)
        if kind == FRAME_PAGE:
            self.index.setdefault(target, []).append(addr)
        elif kind == FRAME_ROOT:
            ranges = self.frame_ranges(addr)
            self.roots[target] = int.from_bytes(ranges[0][1][:4], "little")
        elif kind == FRAME_FREE:
            self.index.pop(target, None)
        else:
            raise ValueError("corrupt WAL frame kind %d at %#x" % (kind, addr))
