"""Logging subsystems.

* ``slot_header_log`` — the paper's Failure-Atomic Slot-Header redo log
  (FAST, Section 3.3): per-page slot-header frames plus an 8-byte-atomic
  commit mark, checkpointed eagerly.
* ``nvwal`` — the NVWAL baseline's persistent write-ahead log:
  differential frames allocated from a persistent heap, chained in PM,
  indexed in DRAM, checkpointed lazily.
* ``legacy`` — traditional rollback journaling and block-device WAL
  (paper Section 2.1), used by the motivation experiment to reproduce
  the write-amplification comparison.
"""

from repro.wal.slot_header_log import LogFullError, SlotHeaderLog

__all__ = ["LogFullError", "SlotHeaderLog"]
