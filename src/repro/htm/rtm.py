"""Restricted Transactional Memory (XBEGIN / XEND / XABORT) emulation.

Usage mirrors the paper's in-place commit::

    rtm = RTM(pm)

    def update_header(txn):
        txn.write_u16(header_addr, nrecords + 1)
        txn.write_u16(header_addr + 2, new_offset)

    rtm.execute(update_header)          # retry-until-success fallback
    pm.persist(header_addr, CACHE_LINE)  # durability AFTER the region

Stores issued through the transaction handle are buffered; they reach
the (volatile) cache only when the transaction commits, and they do so
atomically.  ``clflush`` inside the region raises — on hardware it
would abort the transaction (paper footnote 2): RTM provides atomicity
and consistency, while durability comes from flushing *after* ``XEND``.
"""

from repro.obs import trace as ev
from repro.obs.registry import MetricsRegistry
from repro.pm.memory import CACHE_LINE


class RTMAbort(Exception):
    """A hardware transaction aborted.

    ``reason`` is one of ``"capacity"`` (write set exceeded the
    hardware limit), ``"explicit"`` (XABORT), or ``"transient"``
    (injected best-effort abort: conflict, interrupt, ...).
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


#: Legacy attribute name -> registry counter name.
_LEGACY_FIELDS = {
    "begins": "rtm.begin",
    "commits": "rtm.commit",
    "aborts": "rtm.abort",
    "capacity_aborts": "rtm.abort.capacity",
    "fallbacks": "rtm.fallback",
}


class RTMStats:
    """Legacy-named view over the registry's ``rtm.*`` counters.

    Historically a standalone dataclass mirrored into ``MemoryStats``;
    both now read and write the same registry counters, so
    ``rtm.stats.commits`` and ``pm.stats.rtm_commits`` can never
    disagree.
    """

    __slots__ = ("registry",)

    def __init__(self, registry=None, **initial):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        for field, value in initial.items():
            setattr(self, field, value)

    def __getattr__(self, name):
        try:
            metric = _LEGACY_FIELDS[name]
        except KeyError:
            raise AttributeError(
                "%r has no attribute %r" % (type(self).__name__, name)
            ) from None
        return self.registry.value(metric)

    def __setattr__(self, name, value):
        try:
            metric = _LEGACY_FIELDS[name]
        except KeyError:
            raise AttributeError(
                "%r has no attribute %r" % (type(self).__name__, name)
            ) from None
        self.registry.counter(metric).value = value


class _Transaction:
    """The handle passed to the transaction body; buffers all stores."""

    def __init__(self, pm, max_write_lines):
        self._pm = pm
        self._max_write_lines = max_write_lines
        self._writes = []
        self._lines = set()

    def write(self, addr, data):
        """Transactional store; joins the write set."""
        first = addr // CACHE_LINE
        last = (addr + len(data) - 1) // CACHE_LINE
        self._lines.update(range(first, last + 1))
        if len(self._lines) > self._max_write_lines:
            raise RTMAbort("capacity")
        self._writes.append((addr, bytes(data)))

    def write_u16(self, addr, value):
        self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        self.write(addr, value.to_bytes(8, "little"))

    def read(self, addr, length):
        """Transactional load with read-your-writes semantics."""
        data = bytearray(self._pm.read(addr, length))
        for waddr, wdata in self._writes:
            lo = max(addr, waddr)
            hi = min(addr + length, waddr + len(wdata))
            if lo < hi:
                data[lo - addr : hi - addr] = wdata[lo - waddr : hi - waddr]
        return bytes(data)

    def read_u16(self, addr):
        return int.from_bytes(self.read(addr, 2), "little")

    def abort(self):
        """XABORT: explicitly abort the transaction."""
        raise RTMAbort("explicit")

    def _apply(self):
        for addr, data in self._writes:
            self._pm.write(addr, data)


class RTM:
    """A best-effort RTM unit bound to one ``PersistentMemory``.

    Args:
        pm: the memory the transactions operate on.
        max_write_lines: hardware write-set limit in cache lines.  The
            paper restricts the working set to a single line so the
            committed line can be flushed failure-atomically.
        abort_injector: optional ``callable(attempt) -> bool`` returning
            True to force a transient abort on that attempt — used to
            exercise the fallback path the paper requires.
    """

    def __init__(self, pm, *, max_write_lines=1, abort_injector=None):
        self.pm = pm
        self.max_write_lines = max_write_lines
        self.abort_injector = abort_injector
        self.stats = RTMStats(registry=pm.stats.registry)

    def execute(self, body, *, max_retries=None, fallback=None):
        """Run ``body(txn)`` under RTM, retrying transient aborts.

        This is the paper's fallback policy: "if an RTM transaction
        fails, our fallback handler retries the RTM transaction until
        it succeeds", with an optional escape hatch ``fallback`` after
        ``max_retries`` (e.g. falling back to slot-header logging).

        Capacity and explicit aborts never retry — they are
        deterministic — and go straight to ``fallback`` (or re-raise).
        Returns the body's return value, or the fallback's.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._attempt(body, attempt)
            except RTMAbort as abort:
                deterministic = abort.reason in ("capacity", "explicit")
                exhausted = max_retries is not None and attempt > max_retries
                if deterministic or exhausted:
                    if fallback is not None:
                        self.stats.fallbacks += 1
                        return fallback()
                    raise

    _ABORT_CODES = {
        "transient": ev.ABORT_TRANSIENT,
        "capacity": ev.ABORT_CAPACITY,
        "explicit": ev.ABORT_EXPLICIT,
    }

    def _attempt(self, body, attempt):
        self.stats.begins += 1
        self.pm.obs.event(ev.RTM_BEGIN, attempt)
        self.pm.clock.advance(self.pm.cost.rtm_begin_ns)
        txn = _Transaction(self.pm, self.max_write_lines)
        self.pm.flush_forbidden = True
        try:
            if self.abort_injector is not None and self.abort_injector(attempt):
                raise RTMAbort("transient")
            result = body(txn)
        except RTMAbort as abort:
            self.stats.aborts += 1
            if abort.reason == "capacity":
                self.stats.capacity_aborts += 1
            self.pm.obs.event(ev.RTM_ABORT, self._ABORT_CODES[abort.reason])
            self.pm.clock.advance(self.pm.cost.rtm_abort_ns)
            raise
        finally:
            self.pm.flush_forbidden = False
        # XEND: the buffered stores hit the cache atomically.  The
        # attribute below lets crash-injection harnesses treat the
        # apply as a single indivisible event, matching the hardware
        # guarantee (base PersistentMemory ignores it).
        self.pm.rtm_commit_in_progress = True
        try:
            txn._apply()
        finally:
            self.pm.rtm_commit_in_progress = False
        self.stats.commits += 1
        self.pm.obs.event(ev.RTM_COMMIT, attempt)
        self.pm.clock.advance(self.pm.cost.rtm_commit_ns)
        return result
