"""Hardware transactional memory (Intel RTM) emulation.

The paper's in-place commit uses Restricted Transactional Memory to
update a slot-header (one cache line) atomically: stores inside the
transaction stay in the store buffer and become visible all at once at
``XEND``.  This package reproduces the three properties that matter:

* stores inside a transaction are invisible (and lost on crash) until
  commit;
* a transaction whose write set exceeds the hardware limit (here: one
  cache line, the paper's restriction) aborts;
* RTM is best-effort — transient aborts can happen at any time, so a
  software fallback/retry policy is mandatory.
"""

from repro.htm.rtm import RTM, RTMAbort, RTMStats

__all__ = ["RTM", "RTMAbort", "RTMStats"]
