"""Simulated nanosecond clock with named measurement segments.

The paper reports times broken down into phases (Search, Page Update,
Commit) and sub-phases (``clflush(record)``, ``update slot header``,
``Log Flush``, ``Checkpointing`` ...).  ``SimClock`` supports this by
letting callers open nested *segments*; every ``advance()`` charges the
elapsed simulated time to the total and to every segment currently open.
"""

class _Segment:
    """Reusable context manager for one segment entry.

    A plain class with ``__slots__`` instead of ``@contextmanager``:
    segment entry/exit is on the per-operation hot path of every
    engine, and the generator-based protocol costs several times more
    per entry.  Semantics are identical — append on enter, pop and
    notify observers on exit.
    """

    __slots__ = ("_clock", "_name", "_entered_ns", "_active")

    def __init__(self, clock, name):
        self._clock = clock
        self._name = name
        self._active = False

    def __enter__(self):
        clock = self._clock
        ns = clock.pending_ns
        if ns:
            clock.pending_ns = 0.0
            buckets = clock._buckets
            for name in clock._open:
                try:
                    buckets[name] += ns
                except KeyError:
                    buckets[name] = ns
        clock._open.append(self._name)
        self._entered_ns = clock.now_ns
        self._active = True
        return clock

    def __exit__(self, exc_type, exc, tb):
        self._active = False
        clock = self._clock
        ns = clock.pending_ns
        if ns:
            clock.pending_ns = 0.0
            buckets = clock._buckets
            for name in clock._open:
                try:
                    buckets[name] += ns
                except KeyError:
                    buckets[name] = ns
        clock._open.pop()
        name = self._name
        elapsed = clock.now_ns - self._entered_ns
        observers = clock._observers
        if len(observers) == 1:  # the common case: one metrics registry
            observers[0][0](name, elapsed)
        else:
            for fn, _ in observers:
                fn(name, elapsed)
        return False


class SimClock:
    """Accumulates simulated nanoseconds, attributed to open segments.

    Segments nest: while ``commit`` and ``log_flush`` are both open, an
    ``advance(100)`` adds 100 ns to the total, to ``commit`` and to
    ``log_flush``.  This mirrors how the paper's sub-phase bars sum into
    their parent phase bars.
    """

    __slots__ = (
        "now_ns", "pending_ns", "_buckets", "_open", "_observers",
        "_segments",
    )

    def __init__(self):
        self.now_ns = 0.0
        #: Simulated time advanced but not yet attributed to the open
        #: segments' buckets.  The open-segment set only changes on
        #: segment entry/exit, so attribution can be deferred until
        #: then (or until a bucket reader flushes): every open segment
        #: receives exactly the time that passed while it was open,
        #: and ``now_ns`` itself is always exact.  This takes the
        #: per-``advance`` cost on the memory-model hot path down to
        #: two float adds.
        self.pending_ns = 0.0
        self._buckets = {}
        self._open = []
        self._observers = []
        self._segments = {}  # name -> reusable _Segment (hot-path cache)

    def advance(self, ns):
        """Advance simulated time by ``ns`` nanoseconds."""
        if ns <= 0:
            return
        self.now_ns += ns
        self.pending_ns += ns

    def advance_to(self, target_ns):
        """Advance simulated time to ``target_ns`` if it lies ahead
        (no-op otherwise).  Used by the cooperative scheduler to model
        a session sleeping until a wake-up instant."""
        self.advance(target_ns - self.now_ns)

    def flush_pending(self):
        """Attribute ``pending_ns`` to every currently open segment."""
        ns = self.pending_ns
        if ns:
            self.pending_ns = 0.0
            buckets = self._buckets
            for name in self._open:
                try:
                    buckets[name] += ns
                except KeyError:
                    buckets[name] = ns

    def add_observer(self, fn, tag=None):
        """Call ``fn(name, elapsed_ns)`` when a segment closes.

        ``elapsed_ns`` is the total simulated time that passed inside
        the segment entry — including nested segments, matching the
        bucket accounting.  ``tag`` identifies the subscriber (e.g. a
        metrics registry) so callers can attach idempotently; see
        :meth:`observers`.
        """
        self._observers.append((fn, tag))

    def observers(self):
        """The registered ``(fn, tag)`` observer pairs."""
        return tuple(self._observers)

    def segment(self, name):
        """Attribute all time advanced inside the block to ``name``.

        Segment objects are cached per name and reused: entry/exit is
        on every engine's per-operation hot path, and allocating a
        fresh context manager each time costs more than the accounting
        itself.  Re-entrant same-name nesting (not something the
        engines do, but legal) falls back to a fresh object so the
        cached one's entry timestamp is never clobbered.
        """
        segment = self._segments.get(name)
        if segment is None:
            segment = self._segments[name] = _Segment(self, name)
        elif segment._active:
            return _Segment(self, name)
        return segment

    def elapsed(self, name):
        """Total nanoseconds charged to segment ``name`` so far."""
        if self.pending_ns:
            self.flush_pending()
        return self._buckets.get(name, 0.0)

    def segments(self):
        """A copy of all segment totals (name -> nanoseconds)."""
        if self.pending_ns:
            self.flush_pending()
        return dict(self._buckets)

    def reset(self):
        """Zero the clock and every segment (open segments stay open)."""
        self.now_ns = 0.0
        self.pending_ns = 0.0
        self._buckets.clear()

    def snapshot(self):
        """Capture (now, segments) for later differencing via ``since``."""
        if self.pending_ns:
            self.flush_pending()
        return self.now_ns, dict(self._buckets)

    def since(self, snapshot):
        """Return (elapsed_ns, per-segment deltas) since ``snapshot``."""
        if self.pending_ns:
            self.flush_pending()
        then, buckets = snapshot
        deltas = {}
        for name, value in self._buckets.items():
            delta = value - buckets.get(name, 0.0)
            if delta:
                deltas[name] = delta
        return self.now_ns - then, deltas

    def __repr__(self):
        return "SimClock(now_ns=%.1f, segments=%d)" % (
            self.now_ns,
            len(self._buckets),
        )
