"""Simulated nanosecond clock with named measurement segments.

The paper reports times broken down into phases (Search, Page Update,
Commit) and sub-phases (``clflush(record)``, ``update slot header``,
``Log Flush``, ``Checkpointing`` ...).  ``SimClock`` supports this by
letting callers open nested *segments*; every ``advance()`` charges the
elapsed simulated time to the total and to every segment currently open.
"""

from contextlib import contextmanager


class SimClock:
    """Accumulates simulated nanoseconds, attributed to open segments.

    Segments nest: while ``commit`` and ``log_flush`` are both open, an
    ``advance(100)`` adds 100 ns to the total, to ``commit`` and to
    ``log_flush``.  This mirrors how the paper's sub-phase bars sum into
    their parent phase bars.
    """

    def __init__(self):
        self.now_ns = 0.0
        self._buckets = {}
        self._open = []
        self._observers = []

    def advance(self, ns):
        """Advance simulated time by ``ns`` nanoseconds."""
        if ns <= 0:
            return
        self.now_ns += ns
        for name in self._open:
            self._buckets[name] = self._buckets.get(name, 0.0) + ns

    def add_observer(self, fn, tag=None):
        """Call ``fn(name, elapsed_ns)`` when a segment closes.

        ``elapsed_ns`` is the total simulated time that passed inside
        the segment entry — including nested segments, matching the
        bucket accounting.  ``tag`` identifies the subscriber (e.g. a
        metrics registry) so callers can attach idempotently; see
        :meth:`observers`.
        """
        self._observers.append((fn, tag))

    def observers(self):
        """The registered ``(fn, tag)`` observer pairs."""
        return tuple(self._observers)

    @contextmanager
    def segment(self, name):
        """Attribute all time advanced inside the block to ``name``."""
        self._open.append(name)
        entered_ns = self.now_ns
        try:
            yield self
        finally:
            self._open.pop()
            for fn, _ in self._observers:
                fn(name, self.now_ns - entered_ns)

    def elapsed(self, name):
        """Total nanoseconds charged to segment ``name`` so far."""
        return self._buckets.get(name, 0.0)

    def segments(self):
        """A copy of all segment totals (name -> nanoseconds)."""
        return dict(self._buckets)

    def reset(self):
        """Zero the clock and every segment (open segments stay open)."""
        self.now_ns = 0.0
        self._buckets.clear()

    def snapshot(self):
        """Capture (now, segments) for later differencing via ``since``."""
        return self.now_ns, dict(self._buckets)

    def since(self, snapshot):
        """Return (elapsed_ns, per-segment deltas) since ``snapshot``."""
        then, buckets = snapshot
        deltas = {}
        for name, value in self._buckets.items():
            delta = value - buckets.get(name, 0.0)
            if delta:
                deltas[name] = delta
        return self.now_ns - then, deltas

    def __repr__(self):
        return "SimClock(now_ns=%.1f, segments=%d)" % (
            self.now_ns,
            len(self._buckets),
        )
