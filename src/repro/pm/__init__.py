"""Persistent-memory substrate.

This package emulates the hardware the paper depends on (a Quartz-style
persistent-memory latency emulator, a write-back CPU cache with explicit
``clflush``/``mfence`` persistence, failure-atomic 8-byte or cache-line
writes, and a user-level persistent heap) entirely in Python.

The central objects are:

``SimClock``
    A simulated nanosecond clock.  Every memory operation charges time to
    the clock, so benchmark results are deterministic functions of the
    executed instruction mix and the configured latency profile — exactly
    the quantity the paper sweeps — rather than of host-machine speed.

``PersistentMemory``
    A byte-addressable persistent arena fronted by a simulated CPU cache.
    Writes land in the (volatile) cache; only ``clflush`` + fence make them
    durable.  ``crash()`` applies a failure model in which any subset of
    unflushed data may or may not have reached the persistence domain,
    torn at the configured atomic-write granularity (8 bytes or one cache
    line).

``VolatileMemory``
    A DRAM arena with the same read/write accounting but whose contents
    vanish entirely on crash (the NVWAL baseline's volatile buffer cache).

``PersistentHeap``
    A pmalloc/pfree allocator over a ``PersistentMemory`` region, used by
    the NVWAL baseline for write-ahead-log frames.
"""

from repro.pm.clock import SimClock
from repro.pm.latency import CostModel, LatencyProfile
from repro.pm.stats import MemoryStats
from repro.pm.crash import (
    CrashPolicy,
    DropAll,
    PersistAll,
    PersistSubset,
    RandomPersist,
)
from repro.pm.memory import CACHE_LINE, WORD, PersistentMemory, VolatileMemory
from repro.pm.allocator import AllocationError, PersistentHeap

__all__ = [
    "AllocationError",
    "CACHE_LINE",
    "CostModel",
    "CrashPolicy",
    "DropAll",
    "LatencyProfile",
    "MemoryStats",
    "PersistAll",
    "PersistSubset",
    "PersistentHeap",
    "PersistentMemory",
    "RandomPersist",
    "SimClock",
    "VolatileMemory",
    "WORD",
]
