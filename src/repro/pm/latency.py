"""Latency and cost model for the simulated memory hierarchy.

``LatencyProfile`` holds the independent variables the paper sweeps (the
emulated PM read and write latencies, plus the measured DRAM latency of
the testbed).  ``CostModel`` holds the fixed per-operation costs that
turn executed work into simulated nanoseconds.

Calibration
-----------
The ``CostModel`` defaults are calibrated once against the absolute
numbers quoted in the paper's Section 5 and then held fixed for every
experiment:

* local DRAM access latency measured as 120 ns (Section 5, paragraph 2);
* NVWAL differential-logging computation ~= 4 us per commit (Figure 8
  discussion) for a 4 KiB page -> ``diff_byte_ns`` ~= 1.0;
* NVWAL user-level heap management ~= 3 us per commit (Figure 8) with
  roughly two allocations per commit -> ``heap_alloc_ns`` ~= 1400;
* WAL-index construction dominates NVWAL's "Misc" bar (Figure 8).

Everything else (who wins, where crossovers fall) is *produced* by the
algorithms' executed instruction mix, not tuned.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LatencyProfile:
    """The memory latencies the paper treats as independent variables.

    Attributes:
        read_ns: emulated PM read latency (Quartz knob; paper sweeps
            120-1200 ns).
        write_ns: emulated PM write latency, injected as an additional
            delay after each ``clflush`` exactly as the paper does
            ("we emulate PM write latency by introducing an additional
            delay after each clflush instruction").
        dram_ns: local DRAM access latency (120 ns on the testbed); used
            by the NVWAL volatile buffer cache.
    """

    read_ns: float = 300.0
    write_ns: float = 300.0
    dram_ns: float = 120.0

    def with_pm(self, read_ns=None, write_ns=None):
        """A copy with overridden PM latencies (sweep helper)."""
        return replace(
            self,
            read_ns=self.read_ns if read_ns is None else read_ns,
            write_ns=self.write_ns if write_ns is None else write_ns,
        )

    @classmethod
    def symmetric(cls, pm_ns, dram_ns=120.0):
        """Profile with equal PM read and write latency (paper x-axis
        points such as 300/300 ... 1200/1200)."""
        return cls(read_ns=pm_ns, write_ns=pm_ns, dram_ns=dram_ns)


@dataclass(frozen=True)
class CostModel:
    """Fixed per-operation CPU/cache costs (nanoseconds).

    Attributes:
        cache_hit_ns: load serviced by the simulated CPU cache.
        store_ns: one store instruction (absorbed by the write-combining
            store buffer, hence cheap and latency-independent).
        store_byte_ns: additional per-byte cost of bulk stores (memcpy).
        clflush_ns: base cost of issuing a ``clflush``; the PM
            ``write_ns`` delay is charged on top by the memory model.
        fence_ns: an ``mfence``/``sfence``.
        rtm_begin_ns / rtm_commit_ns / rtm_abort_ns: RTM instruction
            overheads (XBEGIN / XEND / XABORT paths).
        diff_byte_ns: per-byte cost of NVWAL differential-log
            computation (word-compare of old vs new page images).
        heap_alloc_ns / heap_free_ns: bookkeeping cost of the user-level
            persistent heap, excluding the metadata flushes it performs
            (those are charged by the memory model as real flushes).
        wal_index_insert_ns: inserting one frame into NVWAL's volatile
            WAL index ("Misc" in Figure 8).
        branch_ns: generic per-step computation unit used by higher
            layers (e.g. per-record binary-search step).
    """

    cache_hit_ns: float = 4.0
    #: Per-line cost of the 2nd..Nth lines of one sequential read
    #: (hardware prefetch / bandwidth-bound streaming, ~1 GB/s PM).
    stream_line_ns: float = 60.0
    dram_stream_line_ns: float = 10.0
    store_ns: float = 1.0
    store_byte_ns: float = 0.06
    clflush_ns: float = 40.0
    fence_ns: float = 25.0
    rtm_begin_ns: float = 45.0
    rtm_commit_ns: float = 35.0
    rtm_abort_ns: float = 150.0
    diff_byte_ns: float = 0.95
    heap_alloc_ns: float = 1400.0
    heap_free_ns: float = 600.0
    wal_index_insert_ns: float = 800.0
    #: Fixed commit-path bookkeeping every scheme pays (SQLite's pager
    #: state machine, transaction bookkeeping — the shared part of the
    #: paper's "Misc" bar).
    pager_commit_ns: float = 600.0
    branch_ns: float = 6.0

    def dram_tier_line_ns(self, latency, *, streamed=False):
        """Per-line cost of a DRAM-tier load miss.

        The one attribution point for every DRAM tier in the system —
        NVWAL's volatile buffer cache and the tiered page cache both
        charge their residency misses through here, so fig8-style
        breakdowns stay comparable across schemes: the first missing
        line of a read costs ``latency.dram_ns``; subsequent lines of
        the same sequential read stream at ``dram_stream_line_ns``.
        """
        return self.dram_stream_line_ns if streamed else latency.dram_ns
