"""Byte-addressable persistent and volatile memory with cache semantics.

``PersistentMemory`` models the path a store takes on real hardware:

1. ``write()`` lands in the (volatile) CPU cache — cheap, and invisible
   to the persistence domain;
2. ``clflush()`` puts the cache line's current content *in flight*
   toward memory (and, like the real instruction, evicts the line);
3. a fence (``sfence``/``mfence``) guarantees in-flight flushes have
   completed — only then is the data durable.

``crash()`` discards all volatile state and lets a ``CrashPolicy``
decide which still-unfenced atomic units happened to reach persistence,
torn at the configured granularity (8-byte words, the baseline hardware
guarantee, or full 64-byte lines, the paper's HTM-era assumption).

Every load miss charges the PM read latency and every ``clflush``
charges the PM write latency to the shared ``SimClock``, mirroring how
the paper drives Quartz and injects post-``clflush`` delays.
"""

from collections import OrderedDict

from repro.obs import trace as ev
from repro.obs.context import Observability
from repro.pm.clock import SimClock
from repro.pm.crash import PersistAll
from repro.pm.latency import CostModel, LatencyProfile
from repro.pm.stats import MemoryStats

CACHE_LINE = 64
WORD = 8
_WORDS_PER_LINE = CACHE_LINE // WORD


class _DirtyLine:
    """Cache-resident state of one dirty line."""

    __slots__ = ("data", "dirty_words")

    def __init__(self, data):
        self.data = bytearray(data)
        self.dirty_words = set()


class _ResidencySet:
    """Bounded LRU set of cache-resident line numbers (for read-latency
    accounting only; dirty data is tracked separately and never silently
    dropped)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._lines = OrderedDict()

    def touch(self, line):
        """Record an access; return True on hit, False on miss."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return True
        self._lines[line] = None
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
        return False

    def evict(self, line):
        self._lines.pop(line, None)

    def clear(self):
        self._lines.clear()


class PersistentMemory:
    """A simulated persistent-memory arena.

    Args:
        size: arena size in bytes (multiple of the cache-line size).
        latency: PM/DRAM latency profile (the paper's sweep variable).
        cost: fixed per-operation cost model.
        clock: shared simulated clock (created if omitted).
        stats: shared counters (created if omitted).
        atomic_granularity: failure-atomic write unit in bytes — 8 for
            the baseline hardware guarantee, 64 when assuming
            failure-atomic cache-line writes (paper Section 3.2).
        cache_lines: capacity of the read-residency model, in lines.
    """

    def __init__(
        self,
        size,
        *,
        latency=None,
        cost=None,
        clock=None,
        stats=None,
        atomic_granularity=CACHE_LINE,
        cache_lines=4096,
        flush_instruction="clflush",
        obs=None,
        trace=None,
    ):
        if size % CACHE_LINE:
            raise ValueError("size must be a multiple of %d" % CACHE_LINE)
        if atomic_granularity not in (WORD, CACHE_LINE):
            raise ValueError("atomic_granularity must be 8 or 64")
        if flush_instruction not in ("clflush", "clwb"):
            raise ValueError("flush_instruction must be clflush or clwb")
        self.size = size
        self.latency = latency or LatencyProfile()
        self.cost = cost or CostModel()
        self.clock = clock or SimClock()
        self.stats = stats or MemoryStats()
        if obs is None:
            obs = Observability(
                self.clock, registry=self.stats.registry, trace=trace
            )
        self.obs = obs
        # Hot-path counters, resolved once (registry.reset() preserves
        # instrument identities, so these references stay live).
        registry = self.stats.registry
        self._c_load = registry.counter("pm.load")
        self._c_load_miss = registry.counter("pm.load_miss")
        self._c_store = registry.counter("pm.store")
        self._c_store_bytes = registry.counter("pm.store_bytes")
        self._c_flush = registry.counter("pm.flush")
        self._c_flush_clwb = registry.counter("pm.flush.clwb")
        self._c_flush_bytes = registry.counter("pm.flush_bytes")
        self._c_fence = registry.counter("pm.fence")
        self._trace = self.obs.trace
        self.atomic_granularity = atomic_granularity
        self.flush_instruction = flush_instruction
        self._durable = bytearray(size)
        self._dirty = {}
        self._inflight = {}
        self._resident = _ResidencySet(cache_lines)
        # Set by the RTM emulation while a hardware transaction is open:
        # clflush inside an RTM region aborts on real hardware (paper
        # footnote 2), so the simulation forbids it outright.
        self.flush_forbidden = False

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def read(self, addr, length):
        """Read ``length`` bytes at ``addr`` through the cache.

        The first missing line of a read pays the full PM read
        latency; further lines of the *same* call stream at the
        prefetch/bandwidth rate (bulk page copies are not N serialized
        misses on real hardware).
        """
        self._check(addr, length)
        self._c_load.value += 1
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        out = bytearray()
        missed_before = False
        for line in range(first, last + 1):
            if not self._resident.touch(line):
                self._c_load_miss.value += 1
                if missed_before:
                    # Streaming rate degrades with the PM latency knob:
                    # Quartz injects its delay per epoch, so bulk reads
                    # slow down proportionally, floored at the DRAM-class
                    # prefetch rate.
                    self.clock.advance(
                        max(self.cost.stream_line_ns, 0.15 * self.latency.read_ns)
                    )
                else:
                    self.clock.advance(self.latency.read_ns)
                    missed_before = True
            else:
                self.clock.advance(self.cost.cache_hit_ns)
            lo = max(addr, line * CACHE_LINE)
            hi = min(addr + length, (line + 1) * CACHE_LINE)
            out += self._visible(line)[lo - line * CACHE_LINE : hi - line * CACHE_LINE]
        return bytes(out)

    def read_u16(self, addr):
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        return int.from_bytes(self.read(addr, 8), "little")

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def write(self, addr, data):
        """Store ``data`` at ``addr``.

        The store is absorbed by the cache/store buffer: it is cheap,
        latency-independent (the paper inserts no delay for stores) and
        *not durable* until flushed and fenced.
        """
        length = len(data)
        self._check(addr, length)
        self._c_store.value += 1
        self._c_store_bytes.value += length
        self._trace.record(ev.STORE, addr, length)
        self.clock.advance(self.cost.store_ns + self.cost.store_byte_ns * length)
        offset = 0
        while offset < length:
            pos = addr + offset
            line = pos // CACHE_LINE
            line_base = line * CACHE_LINE
            take = min(length - offset, line_base + CACHE_LINE - pos)
            entry = self._dirty.get(line)
            if entry is None:
                entry = _DirtyLine(self._visible(line))
                self._dirty[line] = entry
            start = pos - line_base
            entry.data[start : start + take] = data[offset : offset + take]
            first_word = start // WORD
            last_word = (start + take - 1) // WORD
            entry.dirty_words.update(range(first_word, last_word + 1))
            self._resident.touch(line)
            offset += take

    def write_u16(self, addr, value):
        self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        self.write(addr, value.to_bytes(8, "little"))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def clflush(self, addr):
        """Flush the cache line containing ``addr``.

        The line's current content starts moving toward the persistence
        domain (guaranteed complete only after a fence) and the line is
        evicted from the cache, as real ``clflush`` does.  Charges the
        PM write latency — the same post-``clflush`` delay injection the
        paper uses to emulate PM write latency.
        """
        self._check(addr, 1)
        if self.flush_forbidden:
            raise RuntimeError(
                "clflush inside an RTM transaction violates hardware "
                "transactional semantics (paper Section 3.2, footnote 2)"
            )
        line = addr // CACHE_LINE
        self._c_flush.value += 1
        self._trace.record(ev.CLFLUSH, addr)
        self.clock.advance(self.cost.clflush_ns + self.latency.write_ns)
        entry = self._dirty.pop(line, None)
        if entry is not None:
            self._c_flush_bytes.value += WORD * len(entry.dirty_words)
            pending = self._inflight.get(line)
            if pending is None:
                self._inflight[line] = entry
            else:
                pending.data = entry.data
                pending.dirty_words |= entry.dirty_words
        self._resident.evict(line)

    def clwb(self, addr):
        """Write back the cache line containing ``addr`` WITHOUT
        evicting it (the instruction the paper's Figure 3 shows).

        Same persistence semantics as ``clflush`` — complete only
        after a fence — but subsequent reads of the line stay cache
        hits.
        """
        self._check(addr, 1)
        if self.flush_forbidden:
            raise RuntimeError(
                "cache write-back inside an RTM transaction violates "
                "hardware transactional semantics"
            )
        line = addr // CACHE_LINE
        self._c_flush.value += 1
        self._c_flush_clwb.value += 1
        self._trace.record(ev.CLWB, addr)
        self.clock.advance(self.cost.clflush_ns + self.latency.write_ns)
        entry = self._dirty.pop(line, None)
        if entry is not None:
            self._c_flush_bytes.value += WORD * len(entry.dirty_words)
            pending = self._inflight.get(line)
            if pending is None:
                self._inflight[line] = entry
            else:
                pending.data = entry.data
                pending.dirty_words |= entry.dirty_words
        self._resident.touch(line)  # the line stays cached

    def flush_range(self, addr, length):
        """Write back every line overlapping ``[addr, addr+length)``
        using the configured instruction (``clflush`` evicts, as on the
        paper's Haswell testbed; ``clwb`` keeps the line cached)."""
        if length <= 0:
            return
        write_back = (
            self.clwb if self.flush_instruction == "clwb" else self.clflush
        )
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        for line in range(first, last + 1):
            write_back(line * CACHE_LINE)

    def sfence(self):
        """Complete all in-flight flushes (store fence)."""
        self._c_fence.value += 1
        self._trace.record(ev.FENCE)
        self.clock.advance(self.cost.fence_ns)
        for line, entry in self._inflight.items():
            self._apply_words(line, entry, entry.dirty_words)
        self._inflight.clear()

    # The single-threaded simulation gives mfence and sfence identical
    # semantics; both names exist so call sites read like the paper.
    mfence = sfence

    def persist(self, addr, length):
        """Flush + fence a range: the canonical durability sequence."""
        self.flush_range(addr, length)
        self.sfence()

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------

    def crash(self, policy=None):
        """Power-fail the machine.

        Every atomic unit that was dirty or in flight (flushed but not
        fenced) survives iff the ``policy`` says so; all volatile state
        is then discarded.  Fenced data always survives.
        """
        policy = (policy or PersistAll()).fresh()
        self._trace.record(ev.CRASH, self.dirty_unit_count())
        granule_words = self.atomic_granularity // WORD
        for source in (self._inflight, self._dirty):
            for line, entry in source.items():
                if granule_words == _WORDS_PER_LINE:
                    if policy.survives(line, 0):
                        self._apply_words(line, entry, entry.dirty_words)
                else:
                    surviving = {
                        word
                        for word in entry.dirty_words
                        if policy.survives(line, word)
                    }
                    self._apply_words(line, entry, surviving)
        self._dirty.clear()
        self._inflight.clear()
        self._resident.clear()

    def dirty_unit_count(self):
        """Number of atomic units currently at risk (for exhaustive
        crash enumeration in tests)."""
        units = 0
        for source in (self._inflight, self._dirty):
            for entry in source.values():
                if self.atomic_granularity == CACHE_LINE:
                    units += 1
                else:
                    units += len(entry.dirty_words)
        return units

    def dirty_units(self):
        """The ``(line, unit)`` pairs currently at risk."""
        pairs = set()
        for source in (self._inflight, self._dirty):
            for line, entry in source.items():
                if self.atomic_granularity == CACHE_LINE:
                    pairs.add((line, 0))
                else:
                    pairs.update((line, word) for word in entry.dirty_words)
        return sorted(pairs)

    # ------------------------------------------------------------------
    # Introspection (tests and tooling)
    # ------------------------------------------------------------------

    def durable_bytes(self, addr, length):
        """What persistence currently holds (bypasses the cache)."""
        self._check(addr, length)
        return bytes(self._durable[addr : addr + length])

    def is_durably_clean(self, addr, length):
        """True if no byte of the range has unfenced modifications."""
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        return not any(
            line in self._dirty or line in self._inflight
            for line in range(first, last + 1)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _visible(self, line):
        """The content of ``line`` as the CPU currently sees it."""
        entry = self._dirty.get(line)
        if entry is not None:
            return entry.data
        entry = self._inflight.get(line)
        if entry is not None:
            return entry.data
        base = line * CACHE_LINE
        return self._durable[base : base + CACHE_LINE]

    def _apply_words(self, line, entry, words):
        base = line * CACHE_LINE
        for word in words:
            lo = word * WORD
            self._durable[base + lo : base + lo + WORD] = entry.data[lo : lo + WORD]

    def _check(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside arena of %d bytes"
                % (addr, addr + length, self.size)
            )


class VolatileMemory:
    """A DRAM arena: same accounting interface, no persistence.

    Used by the NVWAL baseline's volatile buffer cache.  Loads charge
    the (lower) DRAM latency on residency misses; a crash erases the
    entire contents.
    """

    def __init__(self, size, *, latency=None, cost=None, clock=None, stats=None,
                 cache_lines=4096):
        self.size = size
        self.latency = latency or LatencyProfile()
        self.cost = cost or CostModel()
        self.clock = clock or SimClock()
        self.stats = stats or MemoryStats()
        registry = self.stats.registry
        self._c_load = registry.counter("dram.load")
        self._c_load_miss = registry.counter("dram.load_miss")
        self._c_store = registry.counter("dram.store")
        self._c_store_bytes = registry.counter("dram.store_bytes")
        self._data = bytearray(size)
        self._resident = _ResidencySet(cache_lines)

    def read(self, addr, length):
        self._check(addr, length)
        self._c_load.value += 1
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        missed_before = False
        for line in range(first, last + 1):
            if not self._resident.touch(line):
                self._c_load_miss.value += 1
                if missed_before:
                    self.clock.advance(self.cost.dram_stream_line_ns)
                else:
                    self.clock.advance(self.latency.dram_ns)
                    missed_before = True
            else:
                self.clock.advance(self.cost.cache_hit_ns)
        return bytes(self._data[addr : addr + length])

    def write(self, addr, data):
        length = len(data)
        self._check(addr, length)
        self._c_store.value += 1
        self._c_store_bytes.value += length
        self.clock.advance(self.cost.store_ns + self.cost.store_byte_ns * length)
        self._data[addr : addr + length] = data
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        for line in range(first, last + 1):
            self._resident.touch(line)

    def read_u16(self, addr):
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u16(self, addr, value):
        self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        self.write(addr, value.to_bytes(8, "little"))

    # Persistence operations are no-ops on DRAM: data here is volatile
    # by definition.  They exist so the slotted-page code runs
    # unchanged on the NVWAL volatile buffer cache.

    def clflush(self, addr):
        del addr

    def flush_range(self, addr, length):
        del addr, length

    def sfence(self):
        pass

    mfence = sfence

    def persist(self, addr, length):
        del addr, length

    def crash(self, policy=None):
        """DRAM loses everything on power failure."""
        del policy
        self._data = bytearray(self.size)
        self._resident.clear()

    def _check(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside arena of %d bytes"
                % (addr, addr + length, self.size)
            )
