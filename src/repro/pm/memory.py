"""Byte-addressable persistent and volatile memory with cache semantics.

``PersistentMemory`` models the path a store takes on real hardware:

1. ``write()`` lands in the (volatile) CPU cache — cheap, and invisible
   to the persistence domain;
2. ``clflush()`` puts the cache line's current content *in flight*
   toward memory (and, like the real instruction, evicts the line);
3. a fence (``sfence``/``mfence``) guarantees in-flight flushes have
   completed — only then is the data durable.

``crash()`` discards all volatile state and lets a ``CrashPolicy``
decide which still-unfenced atomic units happened to reach persistence,
torn at the configured granularity (8-byte words, the baseline hardware
guarantee, or full 64-byte lines, the paper's HTM-era assumption).

Every load miss charges the PM read latency and every ``clflush``
charges the PM write latency to the shared ``SimClock``, mirroring how
the paper drives Quartz and injects post-``clflush`` delays.
"""

from collections import OrderedDict

from repro.obs import trace as ev
from repro.obs.context import Observability
from repro.pm.clock import SimClock
from repro.pm.crash import PersistAll
from repro.pm.latency import CostModel, LatencyProfile
from repro.pm.stats import MemoryStats

CACHE_LINE = 64
WORD = 8
_WORDS_PER_LINE = CACHE_LINE // WORD

#: All eight words of a line dirty (the common full-line case).
_FULL_LINE = (1 << _WORDS_PER_LINE) - 1

#: ``_RANGE_MASK[first][last]`` — bitmask of words ``first..last``
#: (inclusive), precomputed so the store hot path marks a span of
#: dirty words with one table lookup and one ``|=``.
_RANGE_MASK = tuple(
    tuple(
        ((1 << (last - first + 1)) - 1) << first if last >= first else 0
        for last in range(_WORDS_PER_LINE)
    )
    for first in range(_WORDS_PER_LINE)
)

#: Flat variant of ``_RANGE_MASK``, indexed ``first * 8 + last`` — one
#: subscript instead of two on the store fast path.
_RANGE_MASK_FLAT = tuple(
    _RANGE_MASK[first][last]
    for first in range(_WORDS_PER_LINE)
    for last in range(_WORDS_PER_LINE)
)


#: ``_MASK_WORDS[mask]`` — the set word indices of the 8-bit ``mask``,
#: ascending.  A 256-entry table beats re-deriving bits in the flush
#: and crash paths (see ``_bits`` for why ascending order matters).
_MASK_WORDS = tuple(
    tuple(w for w in range(_WORDS_PER_LINE) if mask >> w & 1)
    for mask in range(1 << _WORDS_PER_LINE)
)


def _bits(mask):
    """Set bit positions of ``mask``, ascending (word indices 0..7).

    Ascending order matches how CPython iterates a set of small ints,
    which is what ``dirty_words`` used to be — crash policies that
    consume an RNG per ``survives()`` call see the identical call
    sequence, keeping seeded crash tests bit-for-bit stable.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _DirtyLine:
    """Cache-resident state of one dirty line.

    ``data`` is a caller-owned 64-byte ``bytearray`` (constructors pass
    a freshly sliced/copied buffer — ``_DirtyLine`` itself no longer
    copies).  ``dirty_words`` is an integer bitmask (bit ``w`` set when
    8-byte word ``w`` of the line has unflushed modifications) instead
    of the historical ``set`` — same semantics, no per-word allocation.
    """

    __slots__ = ("data", "dirty_words")

    def __init__(self, data, dirty_words=0):
        self.data = data
        self.dirty_words = dirty_words


class _ResidencySet:
    """Bounded LRU set of cache-resident line numbers (for read-latency
    accounting only; dirty data is tracked separately and never silently
    dropped)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._lines = OrderedDict()

    def touch(self, line):
        """Record an access; return True on hit, False on miss."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return True
        self._lines[line] = None
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
        return False

    def evict(self, line):
        self._lines.pop(line, None)

    def clear(self):
        self._lines.clear()


class PersistentMemory:
    """A simulated persistent-memory arena.

    Args:
        size: arena size in bytes (multiple of the cache-line size).
        latency: PM/DRAM latency profile (the paper's sweep variable).
        cost: fixed per-operation cost model.
        clock: shared simulated clock (created if omitted).
        stats: shared counters (created if omitted).
        atomic_granularity: failure-atomic write unit in bytes — 8 for
            the baseline hardware guarantee, 64 when assuming
            failure-atomic cache-line writes (paper Section 3.2).
        cache_lines: capacity of the read-residency model, in lines.
    """

    def __init__(
        self,
        size,
        *,
        latency=None,
        cost=None,
        clock=None,
        stats=None,
        atomic_granularity=CACHE_LINE,
        cache_lines=4096,
        flush_instruction="clflush",
        obs=None,
        trace=None,
    ):
        if size % CACHE_LINE:
            raise ValueError("size must be a multiple of %d" % CACHE_LINE)
        if atomic_granularity not in (WORD, CACHE_LINE):
            raise ValueError("atomic_granularity must be 8 or 64")
        if flush_instruction not in ("clflush", "clwb"):
            raise ValueError("flush_instruction must be clflush or clwb")
        self.size = size
        self.latency = latency or LatencyProfile()
        self.cost = cost or CostModel()
        self.clock = clock or SimClock()
        self.stats = stats or MemoryStats()
        if obs is None:
            obs = Observability(
                self.clock, registry=self.stats.registry, trace=trace
            )
        self.obs = obs
        # Hot-path counters, resolved once (registry.reset() preserves
        # instrument identities, so these references stay live).
        registry = self.stats.registry
        self._c_load = registry.counter("pm.load")
        self._c_load_miss = registry.counter("pm.load_miss")
        self._c_store = registry.counter("pm.store")
        self._c_store_bytes = registry.counter("pm.store_bytes")
        self._c_flush = registry.counter("pm.flush")
        self._c_flush_clwb = registry.counter("pm.flush.clwb")
        self._c_flush_bytes = registry.counter("pm.flush_bytes")
        self._c_fence = registry.counter("pm.fence")
        self._trace = self.obs.trace
        # Scalar costs, folded once: latency/cost profiles are frozen
        # dataclasses, so the per-access attribute chains (and the
        # streaming-rate ``max``) can be hoisted out of the hot paths.
        self._read_miss_ns = self.latency.read_ns
        self._stream_ns = max(self.cost.stream_line_ns, 0.15 * self.latency.read_ns)
        self._hit_ns = self.cost.cache_hit_ns
        self._store_ns = self.cost.store_ns
        self._store_byte_ns = self.cost.store_byte_ns
        self._flush_ns = self.cost.clflush_ns + self.latency.write_ns
        self._fence_ns = self.cost.fence_ns
        self._store_fixed_ns = {
            n: self._store_ns + self._store_byte_ns * n for n in (2, 4, 8)
        }
        self.atomic_granularity = atomic_granularity
        self.flush_instruction = flush_instruction
        self._durable = bytearray(size)
        self._dirty = {}
        self._inflight = {}
        # line -> entry as the CPU sees it (dirty wins over inflight).
        # Maintained at every _dirty/_inflight mutation so read paths
        # resolve visibility with ONE dict probe instead of two.
        self._vis = {}
        # Bound-method aliases (the dicts are cleared in place, never
        # replaced, so these stay live).
        self._dget = self._dirty.get
        self._iget = self._inflight.get
        self._vget = self._vis.get
        self._resident = _ResidencySet(cache_lines)
        # Fast-path aliases into the residency model (its OrderedDict is
        # cleared in place, never replaced, so these stay live).
        self._rlines = self._resident._lines
        self._rcap = cache_lines
        # Set by the RTM emulation while a hardware transaction is open:
        # clflush inside an RTM region aborts on real hardware (paper
        # footnote 2), so the simulation forbids it outright.
        self.flush_forbidden = False

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def read(self, addr, length):
        """Read ``length`` bytes at ``addr`` through the cache.

        The first missing line of a read pays the full PM read
        latency; further lines of the *same* call stream at the
        prefetch/bandwidth rate (bulk page copies are not N serialized
        misses on real hardware).
        """
        end = addr + length
        if addr < 0 or end > self.size:
            self._check(addr, length)
        self._c_load.value += 1
        line = addr >> 6
        if 0 < length and end <= (line + 1) << 6:
            # Fast path: the whole read sits in one cache line (slot
            # headers, cells, u16/u32/u64 accessors — the dominant case).
            # Residency touch and clock advance are inlined: at tens of
            # thousands of calls per simulated operation batch, the two
            # method dispatches dominate the loop.
            lines = self._rlines
            try:
                # Hot header/cell lines hit far more than they miss, so
                # the hit path is one C call (move_to_end raises on a
                # miss).
                lines.move_to_end(line)
                ns = self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > self._rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns = self._read_miss_ns
            if ns > 0:
                clock = self.clock
                clock.now_ns += ns
                clock.pending_ns += ns
            entry = self._vget(line)
            if entry is None:
                return bytes(self._durable[addr:end])
            offset = addr - (line << 6)
            return bytes(entry.data[offset : offset + length])
        last = (end - 1) >> 6
        missed_before = False
        lines = self._rlines
        rcap = self._rcap
        clock = self.clock
        durable = self._durable
        if last == line + 1:
            # Two-line fast path: a record crossing one line boundary
            # (the most common multi-line read by far) — both lines
            # handled without the general loop's range machinery.
            ns = 0.0
            try:
                lines.move_to_end(line)
                ns += self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns += self._read_miss_ns
                missed_before = True
            try:
                lines.move_to_end(last)
                ns += self._hit_ns
            except KeyError:
                lines[last] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns += self._stream_ns if missed_before else self._read_miss_ns
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
            vget = self._vget
            entry = vget(line)
            second = vget(last)
            if entry is None and second is None:
                return bytes(durable[addr:end])
            split = last << 6
            first_part = (
                durable[addr:split] if entry is None
                else entry.data[addr - (line << 6) : CACHE_LINE]
            )
            second_part = (
                durable[split:end] if second is None
                else second.data[0 : end - split]
            )
            return bytes(first_part) + bytes(second_part)
        if not self._vis:
            # Clean arena (typical for bulk page fetches): account for
            # residency and latency per line, then take the whole range
            # from durable storage in one slice.
            for line in range(line, last + 1):
                if line in lines:
                    lines.move_to_end(line)
                    ns = self._hit_ns
                else:
                    lines[line] = None
                    if len(lines) > rcap:
                        lines.popitem(last=False)
                    self._c_load_miss.value += 1
                    if missed_before:
                        ns = self._stream_ns
                    else:
                        ns = self._read_miss_ns
                        missed_before = True
                if ns > 0:
                    clock.now_ns += ns
                    clock.pending_ns += ns
            return bytes(durable[addr:end])
        parts = []
        visible_get = self._vget
        for line in range(line, last + 1):
            if line in lines:
                lines.move_to_end(line)
                ns = self._hit_ns
            else:
                lines[line] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                if missed_before:
                    # Streaming rate degrades with the PM latency knob:
                    # Quartz injects its delay per epoch, so bulk reads
                    # slow down proportionally, floored at the DRAM-class
                    # prefetch rate.
                    ns = self._stream_ns
                else:
                    ns = self._read_miss_ns
                    missed_before = True
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
            base = line << 6
            lo = addr if addr > base else base
            hi = end if end < base + CACHE_LINE else base + CACHE_LINE
            entry = visible_get(line)
            if entry is None:
                parts.append(durable[lo:hi])
            else:
                parts.append(entry.data[lo - base : hi - base])
        return b"".join(parts)

    def read_u16(self, addr):
        """Read a little-endian u16 (the slot-header accessor — by far
        the most frequent load in the system, so it carries its own
        allocation-free fast path)."""
        if addr & 63 != 63 and 0 <= addr and addr + 2 <= self.size:
            line = addr >> 6
            self._c_load.value += 1
            lines = self._rlines
            try:
                lines.move_to_end(line)
                ns = self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > self._rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns = self._read_miss_ns
            if ns > 0:
                clock = self.clock
                clock.now_ns += ns
                clock.pending_ns += ns
            entry = self._vget(line)
            if entry is None:
                durable = self._durable
                return durable[addr] | (durable[addr + 1] << 8)
            data = entry.data
            offset = addr - (line << 6)
            return data[offset] | (data[offset + 1] << 8)
        # Line-crossing or out-of-bounds: the generic path handles
        # (and reports) both.
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        end = addr + 4
        line = addr >> 6
        if 0 <= addr and end <= self.size and end <= (line + 1) << 6:
            return int.from_bytes(self._read_line_span(line, addr, end), "little")
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        end = addr + 8
        line = addr >> 6
        if 0 <= addr and end <= self.size and end <= (line + 1) << 6:
            return int.from_bytes(self._read_line_span(line, addr, end), "little")
        return int.from_bytes(self.read(addr, 8), "little")

    def _read_line_span(self, line, addr, end):
        """Shared single-line fast path for the fixed-width readers:
        residency touch + latency charge + visible bytes, no generic
        ``read`` dispatch."""
        self._c_load.value += 1
        lines = self._rlines
        try:
            lines.move_to_end(line)
            ns = self._hit_ns
        except KeyError:
            lines[line] = None
            if len(lines) > self._rcap:
                lines.popitem(last=False)
            self._c_load_miss.value += 1
            ns = self._read_miss_ns
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        entry = self._vget(line)
        if entry is None:
            return self._durable[addr:end]
        base = line << 6
        return entry.data[addr - base : end - base]

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def write(self, addr, data):
        """Store ``data`` at ``addr``.

        The store is absorbed by the cache/store buffer: it is cheap,
        latency-independent (the paper inserts no delay for stores) and
        *not durable* until flushed and fenced.
        """
        length = len(data)
        end = addr + length
        if addr < 0 or end > self.size:
            self._check(addr, length)
        self._c_store.value += 1
        self._c_store_bytes.value += length
        trace = self._trace
        if trace.enabled:
            # ``trace.record`` inlined (here and at the flush/fence hot
            # sites below): one fewer Python call per traced event on
            # the memory-model hot path.  Body is line-for-line
            # ``TraceRecorder.record``.
            trace.seq = seq = trace.seq + 1
            trace._events.append((seq, trace._clock.now_ns, ev.STORE, addr, length))
            totals = trace._kind_totals
            try:
                totals[ev.STORE] += 1
            except KeyError:
                totals[ev.STORE] = 1
        ns = self._store_ns + self._store_byte_ns * length
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        if not length:
            return
        line = addr >> 6
        line_base = line << 6
        if end <= line_base + CACHE_LINE:
            # Fast path: the store touches a single cache line
            # (``_materialize`` inlined: the durable-backed case is by
            # far the most common).
            entry = self._dget(line)
            if entry is None:
                pending = self._iget(line)
                if pending is None:
                    entry = _DirtyLine(
                        self._durable[line_base : line_base + CACHE_LINE]
                    )
                else:
                    entry = _DirtyLine(bytearray(pending.data))
                self._dirty[line] = entry
                self._vis[line] = entry
            start = addr - line_base
            entry.data[start : start + length] = data
            entry.dirty_words |= _RANGE_MASK_FLAT[(start >> 3) * 8 + ((start + length - 1) >> 3)]
            lines = self._rlines
            if line in lines:
                lines.move_to_end(line)
            else:
                lines[line] = None
                if len(lines) > self._rcap:
                    lines.popitem(last=False)
            return
        offset = 0
        dget = self._dget
        dirty = self._dirty
        vis = self._vis
        lines = self._rlines
        rcap = self._rcap
        while offset < length:
            pos = addr + offset
            line = pos >> 6
            line_base = line << 6
            take = line_base + CACHE_LINE - pos
            rest = length - offset
            if rest < take:
                take = rest
            entry = dget(line)
            if entry is None:
                entry = self._materialize(line)
                dirty[line] = entry
                vis[line] = entry
            start = pos - line_base
            entry.data[start : start + take] = data[offset : offset + take]
            entry.dirty_words |= _RANGE_MASK_FLAT[(start >> 3) * 8 + ((start + take - 1) >> 3)]
            if line in lines:
                lines.move_to_end(line)
            else:
                lines[line] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)
            offset += take

    def write_u16(self, addr, value):
        if addr & 63 <= 62 and 0 <= addr and addr + 2 <= self.size:
            self._write_fixed(addr, value.to_bytes(2, "little"), 2)
        else:
            self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        if addr & 63 <= 60 and 0 <= addr and addr + 4 <= self.size:
            self._write_fixed(addr, value.to_bytes(4, "little"), 4)
        else:
            self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        if addr & 63 <= 56 and 0 <= addr and addr + 8 <= self.size:
            self._write_fixed(addr, value.to_bytes(8, "little"), 8)
        else:
            self.write(addr, value.to_bytes(8, "little"))

    def _write_fixed(self, addr, data, length):
        """Single-line store of a fixed-width integer (the WAL frame
        header / heap metadata hot path): ``write`` with the length
        checks and multi-line handling compiled away."""
        self._c_store.value += 1
        self._c_store_bytes.value += length
        trace = self._trace
        if trace.enabled:
            trace.seq = seq = trace.seq + 1
            trace._events.append((seq, trace._clock.now_ns, ev.STORE, addr, length))
            totals = trace._kind_totals
            try:
                totals[ev.STORE] += 1
            except KeyError:
                totals[ev.STORE] = 1
        ns = self._store_fixed_ns[length]
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        line = addr >> 6
        entry = self._dget(line)
        if entry is None:
            pending = self._iget(line)
            line_base = line << 6
            if pending is None:
                entry = _DirtyLine(
                    self._durable[line_base : line_base + CACHE_LINE]
                )
            else:
                entry = _DirtyLine(bytearray(pending.data))
            self._dirty[line] = entry
            self._vis[line] = entry
        start = addr & 63
        entry.data[start : start + length] = data
        entry.dirty_words |= _RANGE_MASK_FLAT[
            (start >> 3) * 8 + ((start + length - 1) >> 3)
        ]
        lines = self._rlines
        if line in lines:
            lines.move_to_end(line)
        else:
            lines[line] = None
            if len(lines) > self._rcap:
                lines.popitem(last=False)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def clflush(self, addr):
        """Flush the cache line containing ``addr``.

        The line's current content starts moving toward the persistence
        domain (guaranteed complete only after a fence) and the line is
        evicted from the cache, as real ``clflush`` does.  Charges the
        PM write latency — the same post-``clflush`` delay injection the
        paper uses to emulate PM write latency.
        """
        if addr < 0 or addr >= self.size:
            self._check(addr, 1)
        if self.flush_forbidden:
            raise RuntimeError(
                "clflush inside an RTM transaction violates hardware "
                "transactional semantics (paper Section 3.2, footnote 2)"
            )
        line = addr >> 6
        self._c_flush.value += 1
        trace = self._trace
        if trace.enabled:
            trace.seq = seq = trace.seq + 1
            trace._events.append((seq, trace._clock.now_ns, ev.CLFLUSH, addr, 0))
            totals = trace._kind_totals
            try:
                totals[ev.CLFLUSH] += 1
            except KeyError:
                totals[ev.CLFLUSH] = 1
        ns = self._flush_ns
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        entry = self._dirty.pop(line, None)
        if entry is not None:
            self._c_flush_bytes.value += WORD * entry.dirty_words.bit_count()
            pending = self._iget(line)
            if pending is None:
                self._inflight[line] = entry
            else:
                pending.data = entry.data
                pending.dirty_words |= entry.dirty_words
                self._vis[line] = pending
        self._rlines.pop(line, None)

    def clwb(self, addr):
        """Write back the cache line containing ``addr`` WITHOUT
        evicting it (the instruction the paper's Figure 3 shows).

        Same persistence semantics as ``clflush`` — complete only
        after a fence — but subsequent reads of the line stay cache
        hits.
        """
        if addr < 0 or addr >= self.size:
            self._check(addr, 1)
        if self.flush_forbidden:
            raise RuntimeError(
                "cache write-back inside an RTM transaction violates "
                "hardware transactional semantics"
            )
        line = addr // CACHE_LINE
        self._c_flush.value += 1
        self._c_flush_clwb.value += 1
        trace = self._trace
        if trace.enabled:
            trace.record(ev.CLWB, addr)
        self.clock.advance(self._flush_ns)
        entry = self._dirty.pop(line, None)
        if entry is not None:
            self._c_flush_bytes.value += WORD * entry.dirty_words.bit_count()
            pending = self._iget(line)
            if pending is None:
                self._inflight[line] = entry
            else:
                pending.data = entry.data
                pending.dirty_words |= entry.dirty_words
                self._vis[line] = pending
        self._resident.touch(line)  # the line stays cached

    def flush_range(self, addr, length):
        """Write back every line overlapping ``[addr, addr+length)``
        using the configured instruction (``clflush`` evicts, as on the
        paper's Haswell testbed; ``clwb`` keeps the line cached)."""
        if length <= 0:
            return
        if self.flush_instruction == "clwb":
            clwb = self.clwb
            for line in range(addr >> 6, ((addr + length - 1) >> 6) + 1):
                clwb(line << 6)
            return
        # ``clflush`` inlined per line: every commit flushes a handful
        # of ranges, and the per-line method dispatch used to rival the
        # accounting itself.  Semantics (counters, trace events, clock,
        # dirty -> in-flight movement, eviction) are line-for-line those
        # of ``clflush``.
        if addr < 0 or addr + length > self.size:
            self._check(addr, length)
        if self.flush_forbidden:
            raise RuntimeError(
                "clflush inside an RTM transaction violates hardware "
                "transactional semantics (paper Section 3.2, footnote 2)"
            )
        c_flush = self._c_flush
        c_bytes = self._c_flush_bytes
        trace = self._trace
        enabled = trace.enabled
        totals = trace._kind_totals
        ns = self._flush_ns
        clock = self.clock
        dirty_pop = self._dirty.pop
        iget = self._iget
        inflight = self._inflight
        vis = self._vis
        rlines_pop = self._rlines.pop
        for line in range(addr >> 6, ((addr + length - 1) >> 6) + 1):
            c_flush.value += 1
            if enabled:
                trace.seq = seq = trace.seq + 1
                trace._events.append(
                    (seq, trace._clock.now_ns, ev.CLFLUSH, line << 6, 0)
                )
                try:
                    totals[ev.CLFLUSH] += 1
                except KeyError:
                    totals[ev.CLFLUSH] = 1
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
            entry = dirty_pop(line, None)
            if entry is not None:
                c_bytes.value += WORD * entry.dirty_words.bit_count()
                pending = iget(line)
                if pending is None:
                    inflight[line] = entry
                else:
                    pending.data = entry.data
                    pending.dirty_words |= entry.dirty_words
                    vis[line] = pending
            rlines_pop(line, None)

    def sfence(self):
        """Complete all in-flight flushes (store fence)."""
        self._c_fence.value += 1
        trace = self._trace
        if trace.enabled:
            trace.seq = seq = trace.seq + 1
            trace._events.append((seq, trace._clock.now_ns, ev.FENCE, 0, 0))
            totals = trace._kind_totals
            try:
                totals[ev.FENCE] += 1
            except KeyError:
                totals[ev.FENCE] = 1
        ns = self._fence_ns
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        inflight = self._inflight
        if inflight:
            durable = self._durable
            dirty = self._dirty
            vis = self._vis
            for line, entry in inflight.items():
                words = entry.dirty_words
                base = line << 6
                if words == _FULL_LINE:
                    durable[base : base + CACHE_LINE] = entry.data
                else:
                    # ``_apply_words`` inlined: partial lines (slot
                    # headers, log records) dominate fence traffic.
                    data = entry.data
                    for word in _MASK_WORDS[words]:
                        lo = word << 3
                        durable[base + lo : base + lo + WORD] = data[lo : lo + WORD]
                if line not in dirty:
                    del vis[line]
            inflight.clear()

    # The single-threaded simulation gives mfence and sfence identical
    # semantics; both names exist so call sites read like the paper.
    mfence = sfence

    def persist(self, addr, length):
        """Flush + fence a range: the canonical durability sequence."""
        self.flush_range(addr, length)
        self.sfence()

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------

    def crash(self, policy=None):
        """Power-fail the machine.

        Every atomic unit that was dirty or in flight (flushed but not
        fenced) survives iff the ``policy`` says so; all volatile state
        is then discarded.  Fenced data always survives.
        """
        policy = (policy or PersistAll()).fresh()
        self._trace.record(ev.CRASH, self.dirty_unit_count())
        granule_words = self.atomic_granularity // WORD
        for source in (self._inflight, self._dirty):
            for line, entry in source.items():
                if granule_words == _WORDS_PER_LINE:
                    if policy.survives(line, 0):
                        self._apply_words(line, entry, entry.dirty_words)
                else:
                    surviving = 0
                    for word in _MASK_WORDS[entry.dirty_words]:
                        if policy.survives(line, word):
                            surviving |= 1 << word
                    self._apply_words(line, entry, surviving)
        self._dirty.clear()
        self._inflight.clear()
        self._vis.clear()
        self._resident.clear()

    def dirty_unit_count(self):
        """Number of atomic units currently at risk (for exhaustive
        crash enumeration in tests)."""
        units = 0
        for source in (self._inflight, self._dirty):
            for entry in source.values():
                if self.atomic_granularity == CACHE_LINE:
                    units += 1
                else:
                    units += entry.dirty_words.bit_count()
        return units

    def dirty_units(self):
        """The ``(line, unit)`` pairs currently at risk."""
        pairs = set()
        for source in (self._inflight, self._dirty):
            for line, entry in source.items():
                if self.atomic_granularity == CACHE_LINE:
                    pairs.add((line, 0))
                else:
                    pairs.update((line, word) for word in _bits(entry.dirty_words))
        return sorted(pairs)

    # ------------------------------------------------------------------
    # Introspection (tests and tooling)
    # ------------------------------------------------------------------

    def durable_bytes(self, addr, length):
        """What persistence currently holds (bypasses the cache)."""
        self._check(addr, length)
        return bytes(self._durable[addr : addr + length])

    def is_durably_clean(self, addr, length):
        """True if no byte of the range has unfenced modifications."""
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        return not any(
            line in self._dirty or line in self._inflight
            for line in range(first, last + 1)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _visible(self, line):
        """The content of ``line`` as the CPU currently sees it."""
        entry = self._vget(line)
        if entry is not None:
            return entry.data
        base = line * CACHE_LINE
        return self._durable[base : base + CACHE_LINE]

    def _materialize(self, line):
        """A fresh ``_DirtyLine`` seeded with the CPU-visible content of
        ``line`` (which, by construction, is not in ``_dirty``)."""
        pending = self._iget(line)
        if pending is not None:
            return _DirtyLine(bytearray(pending.data))
        base = line * CACHE_LINE
        return _DirtyLine(self._durable[base : base + CACHE_LINE])

    def _apply_words(self, line, entry, words):
        base = line * CACHE_LINE
        if words == _FULL_LINE:
            self._durable[base : base + CACHE_LINE] = entry.data
            return
        data = entry.data
        durable = self._durable
        for word in _MASK_WORDS[words]:
            lo = word << 3
            durable[base + lo : base + lo + WORD] = data[lo : lo + WORD]

    def _check(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside arena of %d bytes"
                % (addr, addr + length, self.size)
            )


class VolatileMemory:
    """A DRAM arena: same accounting interface, no persistence.

    Used by the NVWAL baseline's volatile buffer cache.  Loads charge
    the (lower) DRAM latency on residency misses; a crash erases the
    entire contents.
    """

    def __init__(self, size, *, latency=None, cost=None, clock=None, stats=None,
                 cache_lines=4096):
        self.size = size
        self.latency = latency or LatencyProfile()
        self.cost = cost or CostModel()
        self.clock = clock or SimClock()
        self.stats = stats or MemoryStats()
        registry = self.stats.registry
        self._c_load = registry.counter("dram.load")
        self._c_load_miss = registry.counter("dram.load_miss")
        self._c_store = registry.counter("dram.store")
        self._c_store_bytes = registry.counter("dram.store_bytes")
        # Folded through the one DRAM-tier attribution point shared
        # with the tiered page cache (identical values by construction,
        # so pre-existing runs stay byte-identical).
        self._dram_ns = self.cost.dram_tier_line_ns(self.latency)
        self._dram_stream_ns = self.cost.dram_tier_line_ns(
            self.latency, streamed=True
        )
        self._hit_ns = self.cost.cache_hit_ns
        self._store_ns = self.cost.store_ns
        self._store_byte_ns = self.cost.store_byte_ns
        self._store_fixed_ns = {
            n: self._store_ns + self._store_byte_ns * n for n in (2, 4, 8)
        }
        self._data = bytearray(size)
        self._resident = _ResidencySet(cache_lines)
        self._rlines = self._resident._lines
        self._rcap = cache_lines

    def read(self, addr, length):
        end = addr + length
        if addr < 0 or end > self.size:
            self._check(addr, length)
        self._c_load.value += 1
        line = addr >> 6
        if 0 < length and end <= (line + 1) << 6:
            # Fast path: single-line read (headers and cells), with the
            # residency touch and clock advance inlined as in
            # ``PersistentMemory.read``.
            lines = self._rlines
            try:
                # DRAM working sets almost always fit the cache, so the
                # hit path is one C call (move_to_end raises on a miss).
                lines.move_to_end(line)
                ns = self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > self._rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns = self._dram_ns
            if ns > 0:
                clock = self.clock
                clock.now_ns += ns
                clock.pending_ns += ns
            return bytes(self._data[addr:end])
        last = (end - 1) >> 6
        missed_before = False
        lines = self._rlines
        rcap = self._rcap
        clock = self.clock
        for line in range(line, last + 1):
            try:
                lines.move_to_end(line)
                ns = self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                if missed_before:
                    ns = self._dram_stream_ns
                else:
                    ns = self._dram_ns
                    missed_before = True
            if ns > 0:
                clock.now_ns += ns
                clock.pending_ns += ns
        return bytes(self._data[addr:end])

    def write(self, addr, data):
        length = len(data)
        end = addr + length
        if addr < 0 or end > self.size:
            self._check(addr, length)
        self._c_store.value += 1
        self._c_store_bytes.value += length
        ns = self._store_ns + self._store_byte_ns * length
        clock = self.clock
        if ns > 0:
            clock.now_ns += ns
            clock.pending_ns += ns
        self._data[addr:end] = data
        lines = self._rlines
        rcap = self._rcap
        for line in range(addr >> 6, ((end - 1) >> 6) + 1):
            try:
                lines.move_to_end(line)
            except KeyError:
                lines[line] = None
                if len(lines) > rcap:
                    lines.popitem(last=False)

    def read_u16(self, addr):
        if addr & 63 != 63 and 0 <= addr and addr + 2 <= self.size:
            # Fast path mirroring ``PersistentMemory.read_u16``: the
            # two bytes share a line, so skip the generic read and its
            # bytes allocation entirely.
            self._c_load.value += 1
            line = addr >> 6
            lines = self._rlines
            try:
                lines.move_to_end(line)
                ns = self._hit_ns
            except KeyError:
                lines[line] = None
                if len(lines) > self._rcap:
                    lines.popitem(last=False)
                self._c_load_miss.value += 1
                ns = self._dram_ns
            if ns > 0:
                clock = self.clock
                clock.now_ns += ns
                clock.pending_ns += ns
            data = self._data
            return data[addr] | (data[addr + 1] << 8)
        return int.from_bytes(self.read(addr, 2), "little")

    def read_u32(self, addr):
        return int.from_bytes(self.read(addr, 4), "little")

    def read_u64(self, addr):
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u16(self, addr, value):
        if addr & 63 <= 62 and 0 <= addr and addr + 2 <= self.size:
            self._write_fixed(addr, value.to_bytes(2, "little"), 2)
        else:
            self.write(addr, value.to_bytes(2, "little"))

    def write_u32(self, addr, value):
        if addr & 63 <= 60 and 0 <= addr and addr + 4 <= self.size:
            self._write_fixed(addr, value.to_bytes(4, "little"), 4)
        else:
            self.write(addr, value.to_bytes(4, "little"))

    def write_u64(self, addr, value):
        if addr & 63 <= 56 and 0 <= addr and addr + 8 <= self.size:
            self._write_fixed(addr, value.to_bytes(8, "little"), 8)
        else:
            self.write(addr, value.to_bytes(8, "little"))

    def _write_fixed(self, addr, data, length):
        """Single-line DRAM store of a fixed-width integer."""
        self._c_store.value += 1
        self._c_store_bytes.value += length
        ns = self._store_fixed_ns[length]
        if ns > 0:
            clock = self.clock
            clock.now_ns += ns
            clock.pending_ns += ns
        self._data[addr : addr + length] = data
        line = addr >> 6
        lines = self._rlines
        try:
            lines.move_to_end(line)
        except KeyError:
            lines[line] = None
            if len(lines) > self._rcap:
                lines.popitem(last=False)

    # Persistence operations are no-ops on DRAM: data here is volatile
    # by definition.  They exist so the slotted-page code runs
    # unchanged on the NVWAL volatile buffer cache.

    def clflush(self, addr):
        del addr

    def flush_range(self, addr, length):
        del addr, length

    def sfence(self):
        pass

    mfence = sfence

    def persist(self, addr, length):
        del addr, length

    def crash(self, policy=None):
        """DRAM loses everything on power failure."""
        del policy
        self._data = bytearray(self.size)
        self._resident.clear()

    def _check(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside arena of %d bytes"
                % (addr, addr + length, self.size)
            )
