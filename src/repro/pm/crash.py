"""Crash (power-failure) persistence policies.

When the machine loses power, data that was only in the CPU cache or in
the store buffer may or may not have reached the persistence domain:
cache lines are written back in arbitrary order, so *any subset* of the
unflushed data can survive.  What the hardware does guarantee is an
atomic-write unit — next-generation PM is expected to provide
failure-atomic 8-byte writes, and the paper (following Dulloor et al.)
additionally assumes failure-atomic *cache-line* writes when hardware
transactional memory is used.

A ``CrashPolicy`` decides, for each atomic unit that was dirty at crash
time, whether it reached persistence.  ``PersistentMemory.crash()``
applies the policy to every dirty unit independently, which explores the
full space of writeback orderings the hardware could produce.
"""

import random


class CrashPolicy:
    """Decides whether a dirty atomic unit survives a crash.

    Subclasses implement :meth:`survives`.  ``line`` is the cache-line
    number and ``unit`` the index of the atomic unit within that line
    (always 0 when the atomic granularity is a full line).
    """

    def survives(self, line, unit):
        raise NotImplementedError

    def fresh(self):
        """A policy instance to use for a new crash (hook for policies
        that carry per-crash state)."""
        return self


class PersistAll(CrashPolicy):
    """Every dirty unit reaches persistence (crash right after a full
    writeback — the most forgiving ordering)."""

    def survives(self, line, unit):
        return True


class DropAll(CrashPolicy):
    """No dirty unit reaches persistence (crash before any writeback —
    the most adversarial ordering for durability, the friendliest for
    atomicity)."""

    def survives(self, line, unit):
        return False


class RandomPersist(CrashPolicy):
    """Each dirty unit independently survives with probability ``p``.

    With a seeded ``rng`` the outcome is reproducible; repeated crashes
    sample different subsets, which is how the property-based crash
    tests explore orderings.
    """

    def __init__(self, rng=None, p=0.5):
        self._rng = rng or random.Random(0)
        self.p = p

    def survives(self, line, unit):
        return self._rng.random() < self.p


class PersistSubset(CrashPolicy):
    """Exactly the listed ``(line, unit)`` pairs survive.

    Used by exhaustive tests that enumerate every subset of a small
    number of dirty units.
    """

    def __init__(self, surviving):
        self._surviving = set(surviving)

    def survives(self, line, unit):
        return (line, unit) in self._surviving
