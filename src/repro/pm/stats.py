"""Operation counters for the simulated memory hierarchy.

The paper reports structural metrics alongside times — most prominently
the number of cache-line flush instructions per insertion (Figure 9b).
``MemoryStats`` counts every interesting event so harnesses can report
them without instrumenting call sites.
"""

from dataclasses import dataclass, fields


@dataclass
class MemoryStats:
    """Mutable event counters shared by one simulation's memory objects."""

    loads: int = 0
    load_misses: int = 0
    stores: int = 0
    bytes_stored: int = 0
    clflushes: int = 0
    bytes_flushed: int = 0
    fences: int = 0
    dram_loads: int = 0
    dram_load_misses: int = 0
    dram_stores: int = 0
    dram_bytes_stored: int = 0
    rtm_begins: int = 0
    rtm_commits: int = 0
    rtm_aborts: int = 0
    pm_allocs: int = 0
    pm_frees: int = 0

    def snapshot(self):
        """An independent copy of the current counter values."""
        return MemoryStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def since(self, snapshot):
        """Counter deltas accumulated since ``snapshot`` was taken."""
        return MemoryStats(
            **{
                f.name: getattr(self, f.name) - getattr(snapshot, f.name)
                for f in fields(self)
            }
        )

    def reset(self):
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self):
        """Counters as a plain ``dict`` (for reports and extra_info)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __add__(self, other):
        return MemoryStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )
