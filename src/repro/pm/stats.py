"""Operation counters for the simulated memory hierarchy.

The paper reports structural metrics alongside times — most prominently
the number of cache-line flush instructions per insertion (Figure 9b).
Counting now lives in the shared :class:`repro.obs.MetricsRegistry`;
``MemoryStats`` remains as a thin view over it so the historical field
names (``stats.clflushes``, ``stats.rtm_commits``, ...) keep working
for tests, examples and reports.
"""

from repro.obs.registry import MetricsRegistry

#: Legacy attribute name -> registry counter name.
_LEGACY_FIELDS = {
    "loads": "pm.load",
    "load_misses": "pm.load_miss",
    "stores": "pm.store",
    "bytes_stored": "pm.store_bytes",
    "clflushes": "pm.flush",
    "bytes_flushed": "pm.flush_bytes",
    "fences": "pm.fence",
    "dram_loads": "dram.load",
    "dram_load_misses": "dram.load_miss",
    "dram_stores": "dram.store",
    "dram_bytes_stored": "dram.store_bytes",
    "rtm_begins": "rtm.begin",
    "rtm_commits": "rtm.commit",
    "rtm_aborts": "rtm.abort",
    "pm_allocs": "pm.alloc",
    "pm_frees": "pm.free",
}


class MemoryStats:
    """Legacy-named view over a registry's memory-hierarchy counters.

    Reading ``stats.clflushes`` returns the live value of the registry
    counter ``pm.flush``; assignment and ``+=`` write through.  Every
    instance owns (or shares) a :class:`MetricsRegistry`, so arithmetic
    helpers (``snapshot``/``since``/``__add__``) hand back independent
    ``MemoryStats`` objects exactly as the old dataclass did.
    """

    __slots__ = ("registry",)

    def __init__(self, registry=None, **initial):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        for field, value in initial.items():
            setattr(self, field, value)

    def __getattr__(self, name):
        try:
            metric = _LEGACY_FIELDS[name]
        except KeyError:
            raise AttributeError(
                "%r has no attribute %r" % (type(self).__name__, name)
            ) from None
        return self.registry.value(metric)

    def __setattr__(self, name, value):
        try:
            metric = _LEGACY_FIELDS[name]
        except KeyError:
            raise AttributeError(
                "%r has no attribute %r" % (type(self).__name__, name)
            ) from None
        self.registry.counter(metric).value = value

    def snapshot(self):
        """An independent copy of the current counter values."""
        return MemoryStats(**self.as_dict())

    def since(self, snapshot):
        """Counter deltas accumulated since ``snapshot`` was taken."""
        return MemoryStats(
            **{
                field: getattr(self, field) - getattr(snapshot, field)
                for field in _LEGACY_FIELDS
            }
        )

    def reset(self):
        """Zero every memory-hierarchy counter in place."""
        for metric in _LEGACY_FIELDS.values():
            self.registry.counter(metric).value = 0

    def as_dict(self):
        """Counters as a plain ``dict`` (for reports and extra_info)."""
        return {field: getattr(self, field) for field in _LEGACY_FIELDS}

    def __add__(self, other):
        return MemoryStats(
            **{
                field: getattr(self, field) + getattr(other, field)
                for field in _LEGACY_FIELDS
            }
        )

    def __repr__(self):
        populated = {k: v for k, v in self.as_dict().items() if v}
        return "MemoryStats(%s)" % ", ".join(
            "%s=%d" % item for item in sorted(populated.items())
        )
