"""SQL front end: lexer, AST, parser, planner, executor."""

from repro.db.sql.parser import parse

__all__ = ["parse"]
