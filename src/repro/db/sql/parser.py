"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    stmt      := create | drop | insert | select | update | delete
               | BEGIN [TRANSACTION] | COMMIT | ROLLBACK
    create    := CREATE TABLE [IF NOT EXISTS] name '(' coldef (',' coldef)* ')'
    coldef    := name type [PRIMARY KEY]
    insert    := INSERT [OR REPLACE] INTO name ['(' cols ')']
                 VALUES tuple (',' tuple)*
    select    := SELECT items FROM name [WHERE expr]
                 [ORDER BY name [ASC|DESC]] [LIMIT expr [OFFSET expr]]
    update    := UPDATE name SET name '=' expr (',' ...)* [WHERE expr]
    delete    := DELETE FROM name [WHERE expr]

Expressions support literals, ``?`` parameters, column refs, unary
``-``/``NOT``, arithmetic, comparisons, ``IS [NOT] NULL``,
``[NOT] BETWEEN``, ``AND``/``OR``, and the aggregates COUNT/SUM/AVG/
MIN/MAX in the select list.
"""

from repro.db.errors import ParseError
from repro.db.sql import ast
from repro.db.sql.lexer import tokenize

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_TYPES = ("INTEGER", "REAL", "TEXT", "BLOB")


def parse(sql):
    """Parse one statement -> ``ast.Statement``."""
    tokens = tokenize(sql)
    parser = _Parser(tokens)
    node = parser.statement()
    parser.expect_end()
    return ast.Statement(
        node=node,
        token_count=len(tokens),
        param_count=parser.param_count,
    )


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.param_count = 0

    # -- token helpers ---------------------------------------------------

    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept_keyword(self, *words):
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in words:
            return self.advance()
        return None

    def expect_keyword(self, *words):
        token = self.accept_keyword(*words)
        if token is None:
            raise ParseError(
                "expected %s, got %r" % ("/".join(words), self.peek().value)
            )
        return token

    def accept_punct(self, char):
        token = self.peek()
        if token.kind == "PUNCT" and token.value == char:
            return self.advance()
        return None

    def expect_punct(self, char):
        if self.accept_punct(char) is None:
            raise ParseError("expected %r, got %r" % (char, self.peek().value))

    def expect_ident(self):
        token = self.peek()
        if token.kind != "IDENT":
            raise ParseError("expected identifier, got %r" % (token.value,))
        return self.advance().value

    def expect_end(self):
        self.accept_punct(";")
        if self.peek().kind != "EOF":
            raise ParseError("unexpected trailing input: %r" % self.peek().value)

    # -- statements --------------------------------------------------------

    def statement(self):
        token = self.peek()
        if token.kind != "KEYWORD":
            raise ParseError("expected a statement, got %r" % (token.value,))
        word = token.value
        if word == "CREATE":
            return self.create_table()
        if word == "DROP":
            return self.drop_table()
        if word == "INSERT":
            return self.insert()
        if word == "SELECT":
            return self.select()
        if word == "UPDATE":
            return self.update()
        if word == "DELETE":
            return self.delete()
        if word == "BEGIN":
            self.advance()
            self.accept_keyword("TRANSACTION")
            return ast.Begin()
        if word == "COMMIT":
            self.advance()
            return ast.Commit()
        if word == "ROLLBACK":
            self.advance()
            if self.accept_keyword("TO"):
                self.accept_keyword("SAVEPOINT")
                return ast.RollbackTo(self.expect_ident())
            return ast.Rollback()
        if word == "SAVEPOINT":
            self.advance()
            return ast.Savepoint(self.expect_ident())
        if word == "RELEASE":
            self.advance()
            self.accept_keyword("SAVEPOINT")
            return ast.Release(self.expect_ident())
        if word == "VACUUM":
            self.advance()
            return ast.Vacuum()
        raise ParseError("unsupported statement %r" % word)

    def create_table(self):
        self.expect_keyword("CREATE")
        if self.accept_keyword("INDEX"):
            return self.create_index()
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_punct("(")
        columns = [self.column_def()]
        while self.accept_punct(","):
            columns.append(self.column_def())
        self.expect_punct(")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def column_def(self):
        name = self.expect_ident()
        type_token = self.expect_keyword(*_TYPES)
        primary = False
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            primary = True
        return ast.ColumnDef(name, type_token.value, primary)

    def create_index(self):
        """``CREATE INDEX`` — the CREATE keyword was already consumed."""
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_punct("(")
        columns = [self.expect_ident()]
        while self.accept_punct(","):
            columns.append(self.expect_ident())
        self.expect_punct(")")
        return ast.CreateIndex(name, table, tuple(columns), if_not_exists)

    def drop_table(self):
        self.expect_keyword("DROP")
        if self.accept_keyword("INDEX"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return ast.DropIndex(self.expect_ident(), if_exists)
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_ident(), if_exists)

    def insert(self):
        self.expect_keyword("INSERT")
        replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            replace = True
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns = None
        if self.accept_punct("("):
            columns = [self.expect_ident()]
            while self.accept_punct(","):
                columns.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(columns)
        self.expect_keyword("VALUES")
        rows = [self.value_tuple()]
        while self.accept_punct(","):
            rows.append(self.value_tuple())
        return ast.Insert(table, columns, tuple(rows), replace)

    def value_tuple(self):
        self.expect_punct("(")
        values = [self.expression()]
        while self.accept_punct(","):
            values.append(self.expression())
        self.expect_punct(")")
        return tuple(values)

    def select(self):
        self.expect_keyword("SELECT")
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        self.expect_keyword("FROM")
        table = self.expect_ident()
        table_alias = self.optional_alias()
        join = None
        if self.accept_keyword("INNER"):
            self.expect_keyword("JOIN")
            join = self.join_clause()
        elif self.accept_keyword("JOIN"):
            join = self.join_clause()
        where = self.optional_where()
        group_by = None
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.expect_ident()
            if self.accept_keyword("HAVING"):
                having = self.expression()
        order_by = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = (self.order_term(),)
            while self.accept_punct(","):
                order_by += (self.order_term(),)
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.expression()
            if self.accept_keyword("OFFSET"):
                offset = self.expression()
        return ast.Select(table, tuple(items), where, order_by, limit, offset,
                          group_by, having, table_alias, join)

    def order_term(self):
        column = self.expect_ident()
        if self.accept_punct("."):
            column = "%s.%s" % (column, self.expect_ident())
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderBy(column, descending)

    def optional_alias(self):
        if self.accept_keyword("AS"):
            return self.expect_ident()
        if self.peek().kind == "IDENT":
            return self.advance().value
        return None

    def join_clause(self):
        table = self.expect_ident()
        alias = self.optional_alias()
        self.expect_keyword("ON")
        return ast.Join(table, alias, self.expression())

    def select_item(self):
        if self.peek().kind == "OP" and self.peek().value == "*":
            self.advance()
            return ("*", None)
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return (expr, alias)

    def update(self):
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_punct(","):
            assignments.append(self.assignment())
        return ast.Update(table, tuple(assignments), self.optional_where())

    def assignment(self):
        column = self.expect_ident()
        token = self.peek()
        if token.kind != "OP" or token.value != "=":
            raise ParseError("expected '=' in SET clause")
        self.advance()
        return (column, self.expression())

    def delete(self):
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        return ast.Delete(table, self.optional_where())

    def optional_where(self):
        if self.accept_keyword("WHERE"):
            return self.expression()
        return None

    # -- expressions (precedence climbing) ---------------------------------

    def expression(self):
        return self.or_expr()

    def or_expr(self):
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.Binary("OR", left, self.and_expr())
        return left

    def and_expr(self):
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.Binary("AND", left, self.not_expr())
        return left

    def not_expr(self):
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self.not_expr())
        return self.comparison()

    def comparison(self):
        left = self.additive()
        token = self.peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.advance()
            return ast.Binary(token.value, left, self.additive())
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self.additive(), negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            options = [self.expression()]
            while self.accept_punct(","):
                options.append(self.expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(options), negated)
        if negated:
            raise ParseError("expected BETWEEN, LIKE or IN after NOT")
        return left

    def additive(self):
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                self.advance()
                left = ast.Binary(token.value, left, self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.unary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("*", "/"):
                self.advance()
                left = ast.Binary(token.value, left, self.unary())
            else:
                return left

    def unary(self):
        token = self.peek()
        if token.kind == "OP" and token.value == "-":
            self.advance()
            return ast.Unary("-", self.unary())
        return self.primary()

    def primary(self):
        token = self.peek()
        if token.kind in ("INT", "FLOAT", "STRING", "BLOB"):
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if token.kind == "PARAM":
            self.advance()
            index = self.param_count
            self.param_count += 1
            return ast.Param(index)
        if token.kind == "KEYWORD" and token.value in _AGGREGATES:
            return self.aggregate()
        if token.kind == "IDENT":
            name = self.advance().value
            if self.peek().kind == "PUNCT" and self.peek().value == "(":
                return self.function_call(name)
            if self.peek().kind == "PUNCT" and self.peek().value == ".":
                self.advance()
                return ast.ColumnRef(self.expect_ident(), table=name)
            return ast.ColumnRef(name)
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self.expression()
            self.expect_punct(")")
            return expr
        raise ParseError("unexpected token %r in expression" % (token.value,))

    def function_call(self, name):
        upper = name.upper()
        if upper not in ("LENGTH", "UPPER", "LOWER", "ABS", "COALESCE"):
            raise ParseError("unknown function %r" % name)
        self.expect_punct("(")
        args = [self.expression()]
        while self.accept_punct(","):
            args.append(self.expression())
        self.expect_punct(")")
        return ast.FuncCall(upper, tuple(args))

    def aggregate(self):
        func = self.advance().value
        self.expect_punct("(")
        if self.peek().kind == "OP" and self.peek().value == "*":
            if func != "COUNT":
                raise ParseError("%s(*) is not valid" % func)
            self.advance()
            arg = None
        else:
            arg = ast.ColumnRef(self.expect_ident())
        self.expect_punct(")")
        return ast.Aggregate(func, arg)
