"""Access-path selection.

The only index is the primary-key B-tree, so planning reduces to:
can the WHERE clause bound the primary key?

* ``pk = <const>``                      -> point lookup
* ``pk >/>=/</<= <const>`` conjuncts    -> range scan
* ``pk BETWEEN a AND b``                -> range scan
* anything else                         -> full scan

``<const>`` means evaluable without a row (literals, parameters,
arithmetic over them).  The full WHERE clause is always re-checked as
a residual filter, so planning is purely an optimisation and never
changes results.
"""

from dataclasses import dataclass
from typing import Optional

from repro.db.sql import ast


@dataclass(frozen=True)
class AccessPath:
    """How to read the table.

    ``point`` is an expression for an exact key; otherwise ``lo`` /
    ``hi`` (either may be None) bound a scan.  Exclusive bounds are
    handled by the residual filter, so bounds here are inclusive hints.
    """

    point: Optional[object] = None
    lo: Optional[object] = None
    hi: Optional[object] = None

    @property
    def is_point(self):
        return self.point is not None


def is_constant(expr):
    """True if the expression references no columns."""
    if isinstance(expr, (ast.Literal, ast.Param)):
        return True
    if isinstance(expr, ast.Unary):
        return is_constant(expr.operand)
    if isinstance(expr, ast.Binary):
        return is_constant(expr.left) and is_constant(expr.right)
    return False


def plan_access(where, pk_name):
    """Derive an ``AccessPath`` from a WHERE expression."""
    constraints = analyze_conjuncts(where).get(pk_name)
    if constraints is None:
        return AccessPath()
    if constraints.eq is not None:
        return AccessPath(point=constraints.eq)
    return AccessPath(lo=constraints.lo, hi=constraints.hi)


@dataclass
class ColumnConstraints:
    """Constant bounds a WHERE clause puts on one column."""

    eq: Optional[object] = None
    lo: Optional[object] = None
    hi: Optional[object] = None

    @property
    def bounded(self):
        return self.eq is not None or self.lo is not None or self.hi is not None


def analyze_conjuncts(where):
    """Constant constraints per column across top-level AND conjuncts.

    Returns ``{column_name: ColumnConstraints}``.  Only conjuncts of
    the form ``col <op> const`` (or BETWEEN) contribute; everything
    else is left to the residual filter.
    """
    constraints = {}
    if where is None:
        return constraints
    for conjunct in _conjuncts(where):
        found = _column_comparison(conjunct)
        if found is None:
            continue
        column, op, value = found
        entry = constraints.setdefault(column, ColumnConstraints())
        if op == "=":
            entry.eq = value
        elif op in (">", ">="):
            entry.lo = value if entry.lo is None else entry.lo
        elif op in ("<", "<="):
            entry.hi = value if entry.hi is None else entry.hi
        elif op == "between":
            entry.lo = value[0] if entry.lo is None else entry.lo
            entry.hi = value[1] if entry.hi is None else entry.hi
    return constraints


def _conjuncts(expr):
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _column_comparison(expr):
    """Recognise ``col <op> const``; returns (column, op, const expr)."""
    if isinstance(expr, ast.Between):
        if (
            not expr.negated
            and isinstance(expr.operand, ast.ColumnRef)
            and is_constant(expr.low)
            and is_constant(expr.high)
        ):
            return expr.operand.name, "between", (expr.low, expr.high)
        return None
    if not isinstance(expr, ast.Binary):
        return None
    if expr.op not in ("=", "<", "<=", ">", ">="):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(right, ast.ColumnRef) and not isinstance(left, ast.ColumnRef):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
    if isinstance(left, ast.ColumnRef) and is_constant(right):
        return left.name, op, right
    return None
