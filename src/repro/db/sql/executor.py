"""Statement execution over an engine transaction.

The executor mirrors SQLite's virtual machine at a coarse grain: it
evaluates expressions over decoded rows and drives B-tree point
lookups / range scans chosen by the planner.  A small per-statement
and per-row CPU cost is charged to the simulated clock (segment
``sql``) so that full query response times — the paper's Figures 11-12
surface — include the "SQL parsing and SQLite bytecode processing"
component the pager-level figures exclude.
"""

from repro.db.catalog import Column
from repro.db.errors import ConstraintError, SchemaError, SqlError, TypeError_
from repro.db.records import (
    composite_prefix_range,
    decode_row,
    encode_composite,
    encode_key,
    encode_row,
)
from repro.db.sql import ast
from repro.db.sql.planner import plan_access
from repro.btree.btree import DuplicateKeyError

#: Per-row virtual-machine step cost (decode + predicate + project).
VM_ROW_NS = 120.0
#: Fixed statement setup/teardown cost (cursor open, code dispatch).
VM_STMT_NS = 1200.0


class Rows:
    """Execution result: column names + row tuples + affected count."""

    def __init__(self, columns=(), rows=(), rowcount=0):
        self.columns = list(columns)
        self.rows = list(rows)
        self.rowcount = rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def fetchall(self):
        return list(self.rows)

    def fetchone(self):
        return self.rows[0] if self.rows else None

    def scalar(self):
        """First column of the first row (aggregate convenience)."""
        return self.rows[0][0] if self.rows else None


class Executor:
    """Executes parsed statements against a catalog + transaction."""

    def __init__(self, catalog, clock):
        self.catalog = catalog
        self.clock = clock

    def execute(self, node, params, txn):
        with self.clock.segment("sql"):
            self.clock.advance(VM_STMT_NS)
        if isinstance(node, ast.CreateTable):
            return self._create_table(node, txn)
        if isinstance(node, ast.DropTable):
            return self._drop_table(node, txn)
        if isinstance(node, ast.CreateIndex):
            return self._create_index(node, txn)
        if isinstance(node, ast.DropIndex):
            return self._drop_index(node, txn)
        if isinstance(node, ast.Insert):
            return self._insert(node, params, txn)
        if isinstance(node, ast.Select):
            return self._select(node, params, txn)
        if isinstance(node, ast.Update):
            return self._update(node, params, txn)
        if isinstance(node, ast.Delete):
            return self._delete(node, params, txn)
        raise SqlError("unsupported statement %r" % type(node).__name__)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _create_table(self, node, txn):
        if node.if_not_exists and self.catalog.exists(node.name):
            return Rows()
        columns = [
            Column(col.name, col.type, col.primary_key) for col in node.columns
        ]
        names = [col.name for col in columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column name in %s" % node.name)
        self.catalog.create_table(txn, node.name, columns)
        return Rows()

    def _drop_table(self, node, txn):
        if node.if_exists and not self.catalog.exists(node.name):
            return Rows()
        self.catalog.drop_table(txn, node.name)
        return Rows()

    def _create_index(self, node, txn):
        if node.if_not_exists and self.catalog.index_exists(node.name):
            return Rows()
        index = self.catalog.create_index(txn, node.name, node.table, node.columns)
        # Backfill: index every existing row.
        table = self.catalog.get(node.table)
        count = 0
        for _, payload in txn.scan(root_slot=table.root_slot):
            row = decode_row(payload)
            txn.insert(
                self._entry_key(table, index, row), b"",
                root_slot=index.root_slot,
            )
            count += 1
        self._charge_rows(count)
        return Rows()

    def _drop_index(self, node, txn):
        if node.if_exists and not self.catalog.index_exists(node.name):
            return Rows()
        self.catalog.drop_index(txn, node.name)
        return Rows()

    # ------------------------------------------------------------------
    # Secondary-index maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _entry_key(table, index, row):
        parts = [
            row[table.column_index(name)] for name in index.column_names
        ]
        parts.append(row[table.pk_index])
        return encode_composite(parts)

    def _index_row(self, txn, table, row):
        for index in self.catalog.indexes_on(table.name):
            txn.insert(
                self._entry_key(table, index, row), b"",
                root_slot=index.root_slot, replace=True,
            )

    def _unindex_row(self, txn, table, row):
        for index in self.catalog.indexes_on(table.name):
            txn.delete(
                self._entry_key(table, index, row),
                root_slot=index.root_slot,
            )

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert(self, node, params, txn):
        table = self.catalog.get(node.table)
        count = 0
        indexed = bool(self.catalog.indexes_on(table.name))
        for value_exprs in node.rows:
            row = self._build_row(table, node.columns, value_exprs, params)
            key = table.key_for_row(row)
            if indexed and node.replace:
                old_payload = txn.search(key, root_slot=table.root_slot)
                if old_payload is not None:
                    self._unindex_row(txn, table, decode_row(old_payload))
            try:
                txn.insert(
                    key, encode_row(row),
                    root_slot=table.root_slot, replace=node.replace,
                )
            except DuplicateKeyError:
                raise ConstraintError(
                    "UNIQUE constraint failed: %s.%s"
                    % (table.name, table.columns[table.pk_index].name)
                ) from None
            if indexed:
                self._index_row(txn, table, row)
            count += 1
            self._charge_rows(1)
        return Rows(rowcount=count)

    def _build_row(self, table, columns, value_exprs, params):
        if columns is None:
            if len(value_exprs) != len(table.columns):
                raise SqlError(
                    "table %s has %d columns but %d values supplied"
                    % (table.name, len(table.columns), len(value_exprs))
                )
            named = dict(zip(table.column_names, value_exprs))
        else:
            if len(columns) != len(value_exprs):
                raise SqlError("column/value count mismatch")
            named = dict(zip(columns, value_exprs))
            for name in named:
                table.column_index(name)  # validates
        row = []
        for index, col in enumerate(table.columns):
            expr = named.get(col.name)
            value = None if expr is None else _eval(expr, None, params, table)
            value = _coerce(col, value)
            if index == table.pk_index and value is None:
                raise ConstraintError(
                    "NOT NULL constraint failed: %s.%s" % (table.name, col.name)
                )
            if not col.accepts(value):
                raise TypeError_(
                    "column %s.%s (%s) rejects %r"
                    % (table.name, col.name, col.type, value)
                )
            row.append(value)
        return tuple(row)

    def _select(self, node, params, txn):
        if node.join is not None:
            return self._join_select(node, params, txn)
        table = self.catalog.get(node.table)
        rows = list(self._matching_rows(table, node.where, params, txn))
        if node.group_by is not None:
            return self._grouped_select(node, table, rows, params)
        if any(isinstance(item[0], ast.Aggregate) for item in node.items):
            return self._aggregate(node, table, rows, params)
        columns = self._projection_names(node, table)
        projected = [
            self._project(node.items, table, row, params) for row in rows
        ]
        if node.order_by is not None:
            order = list(range(len(rows)))
            # Stable multi-pass sort: least-significant term first.
            for term in reversed(node.order_by):
                index = table.column_index(term.base_name)
                order.sort(
                    key=lambda i: _sort_key(rows[i][index]),
                    reverse=term.descending,
                )
            projected = [projected[i] for i in order]
        projected = self._window(projected, node, params, table)
        return Rows(columns, projected, len(projected))

    # ------------------------------------------------------------------
    # JOIN
    # ------------------------------------------------------------------

    def _join_select(self, node, params, txn):
        """Two-table inner join: nested loop with an index/PK lookup on
        the inner table when the ON clause is an equi-join."""
        if node.group_by is not None:
            raise SqlError("GROUP BY with JOIN is not supported")
        left = self.catalog.get(node.table)
        left_alias = node.table_alias or node.table
        right = self.catalog.get(node.join.table)
        right_alias = node.join.alias or node.join.table
        on = node.join.on
        lookup = self._equi_join_lookup(on, left, left_alias, right, right_alias)
        out_rows = []
        for left_row in self._matching_rows(left, None, params, txn):
            if lookup is not None:
                left_column, fetch = lookup
                inner = fetch(txn, left_row[left_column])
            else:
                inner = (
                    decode_row(payload)
                    for _, payload in txn.scan(root_slot=right.root_slot)
                )
            for right_row in inner:
                namespace = _join_namespace(
                    left, left_alias, left_row, right, right_alias, right_row
                )
                self._charge_rows(1)
                if not _truthy(_eval(on, namespace, params, left)):
                    continue
                if node.where is not None and not _truthy(
                    _eval(node.where, namespace, params, left)
                ):
                    continue
                out_rows.append((left_row, right_row, namespace))
        columns, projected = self._project_join(
            node, left, right, out_rows, params
        )
        if node.order_by is not None:
            order = list(range(len(out_rows)))
            for term in reversed(node.order_by):
                reference = term.reference()
                order.sort(
                    key=lambda i: _sort_key(
                        _eval(reference, out_rows[i][2], params, left)
                    ),
                    reverse=term.descending,
                )
            projected = [projected[i] for i in order]
        projected = self._window(projected, node, params, left)
        return Rows(columns, projected, len(projected))

    def _equi_join_lookup(self, on, left, left_alias, right, right_alias):
        """If ON is ``left.col = right.col``, return (left column index,
        fetch(txn, value) -> rows of the right table); else None."""
        if not (isinstance(on, ast.Binary) and on.op == "="):
            return None
        sides = [on.left, on.right]
        if not all(isinstance(s, ast.ColumnRef) and s.table for s in sides):
            return None
        by_alias = {s.table: s for s in sides}
        if set(by_alias) != {left_alias, right_alias}:
            return None
        left_column = left.column_index(by_alias[left_alias].name)
        right_name = by_alias[right_alias].name
        right_pk = right.columns[right.pk_index].name
        if right_name == right_pk:
            def fetch(txn, value):
                if value is None:
                    return
                payload = txn.search(encode_key(value), root_slot=right.root_slot)
                if payload is not None:
                    yield decode_row(payload)
            return left_column, fetch
        index = self.catalog.index_on_column(right.name, right_name)
        if index is not None:
            from repro.db.records import decode_composite

            def fetch(txn, value):
                if value is None:
                    return
                lo, hi = composite_prefix_range([value])
                for entry_key, _ in txn.scan(lo, hi, root_slot=index.root_slot):
                    pk_key = decode_composite(entry_key)[-1]
                    payload = txn.search(pk_key, root_slot=right.root_slot)
                    if payload is not None:
                        yield decode_row(payload)
            return left_column, fetch
        right_column = right.column_index(right_name)

        def fetch(txn, value):
            for _, payload in txn.scan(root_slot=right.root_slot):
                row = decode_row(payload)
                if value is not None and row[right_column] == value:
                    yield row
        return left_column, fetch

    def _project_join(self, node, left, right, out_rows, params):
        columns = []
        for expr, alias in node.items:
            if expr == "*":
                columns.extend(left.column_names)
                columns.extend(right.column_names)
            elif alias:
                columns.append(alias)
            elif isinstance(expr, ast.ColumnRef):
                columns.append(expr.name)
            else:
                columns.append("expr")
        projected = []
        for left_row, right_row, namespace in out_rows:
            values = []
            for expr, _ in node.items:
                if expr == "*":
                    values.extend(left_row)
                    values.extend(right_row)
                else:
                    values.append(_eval(expr, namespace, params, left))
            projected.append(tuple(values))
        return columns, projected

    def _window(self, rows, node, params, table):
        offset = 0
        if node.offset is not None:
            offset = int(_eval(node.offset, None, params, table))
        if node.limit is not None:
            limit = int(_eval(node.limit, None, params, table))
            return rows[offset : offset + limit]
        return rows[offset:] if offset else rows

    def _grouped_select(self, node, table, rows, params):
        """GROUP BY one column, with aggregates and optional HAVING."""
        group_index = table.column_index(node.group_by)
        groups = {}
        order = []
        for row in rows:
            key = row[group_index]
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        order.sort(key=_sort_key)
        if node.order_by is not None:
            if (
                len(node.order_by) != 1
                or node.order_by[0].base_name != node.group_by
            ):
                raise SqlError(
                    "ORDER BY with GROUP BY must order by the group column"
                )
            if node.order_by[0].descending:
                order.reverse()
        columns = []
        for expr, alias in node.items:
            if expr == "*":
                raise SqlError("SELECT * is not valid with GROUP BY")
            if alias:
                columns.append(alias)
            elif isinstance(expr, ast.Aggregate):
                columns.append(_aggregate_name(expr))
            elif isinstance(expr, ast.ColumnRef):
                columns.append(expr.name)
            else:
                columns.append("expr")
        out = []
        for key in order:
            group_rows = groups[key]
            if node.having is not None:
                if not _truthy(
                    self._eval_grouped(node.having, table, group_rows, params)
                ):
                    continue
            out.append(tuple(
                self._eval_grouped(expr, table, group_rows, params)
                for expr, _ in node.items
            ))
        out = self._window(out, node, params, table)
        return Rows(columns, out, len(out))

    def _eval_grouped(self, expr, table, group_rows, params):
        """Evaluate an expression in group context: aggregates run over
        the group, bare columns take the first row's value (SQLite's
        arbitrary-row semantics, made deterministic)."""
        if isinstance(expr, ast.Aggregate):
            return _run_aggregate(expr, table, group_rows)
        if isinstance(expr, ast.Binary):
            if expr.op in ("AND", "OR"):
                left = _truthy(self._eval_grouped(expr.left, table, group_rows, params))
                if expr.op == "AND":
                    return left and _truthy(
                        self._eval_grouped(expr.right, table, group_rows, params)
                    )
                return left or _truthy(
                    self._eval_grouped(expr.right, table, group_rows, params)
                )
            resolved = ast.Binary(
                expr.op,
                ast.Literal(self._eval_grouped(expr.left, table, group_rows, params)),
                ast.Literal(self._eval_grouped(expr.right, table, group_rows, params)),
            )
            return _eval(resolved, None, params, table)
        if isinstance(expr, ast.Unary):
            resolved = ast.Unary(
                expr.op,
                ast.Literal(self._eval_grouped(expr.operand, table, group_rows, params)),
            )
            return _eval(resolved, None, params, table)
        namespace = dict(zip(table.column_names, group_rows[0]))
        return _eval(expr, namespace, params, table)

    def _aggregate(self, node, table, rows, params):
        columns = []
        out = []
        for expr, alias in node.items:
            if not isinstance(expr, ast.Aggregate):
                raise SqlError("cannot mix aggregates and plain columns")
            columns.append(alias or _aggregate_name(expr))
            out.append(_run_aggregate(expr, table, rows))
        return Rows(columns, [tuple(out)], 1)

    def _update(self, node, params, txn):
        table = self.catalog.get(node.table)
        assignments = [
            (table.column_index(name), expr) for name, expr in node.assignments
        ]
        matches = list(self._matching_rows(table, node.where, params, txn))
        count = 0
        for row in matches:
            new_row = list(row)
            namespace = dict(zip(table.column_names, row))
            for index, expr in assignments:
                new_row[index] = _coerce(
                    table.columns[index], _eval(expr, namespace, params, table)
                )
                if not table.columns[index].accepts(new_row[index]):
                    raise TypeError_(
                        "column %s rejects %r"
                        % (table.columns[index].name, new_row[index])
                    )
            new_row = tuple(new_row)
            old_key = table.key_for_row(row)
            new_key = table.key_for_row(new_row)
            self._unindex_row(txn, table, row)
            if new_key != old_key:
                if txn.search(new_key, root_slot=table.root_slot) is not None:
                    raise ConstraintError(
                        "UNIQUE constraint failed on primary-key update"
                    )
                txn.delete(old_key, root_slot=table.root_slot)
                txn.insert(new_key, encode_row(new_row), root_slot=table.root_slot)
            else:
                txn.insert(
                    old_key, encode_row(new_row),
                    root_slot=table.root_slot, replace=True,
                )
            self._index_row(txn, table, new_row)
            count += 1
        self._charge_rows(count)
        return Rows(rowcount=count)

    def _delete(self, node, params, txn):
        table = self.catalog.get(node.table)
        rows = list(self._matching_rows(table, node.where, params, txn))
        for row in rows:
            self._unindex_row(txn, table, row)
            txn.delete(table.key_for_row(row), root_slot=table.root_slot)
        self._charge_rows(len(rows))
        return Rows(rowcount=len(rows))

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def _matching_rows(self, table, where, params, txn):
        """Decoded rows satisfying ``where``.

        Access-path priority: primary-key point/range, then a
        secondary-index point/range, then a full scan.  The whole
        WHERE is always re-checked as a residual filter.
        """
        pk_name = table.columns[table.pk_index].name
        path = plan_access(where, pk_name)
        if path.is_point:
            value = _eval(path.point, None, params, table)
            payload = (
                None if value is None
                else txn.search(encode_key(value), root_slot=table.root_slot)
            )
            candidates = [] if payload is None else [decode_row(payload)]
        elif path.lo is not None or path.hi is not None or where is None:
            lo = hi = None
            if path.lo is not None:
                lo = encode_key(_eval(path.lo, None, params, table))
            if path.hi is not None:
                hi = encode_key(_eval(path.hi, None, params, table))
            candidates = (
                decode_row(payload)
                for _, payload in txn.scan(lo, hi, root_slot=table.root_slot)
            )
        else:
            candidates = self._indexed_or_full_scan(table, where, params, txn)
        for row in candidates:
            self._charge_rows(1)
            if where is None:
                yield row
                continue
            namespace = dict(zip(table.column_names, row))
            if _truthy(_eval(where, namespace, params, table)):
                yield row

    def _indexed_or_full_scan(self, table, where, params, txn):
        """Rows via the best secondary index, else a full table scan.

        Index selection: the longest run of equality constraints on an
        index's leading columns wins, optionally extended by a range on
        the next column (the textbook composite-index rule).
        """
        from repro.db.records import (
            composite_lower_bound,
            composite_upper_bound,
            decode_composite,
            encode_composite,
        )
        from repro.db.sql.planner import analyze_conjuncts

        constraints = analyze_conjuncts(where)
        best = None  # (eq_depth, has_range, index, bounds)
        for index in self.catalog.indexes_on(table.name):
            eq_parts = []
            for column in index.column_names:
                entry = constraints.get(column)
                if entry is not None and entry.eq is not None:
                    eq_parts.append(
                        _eval(entry.eq, None, params, table)
                    )
                else:
                    break
            next_column = (
                index.column_names[len(eq_parts)]
                if len(eq_parts) < len(index.column_names) else None
            )
            range_entry = constraints.get(next_column) if next_column else None
            has_range = range_entry is not None and (
                range_entry.lo is not None or range_entry.hi is not None
            )
            if not eq_parts and not has_range:
                continue
            prefix = encode_composite(eq_parts) if eq_parts else b""
            if has_range:
                lo = hi = None
                if range_entry.lo is not None:
                    lo = prefix + composite_lower_bound(
                        _eval(range_entry.lo, None, params, table)
                    )
                if range_entry.hi is not None:
                    hi = prefix + composite_upper_bound(
                        _eval(range_entry.hi, None, params, table)
                    )
                if lo is None and eq_parts:
                    lo = prefix
                if hi is None and eq_parts:
                    hi = prefix + b"\xff" * 8
            elif eq_parts:
                lo, hi = composite_prefix_range(eq_parts)
            score = (len(eq_parts), 1 if has_range else 0)
            if best is None or score > best[0]:
                best = (score, index, lo, hi)
        if best is not None:
            _, index, lo, hi = best

            def fetch():
                for entry_key, _ in txn.scan(lo, hi, root_slot=index.root_slot):
                    pk_key = decode_composite(entry_key)[-1]
                    payload = txn.search(pk_key, root_slot=table.root_slot)
                    if payload is not None:
                        yield decode_row(payload)
            return fetch()
        return (
            decode_row(payload)
            for _, payload in txn.scan(root_slot=table.root_slot)
        )

    def _project(self, items, table, row, params):
        namespace = dict(zip(table.column_names, row))
        out = []
        for expr, _ in items:
            if expr == "*":
                out.extend(row)
            else:
                out.append(_eval(expr, namespace, params, table))
        return tuple(out)

    def _projection_names(self, node, table):
        names = []
        for expr, alias in node.items:
            if expr == "*":
                names.extend(table.column_names)
            elif alias:
                names.append(alias)
            elif isinstance(expr, ast.ColumnRef):
                names.append(expr.name)
            else:
                names.append("expr")
        return names

    def _charge_rows(self, count):
        if count:
            with self.clock.segment("sql"):
                self.clock.advance(VM_ROW_NS * count)


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------


def _eval(expr, namespace, params, table):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        try:
            return params[expr.index]
        except IndexError:
            raise SqlError(
                "statement needs %d parameters, %d supplied"
                % (expr.index + 1, len(params))
            ) from None
    if isinstance(expr, ast.ColumnRef):
        if namespace is None:
            raise SqlError("column %r not allowed here" % expr.name)
        key = "%s.%s" % (expr.table, expr.name) if expr.table else expr.name
        if key not in namespace:
            raise SchemaError(
                "no column %r in table %r" % (key, table.name)
            )
        value = namespace[key]
        if value is _AMBIGUOUS:
            raise SqlError("ambiguous column name %r" % expr.name)
        return value
    if isinstance(expr, ast.Unary):
        value = _eval(expr.operand, namespace, params, table)
        if expr.op == "-":
            return None if value is None else -value
        return not _truthy(value)
    if isinstance(expr, ast.IsNull):
        value = _eval(expr.operand, namespace, params, table)
        return (value is None) != expr.negated
    if isinstance(expr, ast.Between):
        value = _eval(expr.operand, namespace, params, table)
        low = _eval(expr.low, namespace, params, table)
        high = _eval(expr.high, namespace, params, table)
        if value is None or low is None or high is None:
            return False
        result = low <= value <= high
        return result != expr.negated
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, namespace, params, table)
    if isinstance(expr, ast.Like):
        value = _eval(expr.operand, namespace, params, table)
        pattern = _eval(expr.pattern, namespace, params, table)
        if value is None or pattern is None:
            return False
        return _like(str(value), str(pattern)) != expr.negated
    if isinstance(expr, ast.InList):
        value = _eval(expr.operand, namespace, params, table)
        if value is None:
            return False
        options = [
            _eval(option, namespace, params, table) for option in expr.options
        ]
        return (value in [o for o in options if o is not None]) != expr.negated
    if isinstance(expr, ast.FuncCall):
        return _eval_function(expr, namespace, params, table)
    if isinstance(expr, ast.Aggregate):
        raise SqlError("aggregate not allowed in this context")
    raise SqlError("cannot evaluate %r" % (expr,))


def _like(value, pattern):
    """SQLite's LIKE: %% and _ wildcards, ASCII case-insensitive."""
    import re

    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.fullmatch("".join(out), value, re.IGNORECASE | re.DOTALL) is not None


def _eval_function(expr, namespace, params, table):
    args = [_eval(arg, namespace, params, table) for arg in expr.args]
    name = expr.name
    if name == "COALESCE":
        for arg in args:
            if arg is not None:
                return arg
        return None
    if len(args) != 1:
        raise SqlError("%s takes exactly one argument" % name)
    (value,) = args
    if value is None:
        return None
    try:
        if name == "LENGTH":
            return len(value)
        if name == "UPPER":
            return value.upper()
        if name == "LOWER":
            return value.lower()
        if name == "ABS":
            return abs(value)
    except (TypeError, AttributeError):
        raise TypeError_("%s cannot take %r" % (name, value)) from None
    raise SqlError("unknown function %r" % name)


def _eval_binary(expr, namespace, params, table):
    op = expr.op
    if op == "AND":
        return _truthy(_eval(expr.left, namespace, params, table)) and _truthy(
            _eval(expr.right, namespace, params, table)
        )
    if op == "OR":
        return _truthy(_eval(expr.left, namespace, params, table)) or _truthy(
            _eval(expr.right, namespace, params, table)
        )
    left = _eval(expr.left, namespace, params, table)
    right = _eval(expr.right, namespace, params, table)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        if left is None or right is None:
            return False  # SQL UNKNOWN collapses to not-matched
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError:
            raise TypeError_(
                "cannot compare %r and %r" % (left, right)
            ) from None
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQLite yields NULL on division by zero
            result = left / right
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return result
    except TypeError:
        raise TypeError_("bad operands for %s: %r, %r" % (op, left, right)) from None
    raise SqlError("unknown operator %r" % op)


_AMBIGUOUS = object()


def _join_namespace(left, left_alias, left_row, right, right_alias, right_row):
    """Evaluation namespace for a joined row pair: qualified names
    always work; unqualified names work when unambiguous."""
    namespace = {}
    for name, value in zip(left.column_names, left_row):
        namespace["%s.%s" % (left_alias, name)] = value
        namespace[name] = value
    for name, value in zip(right.column_names, right_row):
        namespace["%s.%s" % (right_alias, name)] = value
        if name in left.column_names:
            namespace[name] = _AMBIGUOUS
        else:
            namespace[name] = value
    return namespace


def _truthy(value):
    return bool(value) and value is not None


def _coerce(col, value):
    """INTEGER literals flow into REAL columns as floats (so the key
    encoding of a REAL primary key is stable)."""
    if col.type == "REAL" and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value


def _sort_key(value):
    # NULLs sort first (SQLite's default), then by value within type.
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, value)


def _aggregate_name(expr):
    arg = "*" if expr.arg is None else expr.arg.name
    return "%s(%s)" % (expr.func, arg)


def _run_aggregate(expr, table, rows):
    if expr.arg is None:
        return len(rows)
    index = table.column_index(expr.arg.name)
    values = [row[index] for row in rows if row[index] is not None]
    if expr.func == "COUNT":
        return len(values)
    if not values:
        return None
    if expr.func == "SUM":
        return sum(values)
    if expr.func == "AVG":
        return sum(values) / len(values)
    if expr.func == "MIN":
        return min(values)
    return max(values)
