"""SQL tokenizer.

Token kinds: KEYWORD, IDENT, INT, FLOAT, STRING, BLOB, PARAM, OP,
PUNCT, EOF.  Keywords are case-insensitive; identifiers keep their
case.  String literals use single quotes with ``''`` escaping; blob
literals are ``x'hex'``.
"""

from repro.db.errors import ParseError

KEYWORDS = {
    "AND", "ASC", "AS", "AVG", "BEGIN", "BETWEEN", "BLOB", "BY", "COMMIT",
    "COUNT", "CREATE", "DELETE", "DESC", "DROP", "EXISTS", "FROM", "GROUP",
    "HAVING", "IF", "INDEX", "INSERT", "INTEGER", "INTO", "IS", "KEY",
    "IN", "INNER", "JOIN", "LIKE", "LIMIT", "MAX", "MIN", "NOT", "NULL",
    "OFFSET", "ON", "OR", "ORDER",
    "PRIMARY", "REAL", "RELEASE", "REPLACE", "ROLLBACK", "SAVEPOINT",
    "SELECT", "SET", "SUM", "TABLE", "TEXT", "TO", "TRANSACTION",
    "UPDATE", "VACUUM", "VALUES", "WHERE",
}

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "==")
_ONE_CHAR_OPS = "=<>+-*/"
_PUNCT = "(),.;"


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(sql):
    """Tokenize ``sql``; returns a list ending with an EOF token."""
    tokens = []
    pos = 0
    length = len(sql)
    while pos < length:
        ch = sql[pos]
        if ch.isspace():
            pos += 1
            continue
        if sql.startswith("--", pos):
            newline = sql.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, pos = _string(sql, pos)
            tokens.append(Token("STRING", value, pos))
            continue
        if ch in ("x", "X") and pos + 1 < length and sql[pos + 1] == "'":
            value, pos = _string(sql, pos + 1)
            try:
                tokens.append(Token("BLOB", bytes.fromhex(value), pos))
            except ValueError:
                raise ParseError("invalid blob literal at %d" % pos) from None
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length and sql[pos + 1].isdigit()):
            token, pos = _number(sql, pos)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            word = sql[start:pos]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if ch == '"':
            end = sql.find('"', pos + 1)
            if end < 0:
                raise ParseError("unterminated quoted identifier at %d" % pos)
            tokens.append(Token("IDENT", sql[pos + 1 : end], pos))
            pos = end + 1
            continue
        if ch == "?":
            tokens.append(Token("PARAM", None, pos))
            pos += 1
            continue
        two = sql[pos : pos + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("OP", "!=" if two in ("<>", "!=") else
                                ("=" if two == "==" else two), pos))
            pos += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("OP", ch, pos))
            pos += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, pos))
            pos += 1
            continue
        raise ParseError("unexpected character %r at %d" % (ch, pos))
    tokens.append(Token("EOF", None, length))
    return tokens


def _string(sql, pos):
    """Parse a single-quoted string starting at ``pos``."""
    assert sql[pos] == "'"
    pos += 1
    out = []
    while pos < len(sql):
        ch = sql[pos]
        if ch == "'":
            if pos + 1 < len(sql) and sql[pos + 1] == "'":
                out.append("'")
                pos += 2
                continue
            return "".join(out), pos + 1
        out.append(ch)
        pos += 1
    raise ParseError("unterminated string literal")


def _number(sql, pos):
    start = pos
    length = len(sql)
    while pos < length and sql[pos].isdigit():
        pos += 1
    is_float = False
    if pos < length and sql[pos] == ".":
        is_float = True
        pos += 1
        while pos < length and sql[pos].isdigit():
            pos += 1
    if pos < length and sql[pos] in "eE":
        is_float = True
        pos += 1
        if pos < length and sql[pos] in "+-":
            pos += 1
        if pos >= length or not sql[pos].isdigit():
            raise ParseError("malformed number at %d" % start)
        while pos < length and sql[pos].isdigit():
            pos += 1
    text = sql[start:pos]
    if is_float:
        return Token("FLOAT", float(text), start), pos
    return Token("INT", int(text), start), pos
