"""SQL abstract syntax tree.

Plain dataclasses; the planner/executor dispatch on these types.
Expressions evaluate over a row namespace (column name -> value).
"""

from dataclasses import dataclass, field
from typing import Optional


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class Param:
    index: int


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None  # qualifier ("t.col"), alias-resolved


@dataclass(frozen=True)
class Unary:
    op: str  # "-", "NOT"
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str  # = != < <= > >= AND OR + - * /
    left: object
    right: object


@dataclass(frozen=True)
class IsNull:
    operand: object
    negated: bool


@dataclass(frozen=True)
class Between:
    operand: object
    low: object
    high: object
    negated: bool


@dataclass(frozen=True)
class Aggregate:
    func: str  # COUNT SUM AVG MIN MAX
    arg: object  # ColumnRef or None (COUNT(*))


@dataclass(frozen=True)
class Like:
    operand: object
    pattern: object
    negated: bool


@dataclass(frozen=True)
class InList:
    operand: object
    options: tuple
    negated: bool


@dataclass(frozen=True)
class FuncCall:
    name: str     # LENGTH, UPPER, LOWER, ABS, COALESCE
    args: tuple


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str
    primary_key: bool


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple
    if_not_exists: bool


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple
    if_not_exists: bool


@dataclass(frozen=True)
class DropIndex:
    name: str
    if_exists: bool


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Optional[tuple]  # None = all, in declaration order
    rows: tuple               # tuple of tuples of expressions
    replace: bool             # INSERT OR REPLACE


@dataclass(frozen=True)
class OrderBy:
    column: str  # possibly qualified ("alias.col")
    descending: bool

    def reference(self):
        """The column as a ColumnRef (resolving any qualifier)."""
        if "." in self.column:
            qualifier, name = self.column.split(".", 1)
            return ColumnRef(name, table=qualifier)
        return ColumnRef(self.column)

    @property
    def base_name(self):
        return self.column.split(".", 1)[-1]


@dataclass(frozen=True)
class Join:
    table: str
    alias: Optional[str]
    on: object


@dataclass(frozen=True)
class Select:
    table: str
    items: tuple              # of (expr, alias or None); expr may be "*"
    where: Optional[object]
    order_by: Optional[OrderBy]
    limit: Optional[object]
    offset: Optional[object]
    group_by: Optional[str] = None
    having: Optional[object] = None
    table_alias: Optional[str] = None
    join: Optional[Join] = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple        # of (column, expr)
    where: Optional[object]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[object]


@dataclass(frozen=True)
class Begin:
    pass


@dataclass(frozen=True)
class Commit:
    pass


@dataclass(frozen=True)
class Rollback:
    pass


@dataclass(frozen=True)
class Vacuum:
    pass


@dataclass(frozen=True)
class Savepoint:
    name: str


@dataclass(frozen=True)
class Release:
    name: str


@dataclass(frozen=True)
class RollbackTo:
    name: str


@dataclass
class Statement:
    """Wrapper carrying parse metadata (e.g. token count for the
    simulated parse-cost model)."""

    node: object
    token_count: int = 0
    param_count: int = 0
    extra: dict = field(default_factory=dict)
