"""The public database API (the SQLite-shaped surface).

``Database`` owns a storage engine, a catalog, and an executor, and
exposes ``execute(sql, params)`` with SQLite-like autocommit semantics:
outside an explicit ``BEGIN`` each statement runs in its own
transaction — the paper's observation that "most write transactions
insert just a single data item into the SQLite database" is exactly
this mode.

Timing: SQL parsing charges the simulated clock per token (segment
``sql``), on top of the executor's per-statement/per-row costs, so the
engine-level phases (search / page update / commit) and the full
response time (Figures 11-12) are both measurable.
"""

from repro.core import SystemConfig, open_engine
from repro.db.catalog import Catalog
from repro.db.errors import SqlError
from repro.db.sql import ast
from repro.db.sql.executor import Executor, Rows
from repro.db.sql.parser import parse

#: Simulated cost of lexing+parsing+code generation, per token.  A
#: short INSERT is ~15 tokens -> ~7.5 us, in line with SQLite
#: prepare times on the paper's hardware class (tens of microseconds
#: end-to-end per statement).
PARSE_TOKEN_NS = 500.0

Result = Rows


class Database:
    """A SQL database over one of the paper's storage engines."""

    def __init__(self, engine, *, cache_statements=False, session=None,
                 catalog=None):
        self.engine = engine
        self.session = session  # None = the engine's implicit connection
        self.catalog = catalog if catalog is not None else Catalog(engine)
        self.executor = Executor(self.catalog, engine.clock)
        self.cache_statements = cache_statements
        self._statement_cache = {}
        self._txn = None
        self._savepoints = []

    @classmethod
    def open(cls, config=None, *, scheme=None, pm=None, cache_statements=False):
        """Create (or, given ``pm``, recover) a database.

        Args:
            config: ``SystemConfig`` (defaults: 4 KiB pages, FAST⁺).
            scheme: override the config's engine scheme.
            pm: an existing arena to re-attach to (crash recovery).
        """
        engine = open_engine(config or SystemConfig(), scheme=scheme, pm=pm)
        return cls(engine, cache_statements=cache_statements)

    def connect(self, name=None, read_only=False):
        """A new connection: same engine and catalog, its own session.

        Connections are the SQL face of :meth:`repro.core.base.Engine.session` —
        each owns an independent transaction scope, serialized against
        the other connections by the engine's lock manager.  Close the
        connection (or use it as a context manager) to release its
        session.

        With ``read_only=True`` the connection's transactions are MVCC
        snapshots: each pins a snapshot timestamp at begin, resolves
        every page read against the latest version ≤ that timestamp,
        and acquires zero locks — writers never block it and it never
        blocks writers.  Write statements raise.
        """
        return Database(
            self.engine,
            cache_statements=self.cache_statements,
            session=self.engine.session(name, read_only=read_only),
            catalog=self.catalog,
        )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(self, sql, params=()):
        """Run one SQL statement; returns a ``Result``."""
        statement = self._prepare(sql)
        node = statement.node
        if isinstance(node, ast.Begin):
            self._begin()
            return Rows()
        if isinstance(node, ast.Commit):
            self._commit()
            return Rows()
        if isinstance(node, ast.Rollback):
            self._rollback()
            return Rows()
        if isinstance(node, ast.Savepoint):
            self._savepoint(node.name)
            return Rows()
        if isinstance(node, ast.RollbackTo):
            self._rollback_to(node.name)
            return Rows()
        if isinstance(node, ast.Release):
            self._release(node.name)
            return Rows()
        if isinstance(node, ast.Vacuum):
            if self._txn is not None:
                raise SqlError("VACUUM cannot run inside a transaction")
            rewritten = self.engine.compact_all()
            return Rows(rowcount=rewritten)
        if len(params) != statement.param_count:
            raise SqlError(
                "statement needs %d parameters, %d supplied"
                % (statement.param_count, len(params))
            )
        if self._txn is not None:
            return self.executor.execute(node, params, self._txn)
        with self._transaction() as txn:
            return self.executor.execute(node, params, txn)

    def executemany(self, sql, param_rows):
        """Run the statement once per parameter tuple (one transaction
        per execution, like autocommit executemany)."""
        total = 0
        for params in param_rows:
            total += self.execute(sql, params).rowcount
        return total

    def query(self, sql, params=()):
        """``execute`` + ``fetchall`` convenience."""
        return self.execute(sql, params).fetchall()

    def _prepare(self, sql):
        if self.cache_statements:
            statement = self._statement_cache.get(sql)
            if statement is not None:
                return statement
        statement = parse(sql)
        with self.engine.clock.segment("sql"):
            self.engine.clock.advance(PARSE_TOKEN_NS * statement.token_count)
        if self.cache_statements:
            self._statement_cache[sql] = statement
        return statement

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _transaction(self):
        """Begin a transaction in this connection's scope (its session,
        or the engine's implicit single-session path)."""
        if self.session is not None:
            return self.session.transaction()
        return self.engine.transaction()

    def _begin(self):
        if self._txn is not None:
            raise SqlError("cannot BEGIN: a transaction is already active")
        self._txn = self._transaction()
        self._savepoints = []

    def _commit(self):
        if self._txn is None:
            raise SqlError("cannot COMMIT: no transaction is active")
        txn, self._txn = self._txn, None
        self._savepoints = []
        txn.commit()

    def _rollback(self):
        if self._txn is None:
            raise SqlError("cannot ROLLBACK: no transaction is active")
        txn, self._txn = self._txn, None
        self._savepoints = []
        txn.rollback()
        self.catalog.invalidate()

    def _savepoint(self, name):
        if self._txn is None:
            raise SqlError("SAVEPOINT requires an open transaction")
        self._savepoints.append((name, self._txn.savepoint()))

    def _find_savepoint(self, name):
        for position in range(len(self._savepoints) - 1, -1, -1):
            if self._savepoints[position][0] == name:
                return position
        raise SqlError("no such savepoint: %s" % name)

    def _rollback_to(self, name):
        if self._txn is None:
            raise SqlError("ROLLBACK TO requires an open transaction")
        position = self._find_savepoint(name)
        self._txn.rollback_to(self._savepoints[position][1])
        # The savepoint itself survives (SQLite semantics); later ones die.
        del self._savepoints[position + 1 :]
        self.catalog.invalidate()

    def _release(self, name):
        if self._txn is None:
            raise SqlError("RELEASE requires an open transaction")
        position = self._find_savepoint(name)
        del self._savepoints[position:]

    @property
    def in_transaction(self):
        return self._txn is not None

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def tables(self):
        """Names of all tables."""
        return sorted(self.catalog.tables())

    @property
    def clock(self):
        return self.engine.clock

    @property
    def stats(self):
        return self.engine.stats

    def close(self):
        """Roll back any open transaction (data is already durable)
        and release this connection's session, if it has one."""
        if self._txn is not None:
            self._rollback()
        if self.session is not None:
            self.session.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
