"""A small SQLite-like SQL layer over the storage engines.

The paper implements its schemes inside SQLite 3.8 and reports two
kinds of numbers: pager + B-tree time (Figures 6-9, measured below the
SQL layer) and full query response time including SQL parsing and
bytecode processing (Figures 11-12).  This package provides the latter
surface: a SQL subset (CREATE/DROP TABLE, INSERT, SELECT, UPDATE,
DELETE, BEGIN/COMMIT/ROLLBACK) with a lexer, recursive-descent parser,
simple index-aware planner, and an executor over the B-tree engines.

Quickstart::

    from repro.db import Database

    db = Database.open(scheme="fastplus")
    db.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO kv VALUES (?, ?)", ("hello", "world"))
    rows = db.execute("SELECT v FROM kv WHERE k = ?", ("hello",)).rows
"""

from repro.db.errors import (
    ConstraintError,
    ParseError,
    SchemaError,
    SqlError,
    TypeError_,
)
from repro.db.database import Database, Result

__all__ = [
    "ConstraintError",
    "Database",
    "ParseError",
    "Result",
    "SchemaError",
    "SqlError",
    "TypeError_",
]
