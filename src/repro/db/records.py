"""Row and key serialisation (SQLite-style serial types).

Rows are stored as the B-tree record *value*; the primary key is
encoded order-preservingly as the B-tree *key* so that range scans in
key order match SQL ordering.

Row format::

    varint column_count | serial_type per column | payloads

Serial types: 0 NULL, 1 int64, 2 float64, 3 text (varint length),
4 blob (varint length).

Key format (single-column primary keys)::

    0x01 | (i + 2^63) big-endian  -- INTEGER: two's-complement biased
    0x02 | order-flipped IEEE754  -- REAL
    0x03 | utf-8 bytes            -- TEXT (bytewise == codepoint order)
    0x04 | raw bytes              -- BLOB
"""

import struct

from repro.db.errors import TypeError_

_T_NULL = 0
_T_INT = 1
_T_REAL = 2
_T_TEXT = 3
_T_BLOB = 4

_INT_BIAS = 1 << 63


def write_varint(value, out):
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buf, pos):
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_row(values):
    """Serialise a row (tuple of None/int/float/str/bytes)."""
    out = bytearray()
    write_varint(len(values), out)
    payloads = []
    for value in values:
        if value is None:
            out.append(_T_NULL)
            payloads.append(b"")
        elif isinstance(value, bool):
            raise TypeError_("booleans are not a supported SQL type")
        elif isinstance(value, int):
            out.append(_T_INT)
            payloads.append(value.to_bytes(8, "little", signed=True))
        elif isinstance(value, float):
            out.append(_T_REAL)
            payloads.append(struct.pack("<d", value))
        elif isinstance(value, str):
            out.append(_T_TEXT)
            payloads.append(value.encode("utf-8"))
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BLOB)
            payloads.append(bytes(value))
        else:
            raise TypeError_("unsupported value type %r" % type(value).__name__)
    for value, payload in zip(values, payloads):
        if isinstance(value, (str, bytes, bytearray)):
            write_varint(len(payload), out)
        out += payload
    return bytes(out)


def decode_row(buf):
    """Deserialise a row back to a tuple."""
    count, pos = read_varint(buf, 0)
    types = buf[pos : pos + count]
    pos += count
    values = []
    for serial in types:
        if serial == _T_NULL:
            values.append(None)
        elif serial == _T_INT:
            values.append(int.from_bytes(buf[pos : pos + 8], "little", signed=True))
            pos += 8
        elif serial == _T_REAL:
            values.append(struct.unpack("<d", buf[pos : pos + 8])[0])
            pos += 8
        elif serial in (_T_TEXT, _T_BLOB):
            length, pos = read_varint(buf, pos)
            raw = buf[pos : pos + length]
            pos += length
            values.append(raw.decode("utf-8") if serial == _T_TEXT else bytes(raw))
        else:
            raise ValueError("corrupt row: serial type %d" % serial)
    return tuple(values)


def encode_key(value):
    """Order-preserving key encoding for a primary-key value.

    ``None`` encodes below every other value (SQLite's NULLs-first
    index order); primary keys reject NULL at the executor level.
    """
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        raise TypeError_("booleans cannot be keys")
    if isinstance(value, int):
        return b"\x01" + (value + _INT_BIAS).to_bytes(8, "big")
    if isinstance(value, float):
        if value == 0.0:
            value = 0.0  # normalise -0.0: it compares equal to 0.0
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        if bits & (1 << 63):
            bits = ~bits & 0xFFFF_FFFF_FFFF_FFFF  # negative: flip all
        else:
            bits |= 1 << 63  # positive: flip sign bit
        return b"\x02" + bits.to_bytes(8, "big")
    if isinstance(value, str):
        return b"\x03" + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return b"\x04" + bytes(value)
    raise TypeError_("unsupported key type %r" % type(value).__name__)


def encode_composite(parts):
    """Order-preserving encoding of a tuple of key values.

    Each part is ``encode_key``-ed, then escaped so the concatenation
    compares like the tuple: 0x00 bytes become ``00 FF`` and parts are
    terminated by ``00 00`` (the classic escape-terminator scheme —
    a shorter part sorts before any extension of it).
    """
    out = bytearray()
    for part in parts:
        encoded = encode_key(part)
        out += encoded.replace(b"\x00", b"\x00\xff")
        out += b"\x00\x00"
    return bytes(out)


def composite_prefix_range(parts):
    """(lo, hi) byte-key bounds covering every composite key whose
    leading parts equal ``parts`` (hi is inclusive for our scans)."""
    prefix = encode_composite(parts)
    return prefix, prefix + b"\xff" * 8


def composite_lower_bound(value):
    """Smallest composite key whose first part is >= ``value``."""
    return encode_key(value).replace(b"\x00", b"\x00\xff")


def composite_upper_bound(value):
    """A key above every composite whose first part is <= ``value``
    (every encoded part starts with a tag byte < 0xFF, so appending
    0xFF bytes caps all continuations)."""
    return encode_key(value).replace(b"\x00", b"\x00\xff") + b"\xff" * 8


def decode_composite(key):
    """Split a composite key back into its parts' ``encode_key`` forms
    (escaping undone)."""
    parts = []
    current = bytearray()
    position = 0
    while position < len(key):
        byte = key[position]
        if byte != 0x00:
            current.append(byte)
            position += 1
            continue
        marker = key[position + 1]
        if marker == 0xFF:
            current.append(0x00)
            position += 2
        elif marker == 0x00:
            parts.append(bytes(current))
            current.clear()
            position += 2
        else:
            raise ValueError("corrupt composite key escape")
    return parts


def decode_key(key):
    """Inverse of :func:`encode_key`."""
    if key == b"\x00":
        return None
    tag, payload = key[0], key[1:]
    if tag == 0x01:
        return int.from_bytes(payload, "big") - _INT_BIAS
    if tag == 0x02:
        bits = int.from_bytes(payload, "big")
        if bits & (1 << 63):
            bits &= ~(1 << 63) & 0xFFFF_FFFF_FFFF_FFFF
        else:
            bits = ~bits & 0xFFFF_FFFF_FFFF_FFFF
        return struct.unpack(">d", bits.to_bytes(8, "big"))[0]
    if tag == 0x03:
        return payload.decode("utf-8")
    if tag == 0x04:
        return bytes(payload)
    raise ValueError("corrupt key tag %d" % tag)
