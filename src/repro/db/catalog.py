"""System catalog: table schemas persisted in the schema tree.

Tree root-slot 0 is the schema tree (the analogue of SQLite's
``sqlite_master``): one record per table, keyed by table name, whose
value serialises the column list and the root slot of the table's own
B-tree.  Root slots 1..N_ROOT_SLOTS-1 are assigned to tables.
"""

from repro.db.errors import SchemaError
from repro.db.records import decode_row, encode_key, encode_row
from repro.storage.pagestore import N_ROOT_SLOTS

SCHEMA_TREE = 0

TYPES = ("INTEGER", "REAL", "TEXT", "BLOB")

_PY_TYPES = {
    "INTEGER": (int,),
    "REAL": (float, int),
    "TEXT": (str,),
    "BLOB": (bytes, bytearray),
}


class Column:
    """One column definition."""

    __slots__ = ("name", "type", "primary_key")

    def __init__(self, name, type_, primary_key=False):
        if type_ not in TYPES:
            raise SchemaError("unsupported column type %r" % type_)
        self.name = name
        self.type = type_
        self.primary_key = primary_key

    def accepts(self, value):
        if value is None:
            return not self.primary_key
        return isinstance(value, _PY_TYPES[self.type])


class Table:
    """A table schema bound to a B-tree root slot."""

    def __init__(self, name, columns, root_slot):
        self.name = name
        self.columns = columns
        self.root_slot = root_slot
        pk = [i for i, col in enumerate(columns) if col.primary_key]
        if len(pk) != 1:
            raise SchemaError(
                "table %r must declare exactly one PRIMARY KEY column" % name
            )
        self.pk_index = pk[0]

    @property
    def column_names(self):
        return [col.name for col in self.columns]

    def column_index(self, name):
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError("no column %r in table %r" % (name, self.name))

    def key_for_row(self, row):
        return encode_key(row[self.pk_index])

    def to_row(self):
        """Serialise for the schema tree."""
        parts = ["table", self.name, self.root_slot]
        for col in self.columns:
            parts += [col.name, col.type, 1 if col.primary_key else 0]
        return tuple(parts)

    @classmethod
    def from_row(cls, row):
        name, root_slot = row[1], row[2]
        columns = []
        for i in range(3, len(row), 3):
            columns.append(Column(row[i], row[i + 1], bool(row[i + 2])))
        return cls(name, columns, root_slot)


class Index:
    """A secondary index: a B-tree of composite keys.

    Entries are ``encode_composite([col1, col2, ..., pk])`` with an
    empty payload — the entry key alone locates the base row.
    """

    def __init__(self, name, table_name, column_names, root_slot):
        self.name = name
        self.table_name = table_name
        self.column_names = list(column_names)
        self.root_slot = root_slot

    def to_row(self):
        return ("index", self.name, self.root_slot, self.table_name,
                *self.column_names)

    @classmethod
    def from_row(cls, row):
        return cls(row[1], row[3], row[4:], row[2])


class Catalog:
    """Schema cache + persistence over an engine."""

    def __init__(self, engine):
        self.engine = engine
        self._tables = None
        self._indexes = None

    def _load(self):
        if self._tables is not None:
            return
        self._tables = {}
        self._indexes = {}
        for _, payload in self.engine.scan(root_slot=SCHEMA_TREE):
            row = decode_row(payload)
            if row[0] == "table":
                table = Table.from_row(row)
                self._tables[table.name] = table
            else:
                index = Index.from_row(row)
                self._indexes[index.name] = index

    def tables(self):
        self._load()
        return dict(self._tables)

    def indexes(self):
        self._load()
        return dict(self._indexes)

    def indexes_on(self, table_name):
        self._load()
        return [
            index for index in self._indexes.values()
            if index.table_name == table_name
        ]

    def index_on_column(self, table_name, column_name):
        """An index whose *leading* column is ``column_name``."""
        for index in self.indexes_on(table_name):
            if index.column_names[0] == column_name:
                return index
        return None

    def get(self, name):
        self._load()
        table = self._tables.get(name)
        if table is None:
            raise SchemaError("no such table: %s" % name)
        return table

    def exists(self, name):
        self._load()
        return name in self._tables

    def index_exists(self, name):
        self._load()
        return name in self._indexes

    def _free_slot(self):
        used = {table.root_slot for table in self._tables.values()}
        used |= {index.root_slot for index in self._indexes.values()}
        used.add(SCHEMA_TREE)
        free = [slot for slot in range(N_ROOT_SLOTS) if slot not in used]
        if not free:
            raise SchemaError(
                "too many tables/indexes (max %d)" % (N_ROOT_SLOTS - 1)
            )
        return free[0]

    def create_table(self, txn, name, columns):
        """Create a table inside ``txn`` (commits atomically with it)."""
        self._load()
        if name in self._tables:
            raise SchemaError("table %s already exists" % name)
        table = Table(name, columns, self._free_slot())
        txn.create_tree(table.root_slot)
        txn.insert(
            encode_key("t:" + name), encode_row(table.to_row()),
            root_slot=SCHEMA_TREE,
        )
        self._tables[name] = table
        return table

    def create_index(self, txn, name, table_name, column_names):
        """Create a secondary index inside ``txn``."""
        self._load()
        if name in self._indexes or name in self._tables:
            raise SchemaError("index %s already exists" % name)
        table = self.get(table_name)
        for column_name in column_names:
            table.column_index(column_name)  # validates
        index = Index(name, table_name, column_names, self._free_slot())
        txn.create_tree(index.root_slot)
        txn.insert(
            encode_key("i:" + name), encode_row(index.to_row()),
            root_slot=SCHEMA_TREE,
        )
        self._indexes[name] = index
        return index

    def drop_table(self, txn, name):
        table = self.get(name)
        for index in self.indexes_on(name):
            self.drop_index(txn, index.name)
        txn.delete(encode_key("t:" + name), root_slot=SCHEMA_TREE)
        # The table's pages become unreachable once its root slot is
        # cleared; garbage collection reclaims them.
        txn.ctx.set_root(table.root_slot, 0)
        del self._tables[name]
        return table

    def drop_index(self, txn, name):
        self._load()
        index = self._indexes.get(name)
        if index is None:
            raise SchemaError("no such index: %s" % name)
        txn.delete(encode_key("i:" + name), root_slot=SCHEMA_TREE)
        txn.ctx.set_root(index.root_slot, 0)
        del self._indexes[name]
        return index

    def invalidate(self):
        """Drop the cache (after rollback or recovery)."""
        self._tables = None
        self._indexes = None
