"""SQL-layer exceptions."""


class SqlError(Exception):
    """Base class for all SQL-layer errors."""


class ParseError(SqlError):
    """The statement is not valid SQL (for the supported subset)."""


class SchemaError(SqlError):
    """Unknown table/column, duplicate table, too many tables..."""


class ConstraintError(SqlError):
    """PRIMARY KEY violation or NOT NULL on the key."""


class TypeError_(SqlError):
    """A value does not fit the declared column type."""
