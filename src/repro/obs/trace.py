"""Typed event tracing: a bounded ring buffer over the whole stack.

Every layer of the simulation reports its interesting moments here —
stores, cache-line flushes, fences, RTM begin/commit/abort, log
appends, commit marks, checkpoints, recovery replays — each stamped
with the shared ``SimClock`` time.  The buffer is a fixed-capacity
ring: old events fall off, but per-kind totals are kept exactly for
the whole run (``counts()``), so counter-asserting tests can pin both
the sequence *and* the totals.

Events are plain tuples ``(seq, t_ns, kind, a, b)``:

``seq``
    A monotonically increasing sequence number (never resets while the
    recorder lives), so "events after instant X" is a stable query
    even across ring wrap-around — the crash-recovery tests use this
    to isolate the events recovery itself produced.
``t_ns``
    The simulated-clock timestamp; deterministic by construction.
``a, b``
    Kind-specific integers (address/length, page number, sequence...).

Two runs of the same seeded workload produce byte-identical event
sequences; ``tests/obs/test_determinism.py`` enforces this.
"""

from collections import deque


class _NullClock:
    """Stand-in for an unbound clock: events stamp ``t_ns = 0.0``."""

    __slots__ = ()
    now_ns = 0.0


_NULL_CLOCK = _NullClock()

# -- event kinds (the taxonomy; see DESIGN.md "Observability") ----------

STORE = "store"                      # a=addr, b=length
CLFLUSH = "clflush"                  # a=addr
CLWB = "clwb"                        # a=addr
FENCE = "fence"                      # store fence completed
RTM_BEGIN = "rtm_begin"              # a=attempt number
RTM_COMMIT = "rtm_commit"
RTM_ABORT = "rtm_abort"              # a=0 transient, 1 capacity, 2 explicit
LOG_APPEND = "log_append"            # a=frame addr/page_no, b=frame bytes
COMMIT_MARK = "commit_mark"          # a=transaction sequence number
LOG_TRUNCATE = "log_truncate"        # the log's commit word reset to 0
CHECKPOINT = "checkpoint"            # a=pages/entries written back
RECOVERY_REPLAY = "recovery_replay"  # a=page_no/slot replayed
CRASH = "crash"                      # power failure injected

# Lock-discipline events (emitted by the LockManager / Session layer
# only — the single-session fast path records none of these).  ``a`` is
# always the owning session id; for lock events ``b`` is the packed
# (resource kind, resource id, mode) word — see
# ``repro.core.locking.encode_lock`` / ``decode_lock``.
LOCK_ACQUIRE = "lock_acquire"        # a=sid, b=encoded (resource, mode)
LOCK_UPGRADE = "lock_upgrade"        # a=sid, b=encoded (resource, mode)
LOCK_RELEASE = "lock_release"        # a=sid, b=encoded (resource, mode)
LOCK_WAIT = "lock_wait"              # a=sid, b=encoded wanted (resource, mode)
LOCK_WAKE = "lock_wake"              # a=sid
TXN_BEGIN = "txn_begin"              # a=sid
TXN_COMMIT = "txn_commit"            # a=sid
TXN_ABORT = "txn_abort"              # a=sid

# MVCC snapshot-read events (emitted by the version manager only —
# runs with no read-only session open record none of these).
SNAPSHOT_BEGIN = "snapshot_begin"    # a=sid, b=snapshot timestamp
SNAPSHOT_READ = "snapshot_read"      # a=sid, b=version commit timestamp
SNAPSHOT_END = "snapshot_end"        # a=sid
MVCC_GC = "mvcc_gc"                  # a=versions reclaimed, b=watermark

# OCC (optimistic concurrency control) events, emitted by the session
# layer and the version manager only — locked and read-only sessions
# record none of these.  ``a`` is the owning session id except for
# VERSION_PUBLISH, whose ``a`` is the packed resource word (see
# ``repro.core.locking.encode_lock``) and ``b`` the commit timestamp.
OCC_BEGIN = "occ_begin"              # a=sid, b=shard-ns | pin timestamp
OCC_READ = "occ_read"                # a=sid, b=packed read-set resource
OCC_VALIDATE = "occ_validate"        # a=sid, b=pin timestamp
OCC_CONFLICT = "occ_conflict"        # a=sid, b=stale resources seen
OCC_FALLBACK = "occ_fallback"        # a=sid, b=failed validations
VERSION_PUBLISH = "version_publish"  # a=packed resource, b=commit ts

# Scheduler attribution (emitted only when a ``pick_strategy`` drives
# the cooperative scheduler — default deterministic runs record none
# of these).  Stamped at the start of every step so downstream
# consumers (the lockset race detector, the schedule-space explorer)
# can attribute the following events to the stepping session.
SCHED_PICK = "sched_pick"            # a=sid, b=client index

# Cross-shard two-phase-commit events (emitted by the shard router
# only — unsharded engines record none of these).  ``a`` is always the
# global transaction id (gtid).  For the decision event ``b`` packs
# (participant count << 1) | commit bit; for prepare/commit marks
# ``b`` is the shard index.
TWOPC_PREPARE = "twopc_prepare"      # a=gtid, b=shard index
TWOPC_DECISION = "twopc_decision"    # a=gtid, b=(participants<<1)|commit
TWOPC_COMMIT = "twopc_commit"        # a=gtid, b=shard index

# Tiered DRAM page-cache events (emitted by ``repro.storage.cache``
# only — cache-off runs record none of these).  ``a`` is always the
# page number.  For the invalidation event ``b`` carries the reason
# (see the INVAL_* constants below); the TC111 coherence rule checks
# HIT/FILL/INVAL against the page-header install stores.
CACHE_FILL = "cache_fill"            # a=page_no (copied from PM into DRAM)
CACHE_HIT = "cache_hit"              # a=page_no (read served from DRAM)
CACHE_INVAL = "cache_inval"          # a=page_no, b=reason (INVAL_*)

KINDS = (
    STORE, CLFLUSH, CLWB, FENCE,
    RTM_BEGIN, RTM_COMMIT, RTM_ABORT,
    LOG_APPEND, COMMIT_MARK, LOG_TRUNCATE,
    CHECKPOINT, RECOVERY_REPLAY, CRASH,
    LOCK_ACQUIRE, LOCK_UPGRADE, LOCK_RELEASE, LOCK_WAIT, LOCK_WAKE,
    TXN_BEGIN, TXN_COMMIT, TXN_ABORT,
    SNAPSHOT_BEGIN, SNAPSHOT_READ, SNAPSHOT_END, MVCC_GC,
    OCC_BEGIN, OCC_READ, OCC_VALIDATE, OCC_CONFLICT, OCC_FALLBACK,
    VERSION_PUBLISH,
    SCHED_PICK,
    TWOPC_PREPARE, TWOPC_DECISION, TWOPC_COMMIT,
    CACHE_FILL, CACHE_HIT, CACHE_INVAL,
)

ABORT_TRANSIENT = 0
ABORT_CAPACITY = 1
ABORT_EXPLICIT = 2

#: ``CACHE_INVAL`` reasons (the ``b`` field).
INVAL_INSTALL = 0   # a committed install rewrote the page's header
INVAL_EVICT = 1     # clock/second-chance capacity eviction
INVAL_FREE = 2      # the page returned to the store's free list


class TraceRecorder:
    """Bounded ring buffer of typed, clock-stamped events."""

    __slots__ = (
        "capacity", "enabled", "seq", "_events", "_kind_totals", "_clock",
    )

    def __init__(self, capacity=65536, *, enabled=True, clock=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.seq = 0
        self._events = deque(maxlen=capacity)
        self._kind_totals = {}
        self._clock = clock if clock is not None else _NULL_CLOCK

    def bind_clock(self, clock):
        """Stamp subsequent events with ``clock.now_ns``."""
        self._clock = clock if clock is not None else _NULL_CLOCK

    # -- recording ---------------------------------------------------------

    def record(self, kind, a=0, b=0):
        """Append one event (cheap: one deque append + one dict bump)."""
        if not self.enabled:
            return
        seq = self.seq + 1
        self.seq = seq
        self._events.append((seq, self._clock.now_ns, kind, a, b))
        totals = self._kind_totals
        try:
            totals[kind] += 1
        except KeyError:
            totals[kind] = 1

    # -- reading -----------------------------------------------------------

    def events(self, kind=None, since_seq=0):
        """Buffered events, oldest first, optionally filtered."""
        return [
            event for event in self._events
            if event[0] > since_seq and (kind is None or event[2] == kind)
        ]

    def count(self, kind):
        """Exact total of ``kind`` events ever recorded (not just those
        still in the ring)."""
        return self._kind_totals.get(kind, 0)

    def counts(self):
        """Exact per-kind totals over the recorder's whole lifetime."""
        return dict(sorted(self._kind_totals.items()))

    @property
    def dropped(self):
        """Events that have fallen off the ring."""
        return self.seq - len(self._events)

    def snapshot(self):
        """Plain-data summary (JSON-ready; feeds the obs report CLI)."""
        return {
            "capacity": self.capacity,
            "recorded": self.seq,
            "dropped": self.dropped,
            "kind_totals": self.counts(),
        }

    def clear(self):
        """Drop buffered events and totals (``seq`` keeps increasing so
        ``since_seq`` queries stay stable)."""
        self._events.clear()
        self._kind_totals.clear()

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return "TraceRecorder(recorded=%d, buffered=%d, capacity=%d)" % (
            self.seq, len(self._events), self.capacity,
        )
