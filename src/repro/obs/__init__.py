"""Cross-layer observability: metrics, tracing, phase profiling.

This package is the single instrumentation source of truth for the
reproduction.  Every figure the paper plots is a *breakdown* — phase
segments, flush counts, commit-path shares — so every layer of the
stack reports into one shared ``Observability`` handle (created by the
PM arena, reachable as ``pm.obs`` / ``engine.obs``):

``MetricsRegistry``
    Named counters, gauges and simulated-ns histograms
    (``repro.obs.registry``).  The legacy ``repro.pm.stats.MemoryStats``
    and ``repro.htm.rtm.RTMStats`` objects are now thin views over
    this registry.

``TraceRecorder``
    A bounded ring buffer of typed, clock-stamped events — store,
    clflush/clwb, fence, RTM begin/commit/abort, log append, commit
    mark, checkpoint, recovery replay (``repro.obs.trace``).

``Observability``
    The facade bundling clock + registry + trace, providing the
    ``phase(...)``/``span(...)`` context managers the engines use for
    phase accounting (``repro.obs.context``).

``python -m repro.obs snapshot.json`` renders an exported snapshot as
a human-readable report; see ``repro.obs.report``.
"""

from repro.obs.context import PHASES, Observability
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import load_snapshot, render_report
from repro.obs.trace import (
    ABORT_CAPACITY,
    ABORT_EXPLICIT,
    ABORT_TRANSIENT,
    CHECKPOINT,
    CLFLUSH,
    CLWB,
    COMMIT_MARK,
    CRASH,
    FENCE,
    KINDS,
    LOG_APPEND,
    RECOVERY_REPLAY,
    RTM_ABORT,
    RTM_BEGIN,
    RTM_COMMIT,
    STORE,
    TraceRecorder,
)

__all__ = [
    "ABORT_CAPACITY",
    "ABORT_EXPLICIT",
    "ABORT_TRANSIENT",
    "CHECKPOINT",
    "CLFLUSH",
    "CLWB",
    "COMMIT_MARK",
    "CRASH",
    "Counter",
    "FENCE",
    "Gauge",
    "Histogram",
    "KINDS",
    "LOG_APPEND",
    "MetricsRegistry",
    "Observability",
    "PHASES",
    "RECOVERY_REPLAY",
    "RTM_ABORT",
    "RTM_BEGIN",
    "RTM_COMMIT",
    "STORE",
    "TraceRecorder",
    "load_snapshot",
    "render_report",
]
