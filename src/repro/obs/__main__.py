"""CLI: render an observability snapshot as a human-readable report.

Usage::

    python -m repro.obs snapshot.json            # render an export
    python -m repro.obs --demo [--out snap.json] # run a tiny workload,
                                                 # export, and render it

The snapshot is the JSON written by ``Observability.export_json`` (or
``MetricsRegistry.export_json``); the report shows all counters,
gauges, and a summary of every phase histogram.
"""

import argparse
import sys

from repro.obs.report import load_snapshot, render_report


def _demo_snapshot(path):
    """Run a small FAST⁺ insert workload and export its snapshot."""
    from repro.bench.harness import build_config
    from repro.bench.workloads import random_keys, sized_payload
    from repro.core import open_engine

    config = build_config("fastplus", ops=200)
    engine = open_engine(config, scheme="fastplus")
    payload = sized_payload(64)
    for key in random_keys(200, seed=7):
        engine.insert(key, payload)
    return engine.obs.export_json(path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a repro.obs JSON snapshot as a report.",
    )
    parser.add_argument("snapshot", nargs="?",
                        help="path to an exported JSON snapshot")
    parser.add_argument("--demo", action="store_true",
                        help="generate a snapshot from a 200-insert "
                             "FAST+ workload instead of reading one")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="with --demo: where to write the snapshot "
                             "(default: a temporary file)")
    parser.add_argument("--title", default=None,
                        help="report title (default: the snapshot path)")
    args = parser.parse_args(argv)

    if args.demo:
        import tempfile

        path = args.out
        if path is None:
            handle = tempfile.NamedTemporaryFile(
                mode="w", suffix=".json", delete=False
            )
            handle.close()
            path = handle.name
        _demo_snapshot(path)
        print("snapshot written to %s" % path)
    elif args.snapshot:
        path = args.snapshot
    else:
        parser.error("give a snapshot path or --demo")

    snapshot = load_snapshot(path)
    print(render_report(snapshot, title=args.title or path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
