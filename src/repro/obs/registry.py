"""The metrics registry: one namespace for every counter in the system.

Before this subsystem existed, each layer accumulated its own ad-hoc
counters (``MemoryStats`` fields, ``RTMStats`` fields, ``inplace_commits``
attributes on engines...) and every harness stitched them together by
hand.  ``MetricsRegistry`` replaces all of that with three primitives:

``Counter``
    A monotonically increasing event count (``pm.flush``, ``rtm.abort``).
``Gauge``
    A point-in-time value that moves both ways (``wal.bytes_used``).
``Histogram``
    A distribution of simulated-nanosecond durations in log2 buckets
    (``phase.commit``).  Every ``SimClock`` segment feeds one of these,
    so the paper's phase breakdown figures read straight out of the
    registry.

Names are dotted paths; the taxonomy is documented in DESIGN.md
("Observability").  All iteration orders are sorted so that exports and
snapshots are deterministic — a hard requirement of the reproduction
(no host-clock or hash-order dependence).
"""

import json


class Counter:
    """A named monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter(%r, %r)" % (self.name, self.value)


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def set(self, value):
        self.value = value

    def add(self, n):
        self.value += n

    def __repr__(self):
        return "Gauge(%r, %r)" % (self.name, self.value)


class Histogram:
    """A distribution of simulated-ns values in log2 buckets.

    ``record(v)`` files ``v`` under the bucket whose upper bound is the
    smallest power of two >= v (bucket 0 holds v <= 1 ns).  Count, sum,
    min and max are exact; the buckets give the shape.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}  # log2 upper-bound exponent -> count

    def record(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = int(value - 1).bit_length() if value > 1 else 0
        buckets = self.buckets
        try:
            buckets[exponent] += 1
        except KeyError:
            buckets[exponent] = 1

    def zero(self):
        """Reset all observations in place (identity is preserved, so
        cached handles held by observers stay live)."""
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets.clear()

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "count": self.count,
            "sum_ns": self.sum,
            "min_ns": self.min,
            "max_ns": self.max,
            "mean_ns": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self):
        return "Histogram(%r, count=%d, sum=%.1f)" % (
            self.name, self.count, self.sum,
        )


class MetricsRegistry:
    """Named counters, gauges and sim-ns histograms.

    Instruments are created on first use, so call sites never need
    registration boilerplate::

        registry.inc("pm.flush")
        registry.observe("phase.commit", 840.0)
        registry.set_gauge("wal.bytes_used", 4096)
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument accessors (create on demand) -------------------------

    def counter(self, name):
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name):
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name):
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- convenience mutators --------------------------------------------

    def inc(self, name, n=1):
        self.counter(name).value += n

    def set_gauge(self, name, value):
        self.gauge(name).value = value

    def observe(self, name, value):
        self.histogram(name).record(value)

    # -- reading ----------------------------------------------------------

    def value(self, name, default=0):
        """Current value of counter (or gauge) ``name``."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        return default

    def counters(self, prefix=""):
        """``{name: value}`` of every counter under ``prefix``."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self, prefix=""):
        return {
            name: g.value
            for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix=""):
        return {
            name: h.as_dict()
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    # -- snapshots ---------------------------------------------------------

    def snapshot(self):
        """A deep, plain-data copy of every instrument (JSON-ready)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def since(self, snapshot):
        """Deltas accumulated since ``snapshot`` (from :meth:`snapshot`).

        Counters and histogram count/sum difference; gauges report their
        *current* value (a gauge has no meaningful delta).  Instruments
        with a zero delta are omitted.
        """
        counters = {}
        then = snapshot.get("counters", {})
        for name, value in self.counters().items():
            delta = value - then.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        then_h = snapshot.get("histograms", {})
        for name, hist in sorted(self._histograms.items()):
            before = then_h.get(name, {})
            count = hist.count - before.get("count", 0)
            total = hist.sum - before.get("sum_ns", 0.0)
            if count or total:
                histograms[name] = {"count": count, "sum_ns": total}
        return {
            "counters": counters,
            "gauges": self.gauges(),
            "histograms": histograms,
        }

    def reset(self):
        """Zero every instrument in place (identities are preserved, so
        cached ``Counter`` references held by hot paths stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.zero()

    # -- export ------------------------------------------------------------

    def to_json(self, *, indent=2):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def export_json(self, path):
        """Write the snapshot as JSON; returns the snapshot dict."""
        snapshot = self.snapshot()
        with open(path, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return snapshot

    def export_csv(self, path):
        """Write counters + gauges + histogram summaries as CSV rows
        ``kind,name,field,value`` (one flat, diff-friendly table)."""
        lines = ["kind,name,field,value"]
        for name, value in self.counters().items():
            lines.append("counter,%s,value,%s" % (name, value))
        for name, value in self.gauges().items():
            lines.append("gauge,%s,value,%s" % (name, value))
        for name, hist in self.histograms().items():
            for fld in ("count", "sum_ns", "min_ns", "max_ns", "mean_ns"):
                lines.append("histogram,%s,%s,%s" % (name, fld, hist[fld]))
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
