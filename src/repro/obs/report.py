"""Human-readable rendering of exported observability snapshots.

A snapshot is the JSON written by ``Observability.export_json`` (or a
bare ``MetricsRegistry.export_json``).  ``render_report`` turns it into
the text the ``python -m repro.obs`` CLI prints: grouped counters,
gauges, and a phase-histogram summary with a log2 sparkline.
"""

import json

_BARS = " ▁▂▃▄▅▆▇█"


def load_snapshot(path):
    with open(path) as fh:
        snapshot = json.load(fh)
    # Accept both a full Observability export and a bare registry dump.
    if "registry" not in snapshot and "counters" in snapshot:
        snapshot = {"registry": snapshot}
    if "registry" not in snapshot:
        raise ValueError("%s does not look like an obs snapshot" % path)
    return snapshot


def _fmt_ns(ns):
    if ns is None:
        return "-"
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2f us" % (ns / 1e3)
    return "%.0f ns" % ns


def _sparkline(buckets):
    """One glyph per populated log2 bucket, low exponent first."""
    if not buckets:
        return ""
    pairs = sorted((int(k), v) for k, v in buckets.items())
    lo, hi = pairs[0][0], pairs[-1][0]
    counts = dict(pairs)
    peak = max(counts.values())
    line = []
    for exponent in range(lo, hi + 1):
        count = counts.get(exponent, 0)
        level = 0 if not count else 1 + int((len(_BARS) - 2) * count / peak)
        line.append(_BARS[level])
    return "".join(line)


def _group(names):
    """Group dotted names by their first path component."""
    groups = {}
    for name in names:
        groups.setdefault(name.split(".", 1)[0], []).append(name)
    return groups


def _lock_discipline(kind_totals):
    """Summarise the lock/transaction event kinds, if any were traced.

    Every granted lock is released exactly once (upgrades replace the
    mode in place), so an acquire/release imbalance in a quiescent
    snapshot means leaked locks — the same condition the dynamic
    checker's TC105 flags per transaction.
    """
    acquires = kind_totals.get("lock_acquire", 0)
    upgrades = kind_totals.get("lock_upgrade", 0)
    releases = kind_totals.get("lock_release", 0)
    waits = kind_totals.get("lock_wait", 0)
    begins = kind_totals.get("txn_begin", 0)
    commits = kind_totals.get("txn_commit", 0)
    aborts = kind_totals.get("txn_abort", 0)
    if not (acquires or releases or begins):
        return []
    lines = [
        "  lock discipline: %d acquired (+%d upgraded), %d released, "
        "%d waits" % (acquires, upgrades, releases, waits),
        "  transactions: %d begun, %d committed, %d aborted"
        % (begins, commits, aborts),
    ]
    leaked = acquires - releases
    if leaked:
        lines.append("  WARNING: %d lock(s) never released" % leaked)
    return lines


def _durability_cost(counters):
    """Derived per-committed-transaction durability cost.

    The three prices every durable commit protocol pays — store
    fences, 8-byte commit marks, cache-line flushes — normalized per
    committed transaction, which is the axis group commit moves:
    epoch-pipelined commits share one fence and one mark per epoch,
    so fences/txn and marks/txn drop roughly with the group size
    while flushes/txn stay put (every line still has to reach PM).
    """
    commits = counters.get("engine.txn.commit", 0)
    if not commits:
        return []
    fences = counters.get("pm.fence", 0)
    flushes = counters.get("pm.flush", 0)
    marks = (
        counters.get("log.commit_mark", 0)
        + counters.get("wal.commit_mark", 0)
    )
    lines = [
        "",
        "per-txn durability cost",
        "-----------------------",
        "  fences/txn        %8.2f  (%d fences / %d commits)"
        % (fences / commits, fences, commits),
        "  commit-marks/txn  %8.2f  (%d marks)" % (marks / commits, marks),
        "  flushes/txn       %8.2f  (%d line flushes)"
        % (flushes / commits, flushes),
    ]
    joins = counters.get("group.join", 0)
    closes = counters.get("group.close", 0)
    if closes:
        lines.append(
            "  group commit      %d epoch(s) closed, %.2f members/epoch"
            % (closes, joins / closes)
        )
    return lines


def _isolation(counters):
    """Derived OCC writer-path health: how often optimistic commits
    validated cleanly, how often they aborted (validation or install),
    how often a session exhausted its streak and fell back to 2PL, and
    how long the commit-time lock window actually was — the span that
    replaces whole-transaction 2PL lock tenure."""
    validations = counters.get("occ.validation", 0)
    if not validations:
        return []
    begins = counters.get("occ.begin", 0)
    commits = counters.get("occ.commit", 0)
    aborts = counters.get("occ.validation.abort", 0)
    install_conflicts = counters.get("occ.install.conflict", 0)
    fallbacks = counters.get("occ.fallback", 0)
    hold_ns = counters.get("occ.lock_hold_ns", 0)
    lines = [
        "",
        "isolation (occ writer path)",
        "---------------------------",
        "  optimistic txns   %8d  (%d validations, %d installed)"
        % (begins, validations, commits),
        "  validation aborts %8d  (%.1f%% of validations)"
        % (aborts, 100.0 * aborts / validations),
    ]
    if install_conflicts:
        lines.append(
            "  install conflicts %8d  (lock race during write-set "
            "install)" % install_conflicts
        )
    lines.append(
        "  2PL fallbacks     %8d  (sessions that exhausted the "
        "validation streak)" % fallbacks
    )
    if commits:
        lines.append(
            "  commit lock span  %s mean  (%s total over %d installs)"
            % (_fmt_ns(hold_ns / commits), _fmt_ns(hold_ns), commits)
        )
    return lines


def _cache_tier(counters):
    """Derived DRAM page-cache health: how often committed reads were
    served from DRAM frames instead of paying PM read latency, and why
    frames left the cache (capacity pressure vs coherence drops at
    commit installs / page frees).  Present only when a run was
    configured with ``dram_cache_pages > 0``."""
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    lookups = hits + misses
    if not lookups:
        return []
    evicts = counters.get("cache.evict", 0)
    invalidates = counters.get("cache.invalidate", 0)
    lines = [
        "",
        "dram page cache",
        "---------------",
        "  lookups           %8d  (%d hits, %d misses, %.1f%% hit "
        "ratio)" % (lookups, hits, misses, 100.0 * hits / lookups),
        "  fills             %8d  full-page PM reads into DRAM frames"
        % counters.get("cache.fill", 0),
        "  evictions         %8d  clock/second-chance capacity drops"
        % evicts,
        "  invalidations     %8d  coherence drops (commit installs, "
        "frees, GC)" % invalidates,
    ]
    return lines


def _exploration(counters, gauges):
    """Derived schedule-space exploration summary (DPOR model checker).

    Present only when the snapshot came from a run that published
    :class:`repro.analysis.explore.Explorer` stats.  "schedules" is
    complete interleavings actually executed and checked; the two
    "pruned" lines are the work the reduction avoided (sleep-set
    blocks and revisited committed states), and "races" counts TC110
    lockset reports before dedup."""
    attempts = counters.get("explore.attempts", 0)
    if not attempts:
        return []
    schedules = counters.get("explore.schedules", 0)
    lines = [
        "",
        "schedule exploration (dpor)",
        "---------------------------",
        "  schedules         %8d  executed to completion (%d attempts,"
        " %d steps)"
        % (schedules, attempts, counters.get("explore.steps", 0)),
        "  pruned            %8d  sleep-set, %d state-hash"
        % (counters.get("explore.pruned.sleep", 0),
           counters.get("explore.pruned.state", 0)),
        "  frontier          %8d  max pending backtrack points"
        % gauges.get("explore.max_frontier", 0),
    ]
    truncated = counters.get("explore.truncated", 0)
    starved = counters.get("explore.starved", 0)
    if truncated or starved:
        lines.append(
            "  bounded           %8d  step-budget truncations, "
            "%d retry-cap starvations" % (truncated, starved)
        )
    crash_points = counters.get("explore.crash_points", 0)
    if crash_points:
        lines.append(
            "  crash product     %8d  crash points swept across "
            "distinct schedules" % crash_points
        )
    races = counters.get("explore.races", 0)
    findings = counters.get("explore.findings", 0)
    lines.append(
        "  findings          %8d  (%d lockset race report(s))"
        % (findings, races)
    )
    return lines


def render_report(snapshot, *, title="observability report"):
    registry = snapshot["registry"]
    counters = registry.get("counters", {})
    gauges = registry.get("gauges", {})
    histograms = registry.get("histograms", {})
    lines = [title, "=" * len(title)]
    if "now_ns" in snapshot:
        lines.append("simulated time: %s" % _fmt_ns(snapshot["now_ns"]))
    trace = snapshot.get("trace")
    if trace:
        lines.append(
            "trace: %d events recorded (%d buffered of %d capacity, %d dropped)"
            % (
                trace.get("recorded", 0),
                trace.get("recorded", 0) - trace.get("dropped", 0),
                trace.get("capacity", 0),
                trace.get("dropped", 0),
            )
        )
        kind_totals = trace.get("kind_totals") or {}
        if kind_totals:
            lines.append(
                "  " + "  ".join(
                    "%s=%d" % (kind, count)
                    for kind, count in sorted(kind_totals.items())
                )
            )
        lines.extend(_lock_discipline(kind_totals))
    if counters:
        lines.append("")
        lines.append("counters")
        lines.append("--------")
        width = max(len(name) for name in counters)
        for group in sorted(_group(counters)):
            for name in sorted(n for n in counters if n.split(".", 1)[0] == group):
                lines.append("  %s  %d" % (name.ljust(width), counters[name]))
        lines.extend(_durability_cost(counters))
        lines.extend(_isolation(counters))
        lines.extend(_cache_tier(counters))
        lines.extend(_exploration(counters, gauges))
    if gauges:
        lines.append("")
        lines.append("gauges")
        lines.append("------")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append("  %s  %s" % (name.ljust(width), gauges[name]))
    phases = {
        name: hist for name, hist in histograms.items()
        if name.startswith("phase.")
    }
    others = {
        name: hist for name, hist in histograms.items()
        if not name.startswith("phase.")
    }
    for heading, table in (("phase histograms", phases),
                           ("other histograms", others)):
        if not table:
            continue
        lines.append("")
        lines.append(heading)
        lines.append("-" * len(heading))
        width = max(len(name) for name in table)
        header = "  %s  %10s  %12s  %10s  %10s  %10s  %s" % (
            "name".ljust(width), "count", "total", "mean", "min", "max",
            "log2 shape",
        )
        lines.append(header)
        for name in sorted(table):
            hist = table[name]
            lines.append(
                "  %s  %10d  %12s  %10s  %10s  %10s  %s" % (
                    name.ljust(width),
                    hist.get("count", 0),
                    _fmt_ns(hist.get("sum_ns", 0.0)),
                    _fmt_ns(hist.get("mean_ns")),
                    _fmt_ns(hist.get("min_ns")),
                    _fmt_ns(hist.get("max_ns")),
                    _sparkline(hist.get("buckets", {})),
                )
            )
    return "\n".join(lines)
