"""The registry schema: every counter/gauge/histogram name in the system.

``MetricsRegistry`` creates instruments on demand, which keeps call
sites free of registration boilerplate — but it also means a typo'd
counter name silently becomes a *new* counter instead of an error.
This module is the closed-world inventory the ``repro.analysis`` lint
pass (rule PM004) checks literal metric names against: a name used
anywhere in ``src/repro`` must be listed here (exactly, or under a
registered prefix), or the lint fails.

Keep this file boring: plain frozensets and tuples, grouped by the
subsystem that owns the names.  When a PR adds a counter, it adds the
name here in the same commit — the schema is documentation that cannot
go stale.
"""

#: Exact counter names, grouped by owning subsystem.
COUNTERS = frozenset({
    # pm/memory.py — the simulated PM arena
    "pm.load", "pm.load_miss", "pm.store", "pm.store_bytes",
    "pm.flush", "pm.flush.clwb", "pm.flush_bytes", "pm.fence",
    # pm/memory.py — the volatile (DRAM) arena
    "dram.load", "dram.load_miss", "dram.store", "dram.store_bytes",
    # htm/rtm.py
    "rtm.begin", "rtm.commit", "rtm.abort", "rtm.abort.capacity",
    "rtm.fallback",
    # wal/slot_header_log.py
    "log.frame", "log.commit_mark", "log.truncate", "log.replay",
    # wal/nvwal.py
    "wal.frame", "wal.commit_mark", "wal.reset", "wal.replay",
    # core/base.py, core/fast.py, core/nvwal.py, core/naive.py
    "engine.txn.begin", "engine.txn.commit", "engine.txn.rollback",
    "engine.session.open", "engine.checkpoint", "engine.recovery",
    "engine.recovery.replayed",
    "engine.commit.inplace", "engine.commit.logged",
    "engine.commit.fallback",
    # core/locking.py
    "lock.acquire", "lock.upgrade", "lock.conflict", "lock.release",
    # core/scheduler.py
    "sched.step", "sched.wait", "sched.wake", "sched.abort",
    "sched.abort.mutated", "sched.abort.deadlock", "sched.abort.timeout",
    "sched.abort.occ",
    "sched.retry", "sched.deadlock", "sched.timeout",
    # core/epoch.py joins/closes (core/fast.py, core/nvwal.py)
    "group.join", "group.close",
    # storage/versions.py — MVCC snapshot reads over version chains
    "mvcc.snapshot_reads", "mvcc.gc_reclaimed",
    # storage/cache.py — tiered DRAM page cache in front of the PM arena
    "cache.hit", "cache.miss", "cache.fill", "cache.evict",
    "cache.invalidate",
    # core/occ.py + core/session.py — OCC writer path
    "occ.begin", "occ.validation", "occ.validation.abort",
    "occ.install.conflict", "occ.fallback", "occ.commit",
    "occ.lock_hold_ns",
    # wal/twopc.py + storage/sharding.py — cross-shard two-phase commit
    "twopc.prepare", "twopc.decision", "twopc.commit",
    "twopc.resolve.commit", "twopc.resolve.abort",
    # analysis/corpus.py — trace-checker harness bookkeeping
    "analysis.trace.txns", "analysis.trace.events",
    "analysis.trace.findings",
    # analysis/explore.py — schedule-space exploration (DPOR)
    "explore.schedules", "explore.attempts", "explore.steps",
    "explore.nodes", "explore.states",
    "explore.pruned.sleep", "explore.pruned.state",
    "explore.truncated", "explore.starved",
    "explore.races", "explore.findings", "explore.crash_points",
})

#: Exact gauge names.
GAUGES = frozenset({
    "wal.bytes_used",
    "mvcc.versions_live",
    "explore.max_frontier",
})

#: Name prefixes under which arbitrary suffixes are legal.
#: ``session.`` covers the per-session labeled counters
#: (``session.<name>.commit`` / ``.abort``); ``phase.`` covers the
#: per-segment histograms the clock observer files automatically.
#: ``shard.`` covers the per-shard labeled counters the shard router
#: files (``shard.<index>.commit`` / ``.abort``).
PREFIXES = (
    "session.",
    "phase.",
    "shard.",
)

#: Short names passed to labeled obs handles (``obs.labeled(prefix)``)
#: — the prefix supplies the namespace, so only the suffix appears as
#: a literal at the call site.
LABELED = frozenset({
    "commit", "abort",
})


def is_registered(name):
    """True when ``name`` is a schema-listed metric name.

    Accepts exact counter/gauge names, any name under a registered
    prefix, and the short labeled-counter suffixes.
    """
    if name in COUNTERS or name in GAUGES or name in LABELED:
        return True
    return any(name.startswith(prefix) for prefix in PREFIXES)


def all_names():
    """Every exact name in the schema (for reports and self-tests)."""
    return sorted(COUNTERS | GAUGES)
