"""The ``Observability`` facade: clock + registry + trace in one handle.

One ``Observability`` instance is shared by everything attached to a
simulated machine (the PM arena creates it; engines, logs, the RTM
unit and the DRAM cache all reach it through ``pm.obs``).  It bundles:

* the shared ``SimClock`` (simulated time, phase segments),
* a ``MetricsRegistry`` (every counter/gauge/histogram),
* a ``TraceRecorder`` (the typed event ring).

and provides the ``phase(...)`` / ``span(...)`` context managers that
replace the engines' hand-rolled ``clock.segment(...)`` accounting.
Both charge the simulated clock exactly as before — the figures'
Search / Page Update / Commit semantics are unchanged — and, through a
clock observer registered here, every segment entry additionally
records its duration into the ``phase.<name>`` histogram of the
registry.  ``phase`` is for the paper's top-level bars (search,
page_update, commit); ``span`` is for sub-phases (log_flush,
atomic_commit, ...).  They are deliberately the same mechanism: the
distinction is taxonomy, not plumbing, so sub-phase times keep summing
into their enclosing phase the way the paper's stacked bars do.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder

#: Top-level engine phases (the paper's Figure 6 bars).
PHASES = ("search", "page_update", "commit")


class Observability:
    """Shared instrumentation handle for one simulated machine."""

    def __init__(self, clock, *, registry=None, trace=None):
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceRecorder()
        self.trace.bind_clock(clock)
        # segment name -> its "phase.<name>" histogram.  Safe to cache:
        # ``MetricsRegistry.reset`` zeroes instruments in place, so the
        # handles stay live (same contract the PM counter handles use).
        self._phase_hists = {}
        self._attach_clock()
        # Hot-path aliases: ``phase``/``span`` are pure taxonomy over
        # ``clock.segment`` (see the method docstrings); binding the
        # clock method directly skips two dispatch layers per segment
        # entry on every engine's per-operation path.
        self.phase = self.span = self.clock.segment

    def _attach_clock(self):
        """Feed every clock segment into ``phase.<name>`` histograms.

        Attaching is idempotent per (clock, registry) pair so that
        shared-clock configurations (NVWAL's DRAM arena, crash-test
        re-attach) never double-count.
        """
        for _, registry in self.clock.observers():
            if registry is self.registry:
                return
        self.clock.add_observer(self._on_segment, self.registry)

    def _on_segment(self, name, elapsed_ns):
        hist = self._phase_hists.get(name)
        if hist is None:
            hist = self._phase_hists[name] = self.registry.histogram(
                "phase." + name
            )
        # ``Histogram.record`` inlined: this runs on every segment exit
        # (a dozen times per engine operation).
        hist.count += 1
        hist.sum += elapsed_ns
        if hist.min is None or elapsed_ns < hist.min:
            hist.min = elapsed_ns
        if hist.max is None or elapsed_ns > hist.max:
            hist.max = elapsed_ns
        exponent = (
            int(elapsed_ns - 1).bit_length() if elapsed_ns > 1 else 0
        )
        buckets = hist.buckets
        try:
            buckets[exponent] += 1
        except KeyError:
            buckets[exponent] = 1

    # -- phase / span accounting -------------------------------------------

    def phase(self, name):
        """Attribute simulated time inside the block to top-level phase
        ``name`` (clock segment + ``phase.<name>`` histogram)."""
        return self.clock.segment(name)

    def span(self, name):
        """Attribute simulated time inside the block to sub-phase
        ``name``.  Spans nest inside phases; time recorded in a span is
        also charged to every enclosing phase (stacked-bar semantics)."""
        return self.clock.segment(name)

    # -- tracing toggle -----------------------------------------------------

    def tracing(self, enabled=True):
        """Enable or disable event recording (the trace ring).

        ``obs.tracing(False)`` is the no-trace fast mode: hot paths
        guard their ``trace.record`` calls on ``trace.enabled``, so a
        disabled recorder costs one attribute check per event instead
        of a call.  Counters, histograms, and the simulated clock are
        untouched — a ``tracing(False)`` run produces byte-identical
        registry numbers to a traced run; only the event ring (and its
        ``seq``/per-kind totals) is elided.  Returns ``self`` so the
        toggle chains: ``engine.obs.tracing(False).snapshot()``.
        """
        self.trace.enabled = bool(enabled)
        return self

    # -- convenience passthroughs ------------------------------------------

    def inc(self, name, n=1):
        self.registry.inc(name, n)

    def labeled(self, prefix):
        """A thin view of this handle that prefixes counter names with
        ``<prefix>.`` — per-session attribution (``session.s1.commit``)
        without per-session registries, so one snapshot still holds
        everything."""
        return _LabeledObs(self, prefix)

    def event(self, kind, a=0, b=0):
        self.trace.record(kind, a, b)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self):
        """Capture (clock, registry, trace position) for ``since``."""
        return {
            "now_ns": self.clock.now_ns,
            "registry": self.registry.snapshot(),
            "trace_seq": self.trace.seq,
        }

    def since(self, snapshot):
        """Elapsed simulated time and instrument deltas since
        ``snapshot`` was taken."""
        return {
            "elapsed_ns": self.clock.now_ns - snapshot["now_ns"],
            "registry": self.registry.since(snapshot["registry"]),
            "trace_seq": snapshot["trace_seq"],
        }

    def export_json(self, path):
        """Export the full state (registry + trace summary + clock) as
        a JSON snapshot the ``python -m repro.obs`` CLI can render."""
        import json

        snapshot = {
            "now_ns": self.clock.now_ns,
            "registry": self.registry.snapshot(),
            "trace": self.trace.snapshot(),
        }
        with open(path, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return snapshot


class _LabeledObs:
    """Counter view with a fixed name prefix (see ``Observability.labeled``)."""

    __slots__ = ("_obs", "_prefix")

    def __init__(self, obs, prefix):
        self._obs = obs
        self._prefix = prefix + "."

    def inc(self, name, n=1):
        self._obs.registry.inc(self._prefix + name, n)

    def counter(self, name):
        return self._obs.registry.counter(self._prefix + name)

    def span(self, name):
        return self._obs.clock.segment(self._prefix + name)
