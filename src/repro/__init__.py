"""repro — Failure-Atomic Slotted Paging for Persistent Memory.

A full-system reproduction of Seo et al., ASPLOS 2017: persistent
memory as the database buffer cache, with in-place commit (FAST⁺) and
slot-header logging (FAST) providing failure atomicity, evaluated
against the NVWAL baseline on a simulated PM/HTM substrate.

Top-level convenience API::

    import repro

    db = repro.open_database(scheme="fastplus")
    db.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)")

    engine = repro.open_engine(repro.SystemConfig(scheme="fast"))
    engine.insert(b"key", b"value")

Subpackages: ``repro.pm`` (simulated hardware), ``repro.htm`` (RTM),
``repro.storage`` (slotted pages), ``repro.btree``, ``repro.wal``
(logs), ``repro.core`` (the engines), ``repro.db`` (SQL layer),
``repro.bench`` (paper figures), ``repro.testing`` (crash injection).
"""

from repro.core import SCHEMES, SystemConfig, open_engine
from repro.db import Database
from repro.pm.latency import CostModel, LatencyProfile

__version__ = "1.0.0"


def open_database(config=None, *, scheme=None, pm=None, cache_statements=False):
    """Open (or recover) a SQL database; see ``repro.db.Database.open``."""
    return Database.open(
        config, scheme=scheme, pm=pm, cache_statements=cache_statements
    )


__all__ = [
    "CostModel",
    "Database",
    "LatencyProfile",
    "SCHEMES",
    "SystemConfig",
    "open_database",
    "open_engine",
    "__version__",
]
