"""Parallel sweep runner: fan benchmark grid cells out over processes.

Every figure of the evaluation is a *grid* — (scheme x latency) or
(scheme x record size) — and every cell is an independent simulation:
it builds its own arena, engine, and observability stack from an
explicit seed, and shares no state with any other cell.  That makes
the sweep embarrassingly parallel, with one hard requirement carried
over from the reproduction's determinism contract: the merged output
must be **byte-identical** to a serial run.

The design follows from that requirement:

* a cell is a *description* — ``(harness function name, kwargs)`` —
  not a closure, so it pickles cheaply and identically everywhere;
* every per-cell seed is part of those kwargs (the harness defaults
  them), so a worker process computes exactly what the serial loop
  would compute;
* results come back through ``Pool.map``, which preserves submission
  order, and cells are submitted in declared grid order — merging is
  the identity.

Simulated results never depend on the host (no wall-clock, no hash
iteration, no OS randomness feeds the model), so running a cell in a
fork, a spawn, or inline yields the same ``RunResult`` bit for bit;
``tests/bench/test_parallel.py`` pins that equivalence.

The module-level mode set by :func:`configure` is what the figure
generators consult, so ``python -m repro.bench --parallel fig6`` and
the ``--parallel`` pytest option reach every sweep without threading a
flag through each generator's signature.
"""

import multiprocessing
import os

#: Runtime mode, set by :func:`configure` (CLI / pytest / env).
_MODE = {"parallel": False, "jobs": None}

#: Environment override: ``REPRO_BENCH_PARALLEL=1`` turns the fan-out
#: on for any entry point that forgets to ask.
_ENV_FLAG = "REPRO_BENCH_PARALLEL"
_ENV_JOBS = "REPRO_BENCH_JOBS"


def configure(parallel=None, jobs=None):
    """Set the process-wide sweep mode (``None`` leaves a knob as is)."""
    if parallel is not None:
        _MODE["parallel"] = bool(parallel)
    if jobs is not None:
        _MODE["jobs"] = max(1, int(jobs))


def is_parallel():
    """True if grid sweeps should fan out over worker processes."""
    if os.environ.get(_ENV_FLAG, "") not in ("", "0"):
        return True
    return _MODE["parallel"]


def job_count(ncells):
    """Worker count for a grid of ``ncells`` cells."""
    jobs = _MODE["jobs"]
    if jobs is None:
        env = os.environ.get(_ENV_JOBS, "")
        jobs = int(env) if env.isdigit() and int(env) > 0 else None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, ncells))


def cell(fn_name, **kwargs):
    """Describe one grid cell: a ``repro.bench.harness`` function by
    name plus its keyword arguments (seeds included via defaults)."""
    return (fn_name, kwargs)


def _run_cell(spec):
    """Worker body: resolve the harness function and run one cell."""
    fn_name, kwargs = spec
    from repro.bench import harness

    return getattr(harness, fn_name)(**kwargs)


def run_cells(cells, parallel=None, jobs=None):
    """Run grid ``cells`` and return their results in declared order.

    ``parallel``/``jobs`` default to the configured mode.  The serial
    path is a plain loop over the same ``_run_cell`` the workers use,
    so both paths execute identical per-cell code — the parallel run's
    figure output is byte-identical to the serial run's.
    """
    cells = list(cells)
    if parallel is None:
        parallel = is_parallel()
    if not parallel or len(cells) <= 1:
        return [_run_cell(spec) for spec in cells]
    jobs = job_count(len(cells)) if jobs is None else max(1, min(jobs, len(cells)))
    if jobs <= 1:
        return [_run_cell(spec) for spec in cells]
    # fork shares the already-imported simulator with the workers;
    # spawn (the only option on some platforms) re-imports it.  Either
    # way each cell builds its own engine, so results are identical.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    with ctx.Pool(processes=jobs) as pool:
        # Pool.map preserves submission order: result[i] is cells[i].
        return pool.map(_run_cell, cells, chunksize=1)
