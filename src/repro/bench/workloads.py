"""Workload generators.

The paper's primary workload is 100,000 single-record INSERT
transactions with randomly generated keys (Section 5); secondary
workloads sweep the record size (Figure 9) and the number of records
per transaction, and mix reads into the stream for the throughput
experiment.
"""

import random


def random_keys(count, *, seed=7, width=16):
    """Distinct fixed-width random keys (decimal-encoded, so lexical
    order matches numeric order as in the paper's integer keys)."""
    rng = random.Random(seed)
    space = 10 ** (width - 1)
    seen = set()
    keys = []
    while len(keys) < count:
        value = rng.randrange(space)
        if value in seen:
            continue
        seen.add(value)
        keys.append(b"%0*d" % (width, value))
    return keys


def sized_payload(size, *, seed=11):
    """A payload of ``size`` pseudorandom (incompressible) bytes."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(size))


def mixed_ops(count, *, read_ratio, key_pool, seed=23):
    """A stream of ("read"|"insert", key) pairs with the given read
    share, reading keys already inserted (the Figure 12 style mix)."""
    rng = random.Random(seed)
    inserted = []
    pool = iter(key_pool)
    ops = []
    for _ in range(count):
        if inserted and rng.random() < read_ratio:
            ops.append(("read", rng.choice(inserted)))
        else:
            key = next(pool)
            inserted.append(key)
            ops.append(("insert", key))
    return ops
