"""Multi-client benchmark driver: contention throughput experiments.

Drives N simulated clients through the deterministic cooperative
scheduler (:mod:`repro.core.scheduler`) against one shared engine and
reports committed-transaction throughput in *simulated* time together
with the concurrency counters (aborts / retries / deadlocks /
timeouts) from the shared obs registry.  This is the Fig 12-style
surface under contention that the single-session harness could not
produce: sweep the client count or the read/write mix and watch lock
conflicts shape throughput.

Everything is deterministic: workloads come from per-client seeded
PRNGs, the scheduler interleaves by simulated time only, and repeated
runs produce byte-identical reports (the CI determinism job diffs two
invocations).
"""

import random
from zlib import crc32

from repro.bench.harness import build_config
from repro.core import open_engine
from repro.core.scheduler import Scheduler

#: Registry counters reported per run (deltas over the scheduled window).
_COUNTERS = (
    "engine.txn.begin", "engine.txn.commit", "engine.txn.rollback",
    "lock.acquire", "lock.upgrade", "lock.conflict", "lock.release",
    "sched.step", "sched.wait", "sched.wake", "sched.abort",
    "sched.retry", "sched.deadlock", "sched.timeout",
)


def client_workload(client_index, *, items=50, read_ratio=0.5,
                    key_space=200, seed=7, record_size=48):
    """Deterministic workload for one client: ``items`` transaction
    items mixing reads and writes over a shared hot key space.

    Writes come as small multi-op transactions (1-3 operations) so
    transactions genuinely overlap under the scheduler; reads are
    single-op search transactions.  ``read_ratio`` is the probability
    that an item is a read.
    """
    rng = random.Random(seed * 1000 + client_index)
    payload = bytes(
        (client_index * 31 + i) % 256 for i in range(record_size)
    )
    workload = []
    for item_no in range(items):
        key = b"mk%05d" % rng.randrange(key_space)
        if rng.random() < read_ratio:
            workload.append(("search", key, None))
            continue
        ops = [("insert", key, payload)]
        for _ in range(rng.randrange(3)):
            extra = b"mk%05d" % rng.randrange(key_space)
            if rng.random() < 0.25:
                ops.append(("delete", extra, None))
            else:
                ops.append(("insert", extra, payload))
        workload.append(("txn", ops))
    return workload


def run_multi_client(scheme, *, clients=4, items=50, read_ratio=0.5,
                     key_space=200, seed=7, read_ns=300.0, write_ns=300.0,
                     record_size=48, preload=64, config=None,
                     checker_factory=None, readers=0, mvcc=False,
                     isolation=None, extra_counters=()):
    """One contention run: N clients, shared engine, full report.

    ``checker_factory`` (optional) is called with the engine and must
    return a ``repro.analysis.TraceChecker``-shaped object; it is then
    drained after every scheduler step and finished with the run, and
    the report gains a ``trace_check`` entry with its verdict — the
    bench itself asserting the ordering + 2PL discipline it exercises.

    ``readers`` appends that many pure-read clients (``read_ratio=1.0``
    workloads) after the ``clients`` mixed clients.  With ``mvcc=False``
    they run as ordinary locked sessions (S-lock traffic, conflict with
    writers); with ``mvcc=True`` they run as lock-free read-only MVCC
    snapshot sessions over the version chains.  The reader workloads
    are byte-identical across the two modes, so a locked-vs-MVCC pair
    of runs isolates the cost of reader locking.

    ``isolation`` picks the concurrency mode of the ``clients`` mixed
    clients (``None`` = classic strict 2PL, ``"occ"`` = optimistic
    snapshot writers that validate at commit).  Workload bytes are
    identical either way, so a locked-vs-OCC pair of runs isolates the
    cost and abort behavior of the writer protocol.
    """
    config = config or build_config(
        scheme, read_ns=read_ns, write_ns=write_ns,
        ops=max(512, (clients + readers) * items * 3),
        record_size=record_size,
    )
    engine = open_engine(config, scheme=scheme)
    # Preload part of the hot key space so reads hit and writes update
    # shared pages (the contended regime), outside the measured window.
    payload = bytes(record_size)
    for i in range(preload):
        engine.insert(b"mk%05d" % (i * key_space // max(1, preload)),
                      payload, replace=True)
    checker = checker_factory(engine) if checker_factory is not None else None
    scheduler = Scheduler(
        engine,
        on_step=None if checker is None else lambda _client: checker.advance(),
    )
    for index in range(clients):
        scheduler.add_client(
            client_workload(
                index, items=items, read_ratio=read_ratio,
                key_space=key_space, seed=seed, record_size=record_size,
            ),
            isolation=isolation,
        )
    for index in range(clients, clients + readers):
        scheduler.add_client(
            client_workload(
                index, items=items, read_ratio=1.0,
                key_space=key_space, seed=seed, record_size=record_size,
            ),
            read_only=mvcc,
        )
    snapshot = engine.obs.snapshot()
    report = scheduler.run()
    delta = engine.obs.since(snapshot)
    counters = delta["registry"]["counters"]
    result = {
        "scheme": scheme,
        "clients": clients,
        "items_per_client": items,
        "read_ratio": read_ratio,
        "seed": seed,
        "commits": report["commits"],
        "aborts": report["aborts"],
        "deadlocks": report["deadlocks"],
        "timeouts": report["timeouts"],
        "retries": report["retries"],
        "steps": report["steps"],
        "elapsed_ns": report["elapsed_ns"],
        "simulated_ns": report["simulated_ns"],
        "throughput_tps": report["throughput_tps"],
        "records": engine.verify(),
        "counters": {
            name: counters.get(name, 0)
            for name in _COUNTERS + tuple(extra_counters)
        },
        "per_client": report["per_client"],
    }
    if readers:
        result["readers"] = readers
        result["mvcc"] = mvcc
        result["mvcc_counters"] = {
            "mvcc.snapshot_reads": counters.get("mvcc.snapshot_reads", 0),
            "mvcc.gc_reclaimed": counters.get("mvcc.gc_reclaimed", 0),
        }
        result["mvcc_versions_live"] = engine.obs.registry.value(
            "mvcc.versions_live", 0,
        )
    if checker is not None:
        findings = checker.finish()
        result["trace_check"] = {
            "findings": [f.render() for f in findings],
            "stats": checker.stats,
        }
    return result


def sweep_clients(scheme, *, counts=(1, 2, 4, 8), **kwargs):
    """Throughput vs. client count at a fixed read/write mix."""
    return [
        run_multi_client(scheme, clients=count, **kwargs)
        for count in counts
    ]


def sweep_read_ratio(scheme, *, ratios=(0.0, 0.5, 0.9), **kwargs):
    """Throughput vs. read/write mix at a fixed client count."""
    return [
        run_multi_client(scheme, read_ratio=ratio, **kwargs)
        for ratio in ratios
    ]


def run_read_mostly(scheme, *, clients=4, mvcc=False, **kwargs):
    """The read-mostly cell: 1 writer + ``clients - 1`` pure readers.

    ``mvcc=False`` runs the readers as locked sessions (the baseline:
    S locks on every page touched, conflicting with the writer);
    ``mvcc=True`` runs them as lock-free snapshot sessions.  Workloads
    are identical either way — the delta is pure locking cost.
    """
    if clients < 2:
        raise ValueError("read-mostly needs at least 1 writer + 1 reader")
    return run_multi_client(
        scheme, clients=1, readers=clients - 1, mvcc=mvcc, **kwargs,
    )


def sweep_read_mostly(scheme, *, counts=(2, 4, 8), mvcc=False, **kwargs):
    """Read-mostly throughput vs. total client count, locked or MVCC."""
    return [
        run_read_mostly(scheme, clients=count, mvcc=mvcc, **kwargs)
        for count in counts
    ]


# ----------------------------------------------------------------------
# OCC writer path: lock traffic and abort behavior vs. strict 2PL
# ----------------------------------------------------------------------

#: OCC counters reported by the isolation sweep (marginal deltas over
#: the scheduled window, like everything else in the run report).
_OCC_COUNTERS = (
    "occ.begin", "occ.validation", "occ.validation.abort",
    "occ.install.conflict", "occ.commit", "occ.fallback",
    "occ.lock_hold_ns", "sched.abort.occ",
)


def run_isolation_cell(scheme, *, isolation="locked", clients=8,
                       read_ratio=0.9, key_space=100, **kwargs):
    """One contention run under a chosen writer protocol.

    Identical workload bytes to :func:`run_multi_client`; the report
    gains the derived axis the OCC refactor moves —
    ``lock_acquires_per_commit`` (strict 2PL pays locks across the
    whole transaction, OCC only across the commit-time write-set
    install) — plus the price OCC pays for it: validation-abort rate
    and 2PL-fallback count.
    """
    result = run_multi_client(
        scheme, clients=clients, read_ratio=read_ratio,
        key_space=key_space,
        isolation=None if isolation == "locked" else isolation,
        extra_counters=_OCC_COUNTERS, **kwargs,
    )
    counters = result["counters"]
    commits = result["commits"]
    validations = counters["occ.validation"]
    result["isolation"] = isolation
    result["lock_acquires_per_commit"] = (
        counters["lock.acquire"] / commits if commits else 0.0
    )
    result["occ_abort_rate"] = (
        counters["occ.validation.abort"] / validations
        if validations else 0.0
    )
    result["occ_fallbacks"] = counters["occ.fallback"]
    return result


#: The swept conflict mixes: (name, read_ratio, key_space).  Conflict
#: probability rises as the write share grows and the hot key space
#: shrinks; ``hot_writes`` is deliberately hostile so the sweep shows
#: the validation-abort + 2PL-fallback regime, not just the win.
OCC_MIXES = (
    ("read_mostly", 0.9, 100),
    ("low_conflict_writes", 0.5, 400),
    ("hot_writes", 0.2, 20),
)


def sweep_occ(scheme, *, counts=(2, 8), mixes=OCC_MIXES, **kwargs):
    """Locked-vs-OCC grid over client count x conflict mix.

    Each (mix, count) pair runs the *same* workload bytes twice — once
    under strict 2PL, once optimistically — so every OCC row can be
    read directly against its locked twin.
    """
    rows = []
    for mix, read_ratio, key_space in mixes:
        for count in counts:
            for isolation in ("locked", "occ"):
                row = run_isolation_cell(
                    scheme, isolation=isolation, clients=count,
                    read_ratio=read_ratio, key_space=key_space, **kwargs,
                )
                row["mix"] = mix
                rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Group commit: per-transaction durability cost vs. epoch size
# ----------------------------------------------------------------------

#: Durability counters reported by the group-commit sweep.  The obs
#: snapshot in :func:`run_multi_client` is taken after create +
#: preload, so these are *marginal* costs of the measured window —
#: format-time fences do not dilute the per-transaction figures.
_DURABILITY_COUNTERS = (
    "pm.fence", "pm.flush", "log.commit_mark", "wal.commit_mark",
    "group.join", "group.close",
)


def run_group_commit(scheme, *, group_size=0, clients=8, items=50,
                     read_ratio=0.5, key_space=200, seed=7,
                     read_ns=300.0, write_ns=300.0, record_size=48,
                     **kwargs):
    """One contention run with epoch-pipelined group commit on.

    ``group_size=0`` runs with grouping off — the ungrouped baseline on
    the *same* workload bytes.  The report gains the per-transaction
    durability costs (``fences_per_txn``, ``marks_per_txn``,
    ``flushes_per_txn``) derived from the marginal counter deltas over
    the scheduled window; the scheduler drains the final epoch before
    reporting, so deferred group work is fully accounted.
    """
    from dataclasses import replace

    config = build_config(
        scheme, read_ns=read_ns, write_ns=write_ns,
        ops=max(512, clients * items * 3), record_size=record_size,
    )
    if group_size:
        config = replace(
            config, group_commit=True, group_commit_size=group_size,
        )
    result = run_multi_client(
        scheme, clients=clients, items=items, read_ratio=read_ratio,
        key_space=key_space, seed=seed, record_size=record_size,
        config=config, extra_counters=_DURABILITY_COUNTERS, **kwargs,
    )
    counters = result["counters"]
    commits = result["commits"]
    marks = counters["log.commit_mark"] + counters["wal.commit_mark"]
    result["group_size"] = group_size
    result["fences_per_txn"] = (
        counters["pm.fence"] / commits if commits else 0.0
    )
    result["marks_per_txn"] = marks / commits if commits else 0.0
    result["flushes_per_txn"] = (
        counters["pm.flush"] / commits if commits else 0.0
    )
    return result


def sweep_group_commit(scheme, *, group_sizes=(0, 2, 4), counts=(2, 8),
                       **kwargs):
    """Per-txn durability cost over group size x client count.

    ``group_sizes`` must start with 0 (or whatever row should serve as
    the baseline): within each client count, every row gains
    ``fence_reduction_vs_ungrouped`` relative to the first size swept.
    """
    rows = []
    for count in counts:
        base = None
        for size in group_sizes:
            row = run_group_commit(
                scheme, group_size=size, clients=count, **kwargs,
            )
            if base is None:
                base = row["fences_per_txn"]
            row["fence_reduction_vs_ungrouped"] = (
                base / row["fences_per_txn"] if row["fences_per_txn"]
                else 0.0
            )
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Tiered DRAM page cache: hit ratio x PM read latency
# ----------------------------------------------------------------------

#: Cache counters reported by the tier sweep (marginal deltas over the
#: scheduled window, like everything else in the run report).
_CACHE_COUNTERS = (
    "cache.hit", "cache.miss", "cache.fill", "cache.evict",
    "cache.invalidate",
)


def run_cache_cell(scheme, *, cache_pages=64, clients=8, items=40,
                   key_space=400, read_ns=300.0, write_ns=300.0,
                   cache_lines=64, seed=7, record_size=48, preload=None,
                   **kwargs):
    """One read-mostly run with the tiered DRAM page cache in front of
    the PM arena: 1 locked writer + ``clients - 1`` MVCC snapshot
    readers — the read-hot regime the cache targets.  Snapshot reads
    resolve live pages through DRAM frames charged at ``dram_ns``,
    while the read working set (the whole preloaded tree — ``preload``
    defaults to ``key_space``) far exceeds the small simulated CPU
    cache (``cache_lines``), so uncached reads keep paying ``read_ns``
    per line while cached frames converge to CPU-cache-hit cost.

    ``cache_pages=0`` is the cache-off baseline on the *same* workload
    bytes.  The report gains the knob values, the ``cache.*`` counters,
    and the derived ``cache_hit_ratio`` = hit / (hit + miss).
    """
    from dataclasses import replace

    config = build_config(
        scheme, read_ns=read_ns, write_ns=write_ns,
        ops=max(512, clients * items * 3), record_size=record_size,
        cache_lines=cache_lines,
    )
    if cache_pages:
        config = replace(config, dram_cache_pages=cache_pages)
    result = run_multi_client(
        scheme, clients=1, readers=clients - 1, mvcc=True, items=items,
        key_space=key_space, seed=seed, record_size=record_size,
        preload=key_space if preload is None else preload,
        config=config, extra_counters=_CACHE_COUNTERS, **kwargs,
    )
    counters = result["counters"]
    hits = counters["cache.hit"]
    misses = counters["cache.miss"]
    result["cache_pages"] = cache_pages
    result["read_ns"] = read_ns
    result["cache_lines"] = cache_lines
    result["cache_hit_ratio"] = (
        hits / (hits + misses) if hits + misses else 0.0
    )
    return result


def sweep_cache(scheme, *, cache_sizes=(0, 8, 64),
                read_lats=(300.0, 600.0, 1200.0), **kwargs):
    """Cache capacity x PM read latency grid over the read-mostly cell.

    Within each latency, every row gains ``speedup_vs_uncached``
    relative to the cache-off row at that latency — the Fig 15 axis:
    how the DRAM tier's win scales with the hit ratio it achieves and
    the PM read latency each hit hides.
    """
    rows = []
    for read_ns in read_lats:
        base = None
        for cache_pages in cache_sizes:
            row = run_cache_cell(
                scheme, cache_pages=cache_pages, read_ns=read_ns,
                **kwargs,
            )
            if base is None:
                base = row["throughput_tps"]
            row["speedup_vs_uncached"] = (
                row["throughput_tps"] / base if base else 0.0
            )
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Sharded scaling: disjoint workloads over N independent pagestores
# ----------------------------------------------------------------------

#: Key pools per workload — the lcm of the swept shard counts (1, 2, 4),
#: so each pool maps to exactly one shard at *every* swept count.
_POOL_COUNT = 4


def _pool_keys(pool, count):
    """The first ``count`` keys of key pool ``pool``.

    Keys are pool-*prefixed* (``s<pool>k...``), so the pools occupy
    lexically disjoint ranges and never share tree pages within a
    shard, and pool-*hashed* (only candidates with ``crc32 % 4 ==
    pool`` are kept — the same hash the router shards by), so all of
    pool ``p``'s keys land on shard ``p % shards`` at every swept shard
    count (1, 2, 4 all divide 4).  The workload bytes stay identical
    across a shard sweep; only the placement changes.
    """
    keys = []
    i = 0
    while len(keys) < count:
        key = b"s%dk%05d" % (pool, i)
        if crc32(key) % _POOL_COUNT == pool:
            keys.append(key)
        i += 1
    return keys


def shard_pool_keys(key_space):
    """``_POOL_COUNT`` disjoint key pools of ``key_space`` keys each."""
    return [_pool_keys(pool, key_space) for pool in range(_POOL_COUNT)]


def sharded_client_workload(client_index, *, items=50, read_ratio=0.5,
                            key_space=50, seed=7, record_size=48,
                            cross_ratio=0.0):
    """Workload for one client of a sharded run: the client's home key
    pool is ``client_index % 4``, so at ``clients >= shards`` every
    shard stays busy and (with ``cross_ratio=0``) no transaction ever
    crosses shards — the near-linear-scaling regime.  Clients sharing a
    pool work disjoint ``key_space``-sized slices of it, so the sweep
    measures placement, not lock luck.

    ``cross_ratio`` is the probability a write item instead becomes a
    two-pool transaction (home pool + the next pool over, which lives
    on a *different* shard at every swept shard count > 1) — the 2PC
    regime.
    """
    slice_index = client_index // _POOL_COUNT
    lo = slice_index * key_space
    home = _pool_keys(client_index % _POOL_COUNT, lo + key_space)[lo:]
    away = _pool_keys((client_index + 1) % _POOL_COUNT, lo + key_space)[lo:]
    rng = random.Random(seed * 1000 + client_index)
    payload = bytes(
        (client_index * 31 + i) % 256 for i in range(record_size)
    )
    workload = []
    for item_no in range(items):
        key = home[rng.randrange(key_space)]
        if rng.random() < read_ratio:
            workload.append(("search", key, None))
            continue
        if rng.random() < cross_ratio:
            workload.append(("txn", [
                ("insert", key, payload),
                ("insert", away[rng.randrange(key_space)], payload),
            ]))
            continue
        ops = [("insert", key, payload)]
        for _ in range(rng.randrange(3)):
            extra = home[rng.randrange(key_space)]
            if rng.random() < 0.25:
                ops.append(("delete", extra, None))
            else:
                ops.append(("insert", extra, payload))
        workload.append(("txn", ops))
    return workload


def run_sharded_multi_client(scheme, *, shards=1, clients=8, items=50,
                             read_ratio=0.5, key_space=50, seed=7,
                             read_ns=300.0, write_ns=300.0, record_size=48,
                             preload=16, cross_ratio=0.0, config=None):
    """One sharded contention run: N clients over a ``shards``-way
    :class:`~repro.storage.sharding.ShardRouter`.

    The cooperative scheduler serializes host execution, so the raw
    ``elapsed_ns`` never shrinks with more shards.  What sharding buys
    is *independence*: disjoint-shard work could run on parallel
    hardware.  The run therefore attributes every simulated step's
    clock advance to the stepped client's home shard (``busy_ns``) and
    models parallel wall time as the *busiest single shard* —
    ``throughput_tps`` is commits over that modeled span, while
    ``serial_throughput_tps`` keeps the unmodeled single-thread figure
    (identical to ``throughput_tps`` at one shard).  Cross-shard items
    (``cross_ratio > 0``) are attributed to the home shard, consistent
    with the coordinator running there.
    """
    from repro.storage.sharding import ShardRouter

    config = config or build_config(
        scheme, read_ns=read_ns, write_ns=write_ns,
        ops=max(512, clients * items * 3), record_size=record_size,
    )
    router = ShardRouter.create(config, shards, scheme=scheme)
    payload = bytes(record_size)
    for pool in shard_pool_keys(key_space):
        for key in pool[:preload]:
            router.insert(key, payload, replace=True)

    home = [(index % _POOL_COUNT) % shards for index in range(clients)]
    busy = [0.0] * shards
    clock = router.clock
    last = [0.0]

    def on_step(client):
        now = clock.now_ns
        busy[home[client.index]] += now - last[0]
        last[0] = now

    scheduler = Scheduler(router, on_step=on_step)
    for index in range(clients):
        scheduler.add_client(
            sharded_client_workload(
                index, items=items, read_ratio=read_ratio,
                key_space=key_space, seed=seed, record_size=record_size,
                cross_ratio=cross_ratio,
            )
        )
    snapshot = router.obs.snapshot()
    last[0] = clock.now_ns
    report = scheduler.run()
    delta = router.obs.since(snapshot)
    counters = delta["registry"]["counters"]
    parallel_ns = max(busy) if max(busy) > 0 else report["elapsed_ns"]
    return {
        "scheme": scheme,
        "shards": shards,
        "clients": clients,
        "items_per_client": items,
        "read_ratio": read_ratio,
        "cross_ratio": cross_ratio,
        "seed": seed,
        "commits": report["commits"],
        "aborts": report["aborts"],
        "deadlocks": report["deadlocks"],
        "timeouts": report["timeouts"],
        "retries": report["retries"],
        "steps": report["steps"],
        "elapsed_ns": report["elapsed_ns"],
        "busy_ns": busy,
        "parallel_elapsed_ns": parallel_ns,
        "throughput_tps": (
            report["commits"] / parallel_ns * 1e9 if parallel_ns else 0.0
        ),
        "serial_throughput_tps": report["throughput_tps"],
        "records": router.verify(),
        "counters": {
            name: counters.get(name, 0)
            for name in _COUNTERS + (
                "twopc.prepare", "twopc.decision", "twopc.commit",
            )
        },
        "per_client": report["per_client"],
    }


def sweep_shards(scheme, *, shard_counts=(1, 2, 4), **kwargs):
    """Modeled-parallel throughput vs. shard count on the *same*
    workload bytes (see :func:`shard_pool_keys`).  Each row gains
    ``speedup_vs_one_shard`` relative to the first count swept."""
    runs = [
        run_sharded_multi_client(scheme, shards=count, **kwargs)
        for count in shard_counts
    ]
    base = runs[0]["throughput_tps"]
    for run in runs:
        run["speedup_vs_one_shard"] = (
            run["throughput_tps"] / base if base else 0.0
        )
    return runs
