"""Generators for every figure of the paper's evaluation.

Each ``figN()`` runs the corresponding experiment and returns a dict
with ``table`` (paper-style text) and ``data`` (raw series).  Op
counts default to ``REPRO_BENCH_OPS`` (the paper uses 100,000 per
point; the default here is sized to finish the whole suite in minutes
— the *shape* of every series is preserved, see EXPERIMENTS.md).

Figures 10-12 are reconstructed from the surviving narrative: the
source text of the paper is truncated after Figure 9(b) (see
DESIGN.md), so their exact axes are inferred from Section 5's
description ("query processing throughput experiments, shown in
Figure 11 and Figure 12", "improves query response time by up to
33%").
"""

import os

from repro.bench.harness import (
    build_config,
    run_multi_insert,      # noqa: F401  (serial ablations still call it)
    run_single_inserts,
    run_sql_statements,    # noqa: F401
)
from repro.bench.parallel import cell, run_cells
from repro.bench.report import format_table
from repro.wal.legacy import run_legacy_models

SCHEMES = ("nvwal", "fast", "fastplus")

LATENCY_POINTS = ((120, 120), (300, 300), (600, 600), (900, 900), (1200, 1200))
WRITE_LATENCIES = (300, 600, 900, 1200)
RECORD_SIZES = (64, 128, 256, 512, 1024)
TXN_SIZES = (1, 2, 4, 8, 16)
READ_RATIOS = (0.1, 0.5, 0.9)


def default_ops():
    return int(os.environ.get("REPRO_BENCH_OPS", "1500"))


def _seg(result, name):
    return result.segments_us.get(name, 0.0)


# ----------------------------------------------------------------------
# Figure 1 — motivation: write amplification of legacy recovery
# ----------------------------------------------------------------------


def fig1(ops=None):
    """Bytes written per committed single-record transaction:
    journaling and WAL on a block device (with file-system journaling)
    vs the PM-native schemes' flushed bytes."""
    ops = ops or default_ops()
    rows = []
    data = {}
    fast = run_single_inserts("fast", ops=ops)
    for legacy in run_legacy_models(
        fast.extras["commit_page_counts"], record_bytes=64
    ):
        per_txn = legacy.total_bytes / ops
        rows.append([legacy.scheme + " (block dev)", round(per_txn),
                     round(legacy.amplification, 1)])
        data[legacy.scheme] = per_txn
    for scheme in SCHEMES:
        result = fast if scheme == "fast" else run_single_inserts(scheme, ops=ops)
        per_txn = result.counters["pm.flush_bytes"] / ops
        rows.append([scheme + " (PM)", round(per_txn),
                     round(per_txn / 64, 1)])
        data[scheme] = per_txn
    table = format_table(
        "Figure 1 (motivation): bytes written per single-record txn",
        ["scheme", "bytes/txn", "amplification vs 64B record"],
        rows,
        note="Legacy modes pay page-granularity copies plus file-system "
             "journaling; PM schemes flush only records + metadata.",
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Figure 6 — insertion-time breakdown vs PM latency
# ----------------------------------------------------------------------


def fig6(ops=None):
    ops = ops or default_ops()
    grid = [
        (read_ns, write_ns, scheme)
        for read_ns, write_ns in LATENCY_POINTS
        for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_single_inserts", scheme=scheme, ops=ops,
             read_ns=read_ns, write_ns=write_ns)
        for read_ns, write_ns, scheme in grid
    )
    rows = []
    data = {}
    for (read_ns, write_ns, scheme), result in zip(grid, results):
        rows.append([
            "%d/%d" % (read_ns, write_ns), scheme,
            _seg(result, "search"), _seg(result, "page_update"),
            _seg(result, "commit"), result.op_us,
        ])
        data[(read_ns, write_ns, scheme)] = result
    table = format_table(
        "Figure 6: B-tree insertion time breakdown (us/insert) vs PM "
        "read/write latency",
        ["latency", "scheme", "Search", "PageUpdate", "Commit", "total"],
        rows,
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Figure 7 — Page Update breakdown
# ----------------------------------------------------------------------

_FIG7_SEGMENTS = (
    ("volatile_buffer_caching", "volatile buffer caching"),
    ("in_place_record_insert", "in-place record insert"),
    ("update_slot_header", "update slot header"),
    ("clflush_record", "clflush(record)"),
    ("defrag", "defragment(page)"),
)


def fig7(ops=None):
    ops = ops or default_ops()
    grid = [
        (read_ns, write_ns, scheme)
        for read_ns, write_ns in LATENCY_POINTS[1:]
        for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_single_inserts", scheme=scheme, ops=ops,
             read_ns=read_ns, write_ns=write_ns)
        for read_ns, write_ns, scheme in grid
    )
    rows = []
    data = {}
    for (read_ns, write_ns, scheme), result in zip(grid, results):
        rows.append(
            ["%d/%d" % (read_ns, write_ns), scheme]
            + [_seg(result, key) for key, _ in _FIG7_SEGMENTS]
        )
        data[(read_ns, write_ns, scheme)] = result
    table = format_table(
        "Figure 7: Page Update breakdown (us/insert) vs PM latency",
        ["latency", "scheme"] + [label for _, label in _FIG7_SEGMENTS],
        rows,
        note="'update slot header' is the unflushed copy of headers "
             "toward the slot-header log (paper counts it here).",
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Figure 8 — Commit-time breakdown vs PM write latency
# ----------------------------------------------------------------------

_FIG8_SEGMENTS = (
    ("nvwal_computation", "NVWAL Computation"),
    ("heap_mgmt", "Heap Mgmt"),
    ("update_slot_header", "SlotHdr write"),
    ("log_flush", "Log Flush"),
    ("atomic_commit", "Atomic Commit"),
    ("checkpoint", "Checkpointing"),
    ("wal_index", "Misc (WAL index)"),
    ("misc", "Misc (pager)"),
)


def fig8(ops=None):
    ops = ops or default_ops()
    grid = [
        (write_ns, scheme)
        for write_ns in WRITE_LATENCIES
        for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_single_inserts", scheme=scheme, ops=ops,
             read_ns=300, write_ns=write_ns)
        for write_ns, scheme in grid
    )
    rows = []
    data = {}
    for (write_ns, scheme), result in zip(grid, results):
        rows.append(
            [write_ns, scheme, _seg(result, "commit")]
            + [_seg(result, key) for key, _ in _FIG8_SEGMENTS]
        )
        data[(write_ns, scheme)] = result
    ratios = [
        data[(w, "nvwal")].segments_us.get("commit", 0.0)
        / max(1e-9, data[(w, "fastplus")].segments_us.get("commit", 0.0))
        for w in WRITE_LATENCIES
    ]
    table = format_table(
        "Figure 8: Commit time breakdown (us/insert) vs PM write latency "
        "(read fixed at 300 ns)",
        ["write_ns", "scheme", "Commit total"]
        + [label for _, label in _FIG8_SEGMENTS],
        rows,
        note="NVWAL/FAST+ commit ratio per write latency: "
             + ", ".join("%.1fx" % r for r in ratios)
             + "  (paper: commit/logging overhead reduced to ~1/6).",
    )
    return {"table": table, "data": data, "ratios": ratios}


# ----------------------------------------------------------------------
# Figure 9 — record-size sweep: time and flush counts
# ----------------------------------------------------------------------


def fig9(ops=None):
    ops = ops or default_ops()
    grid = [
        (size, scheme) for size in RECORD_SIZES for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_single_inserts", scheme=scheme, ops=ops,
             record_size=size, read_ns=300, write_ns=300)
        for size, scheme in grid
    )
    rows = []
    data = {}
    for (size, scheme), result in zip(grid, results):
        rows.append([
            size, scheme, result.op_us, round(result.per_op("pm.flush"), 2),
        ])
        data[(size, scheme)] = result
    table = format_table(
        "Figure 9: insertion time (a) and clflush count (b) per insert "
        "vs record size (PM 300/300 ns)",
        ["record B", "scheme", "us/insert", "clflush/insert"],
        rows,
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Figure 10 (reconstructed) — multi-record transactions
# ----------------------------------------------------------------------


def fig10(ops=None):
    ops = ops or default_ops()
    grid = [
        (per_txn, scheme) for per_txn in TXN_SIZES for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_multi_insert", scheme=scheme,
             txns=max(50, ops // per_txn), per_txn=per_txn)
        for per_txn, scheme in grid
    )
    rows = []
    data = {}
    for (per_txn, scheme), result in zip(grid, results):
        rows.append([
            per_txn, scheme, result.op_us,
            _seg(result, "commit"), round(result.per_op("pm.flush"), 2),
        ])
        data[(per_txn, scheme)] = result
    table = format_table(
        "Figure 10 (reconstructed): per-insert cost vs records per "
        "transaction (PM 300/300 ns)",
        ["records/txn", "scheme", "us/insert", "commit us/insert",
         "clflush/insert"],
        rows,
        note="Exercises the slot-header-logging path (FAST+ falls back "
             "to logging for every multi-record transaction).",
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Figures 11-12 (reconstructed) — full SQL response time / throughput
# ----------------------------------------------------------------------


def fig11(ops=None):
    ops = max(300, (ops or default_ops()) // 2)
    grid = [
        (kind, scheme)
        for kind in ("insert", "update", "delete", "select")
        for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_sql_statements", scheme=scheme, ops=ops, kind=kind)
        for kind, scheme in grid
    )
    rows = []
    data = {}
    for (kind, scheme), result in zip(grid, results):
        rows.append([kind, scheme, result.sql_op_us])
        data[(kind, scheme)] = result
    improvements = {}
    for kind in ("insert", "update", "delete"):
        nv = data[(kind, "nvwal")].sql_op_us
        fp = data[(kind, "fastplus")].sql_op_us
        improvements[kind] = 100.0 * (nv - fp) / nv
    table = format_table(
        "Figure 11 (reconstructed): full query response time (us/stmt), "
        "including SQL parsing and execution (PM 300/300 ns)",
        ["statement", "scheme", "us/statement"],
        rows,
        note="FAST+ vs NVWAL response-time improvement: "
             + ", ".join("%s %.0f%%" % (k, v) for k, v in improvements.items())
             + "  (paper headline: up to 33%).",
    )
    return {"table": table, "data": data, "improvements": improvements}


def fig12(ops=None):
    ops = max(300, (ops or default_ops()) // 2)
    grid = [
        (ratio, scheme) for ratio in READ_RATIOS for scheme in SCHEMES
    ]
    results = run_cells(
        cell("run_sql_statements", scheme=scheme, ops=ops,
             kind="mixed", read_ratio=ratio)
        for ratio, scheme in grid
    )
    rows = []
    data = {}
    for (ratio, scheme), result in zip(grid, results):
        kops = 1000.0 / max(1e-9, result.sql_op_us)
        rows.append([int(ratio * 100), scheme, result.sql_op_us, kops])
        data[(ratio, scheme)] = result
    table = format_table(
        "Figure 12 (reconstructed): throughput under mixed workloads "
        "(PM 300/300 ns)",
        ["read %", "scheme", "us/op", "K ops/s (simulated)"],
        rows,
    )
    return {"table": table, "data": data}


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------


def ablation_atomicity():
    """A1: failure-atomic write granularity.  FAST/NVWAL need only
    8-byte atomic writes; FAST+ needs line-atomic writes; naive
    in-place paging is unsafe either way."""
    from repro.core import SystemConfig
    from repro.testing import run_crash_sweep

    workload = [("insert", b"%04d" % i, b"x" * 40) for i in range(18)]
    rows = []
    data = {}
    for scheme, granularity in (
        ("fast", 8), ("nvwal", 8), ("fastplus", 8), ("fastplus", 64),
        ("naive", 8), ("naive", 64),
    ):
        config = SystemConfig(
            npages=128, page_size=512, log_bytes=16384, heap_bytes=1 << 20,
            dram_bytes=64 * 512, atomic_granularity=granularity,
        )
        failures = run_crash_sweep(scheme, workload, config=config, stride=4)
        rows.append([scheme, granularity, len(failures),
                     "SAFE" if not failures else "CORRUPTS"])
        data[(scheme, granularity)] = len(failures)
    table = format_table(
        "Ablation A1: crash-sweep outcomes by atomic-write granularity",
        ["scheme", "atomic bytes", "violations", "verdict"],
        rows,
        note="Every memory event of the workload is a crash point "
             "(stride-sampled); a violation is lost durability, torn "
             "atomicity, or structural corruption.",
    )
    return {"table": table, "data": data}


def ablation_checkpoint(ops=None):
    """A2: eager (FAST) vs lazy (NVWAL) checkpointing — recovery work
    after a crash at the end of the workload."""
    from repro.core import engine_class, open_engine

    ops = max(400, (ops or default_ops()) // 2)
    rows = []
    data = {}
    for scheme in ("fast", "fastplus", "nvwal"):
        config = build_config(scheme, ops=ops)
        engine = open_engine(config, scheme=scheme)
        from repro.bench.workloads import random_keys, sized_payload

        payload = sized_payload(64)
        for key in random_keys(ops, seed=5):
            engine.insert(key, payload)
        pm = engine.pm
        wal_frames = (
            sum(len(v) for v in engine.wal.index.values())
            if hasattr(engine, "wal") else 0
        )
        pm.crash()
        clock_before = pm.clock.now_ns
        engine_class(scheme).attach(config, pm)
        recovery_us = (pm.clock.now_ns - clock_before) / 1000.0
        rows.append([scheme, wal_frames, recovery_us])
        data[scheme] = recovery_us
    table = format_table(
        "Ablation A2: eager vs lazy checkpointing — recovery cost",
        ["scheme", "WAL frames pending at crash", "recovery us"],
        rows,
        note="FAST's eager checkpoint keeps the log empty, so recovery "
             "is (almost) free; NVWAL must rebuild its WAL index.",
    )
    return {"table": table, "data": data}


def ablation_rtm(ops=None):
    """A3: RTM transient-abort sensitivity of the in-place commit."""
    from repro.bench.workloads import random_keys, sized_payload
    from repro.core import open_engine
    import random as _random

    ops = max(400, (ops or default_ops()) // 2)
    rows = []
    data = {}
    for abort_prob in (0.0, 0.1, 0.3, 0.5):
        config = build_config("fastplus", ops=ops)
        engine = open_engine(config, scheme="fastplus")
        rng = _random.Random(99)
        if abort_prob:
            engine.rtm.abort_injector = lambda attempt: rng.random() < abort_prob
        payload = sized_payload(64)
        snapshot = engine.clock.snapshot()
        for key in random_keys(ops, seed=5):
            engine.insert(key, payload)
        elapsed_us = engine.clock.since(snapshot)[0] / ops / 1000.0
        rows.append([abort_prob, elapsed_us, engine.rtm.stats.aborts,
                     engine.rtm.stats.commits])
        data[abort_prob] = elapsed_us
    table = format_table(
        "Ablation A3: in-place commit under injected RTM aborts",
        ["abort prob", "us/insert", "aborts", "commits"],
        rows,
        note="The retry-until-success fallback (paper footnote 1) "
             "degrades gracefully with the abort rate.",
    )
    return {"table": table, "data": data}


def ablation_defrag(ops=None):
    """Section 4.3 claim: defragmentation accounts for a tiny share of
    insertion time even under fragmentation-heavy churn."""
    from repro.bench.workloads import random_keys, sized_payload
    from repro.core import open_engine
    import random as _random

    ops = max(600, ops or default_ops())
    rows = []
    data = {}
    for scheme in ("fast", "fastplus"):
        for workload in ("fixed-64B", "variable-size", "replace-churn"):
            config = build_config(scheme, ops=ops, record_size=96)
            engine = open_engine(config, scheme=scheme)
            keys = random_keys(ops // 2, seed=5)
            rng = _random.Random(17)
            snapshot = engine.clock.snapshot()
            for key in keys:
                size = 64 if workload == "fixed-64B" else rng.randrange(32, 160)
                engine.insert(key, sized_payload(size, seed=1))
            if workload == "replace-churn":
                for key in keys:  # variable-size replacement updates
                    engine.insert(
                        key, sized_payload(rng.randrange(32, 160), seed=2),
                        replace=True,
                    )
            elapsed, segments = engine.clock.since(snapshot)
            share = 100.0 * segments.get("defrag", 0.0) / elapsed
            rows.append([scheme, workload, elapsed / ops / 1000.0,
                         segments.get("defrag", 0.0) / ops / 1000.0,
                         "%.4f%%" % share])
            data[(scheme, workload)] = share
    table = format_table(
        "Ablation: on-demand defragmentation overhead",
        ["scheme", "workload", "us/op", "defrag us/op", "share of total"],
        rows,
        note="Paper Section 4.3 reports <0.02% for their (insert) "
             "workload; the replace-churn column stresses the "
             "copy-on-write path far beyond it.",
    )
    return {"table": table, "data": data}


def ablation_flush_instruction(ops=None):
    """A5: clflush vs clwb.  The paper's Figure 3 shows CLWB; the
    evaluation hardware (Haswell) only had the evicting clflush.  clwb
    keeps the flushed lines cached, so re-reads after commit are hits."""
    import dataclasses

    ops = max(400, (ops or default_ops()) // 2)
    grid = [
        (scheme, instruction)
        for scheme in ("fast", "fastplus")
        for instruction in ("clflush", "clwb")
    ]
    results = run_cells(
        cell("run_single_inserts", scheme=scheme, ops=ops,
             config=dataclasses.replace(
                 build_config(scheme, ops=ops),
                 flush_instruction=instruction,
             ))
        for scheme, instruction in grid
    )
    rows = []
    data = {}
    for (scheme, instruction), result in zip(grid, results):
        rows.append([
            scheme, instruction, result.op_us,
            round(result.per_op("pm.load_miss"), 2),
        ])
        data[(scheme, instruction)] = result.op_us
    table = format_table(
        "Ablation A5: flush instruction (PM 300/300 ns)",
        ["scheme", "instruction", "us/insert", "read misses/insert"],
        rows,
        note="clwb avoids the post-flush re-read misses that clflush's "
             "eviction causes on the hot slot-header lines.",
    )
    return {"table": table, "data": data}


def extension_recovery_scaling(ops=None):
    """Extension: recovery time vs database size.

    The paper argues recovery is (near-)trivial — replay the committed
    slot-header frames and go; orphan pages and stale free lists are
    handled lazily.  This bench measures simulated recovery time after
    a crash as the database grows, with and without eager
    recovery-time garbage collection.
    """
    import dataclasses

    from repro.bench.workloads import random_keys, sized_payload
    from repro.core import engine_class, open_engine

    base_ops = ops or default_ops()
    rows = []
    data = {}
    for size in (base_ops // 2, base_ops, base_ops * 3):
        for scheme in ("fast", "fastplus", "nvwal"):
            for eager in (True, False):
                config = dataclasses.replace(
                    build_config(scheme, ops=size), eager_recovery_gc=eager
                )
                engine = open_engine(config, scheme=scheme)
                payload = sized_payload(64)
                for key in random_keys(size, seed=5):
                    engine.insert(key, payload)
                pm = engine.pm
                pm.crash()
                before = pm.clock.now_ns
                recovered = engine_class(scheme).attach(config, pm)
                recovery_us = (pm.clock.now_ns - before) / 1000.0
                assert recovered.search(random_keys(1, seed=5)[0]) is not None
                rows.append([size, scheme, "eager" if eager else "lazy",
                             recovery_us])
                data[(size, scheme, eager)] = recovery_us
    table = format_table(
        "Extension: recovery time vs database size (simulated us)",
        ["records", "scheme", "GC", "recovery us"],
        rows,
        note="Lazy mode replays only the commit-marked log frames; "
             "eager mode additionally garbage-collects, which scales "
             "with the arena.",
    )
    return {"table": table, "data": data}


def ablation_index_maintenance(ops=None):
    """A4: multi-structure transactions.  Each SQL INSERT into a table
    with K secondary indexes dirties K+1 trees, so even "single-record"
    statements become multi-page transactions — the regime the paper
    flags for enterprise systems, where slot-header logging (not the
    in-place commit) carries the load."""
    from repro.db import Database

    ops = max(300, (ops or default_ops()) // 3)
    rows = []
    data = {}
    for nindexes in (0, 1, 2):
        for scheme in SCHEMES:
            config = build_config(scheme, ops=ops, record_size=96)
            db = Database.open(config, scheme=scheme)
            db.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT, b INTEGER)"
            )
            if nindexes >= 1:
                db.execute("CREATE INDEX by_a ON t (a)")
            if nindexes >= 2:
                db.execute("CREATE INDEX by_b ON t (b)")
            engine = db.engine
            snapshot = engine.clock.snapshot()
            inplace_before = getattr(engine, "inplace_commits", 0)
            for i in range(ops):
                db.execute(
                    "INSERT INTO t VALUES (?, ?, ?)",
                    (i, "a%04d" % (i * 37 % 10000), i * 13 % 1000),
                )
            elapsed = engine.clock.since(snapshot)[0] / ops / 1000.0
            inplace = getattr(engine, "inplace_commits", 0) - inplace_before
            rows.append([nindexes, scheme, elapsed,
                         "%d%%" % (100 * inplace // ops)])
            data[(nindexes, scheme)] = elapsed
    table = format_table(
        "Ablation A4: SQL INSERT cost vs number of secondary indexes "
        "(PM 300/300 ns)",
        ["indexes", "scheme", "us/insert", "in-place commits"],
        rows,
        note="With indexes, every statement is a multi-tree transaction: "
             "FAST+ falls back to slot-header logging (in-place share "
             "drops to 0%) yet stays ahead of NVWAL, which logs the "
             "dirty portions of every touched page.",
    )
    return {"table": table, "data": data}


def fig13(ops=None):
    """Extension: multi-client throughput under the deterministic
    scheduler — locked readers vs lock-free MVCC snapshot readers.

    The paper's evaluation is single-client; this is the concurrency
    figure its Section 5 workloads imply: 1 writer + N-1 pure readers
    over a hot key space, run twice with byte-identical workloads.
    Locked readers serialize against the writer through the lock
    manager (S/X conflicts); MVCC readers resolve page versions with
    zero lock traffic, so the conflict column goes to 0 and throughput
    stays ahead at every client count."""
    from repro.bench.multiclient import run_read_mostly

    items = max(5, min(25, (ops or default_ops()) // 60))
    rows = []
    data = {}
    for scheme in SCHEMES:
        for clients in (2, 4, 8):
            for mvcc in (False, True):
                result = run_read_mostly(
                    scheme, clients=clients, items=items,
                    key_space=100, mvcc=mvcc,
                )
                mode = "mvcc" if mvcc else "locked"
                conflicts = result["counters"]["lock.conflict"]
                txns = max(1, result["commits"] + result["aborts"])
                rows.append([
                    scheme, clients, mode,
                    round(result["throughput_tps"] / 1000.0, 1),
                    result["aborts"], conflicts,
                    "%.1f%%" % (100.0 * conflicts / txns),
                ])
                data[(scheme, clients, mode)] = result["throughput_tps"]
    table = format_table(
        "Extension: read-mostly throughput vs clients — locked vs MVCC "
        "snapshot readers (1 writer + N-1 readers)",
        ["scheme", "clients", "readers", "ktps", "aborts", "conflicts",
         "conflict rate"],
        rows,
        note="Identical workloads per pair; MVCC readers pin a snapshot "
             "timestamp and resolve version chains with zero lock "
             "traffic, so reader-writer conflicts vanish and throughput "
             "leads at every client count.",
    )
    return {"table": table, "data": data}


def fig14(ops=None):
    """Extension: OCC writer path vs strict 2PL under contention.

    The multi-layer OCC refactor trades whole-transaction lock tenure
    for a commit-time-only lock window plus the risk of validation
    aborts.  This figure runs byte-identical workloads twice per cell
    — once locked, once optimistic — across the conflict spectrum
    (read-mostly, low-conflict writes, a deliberately hot write mix)
    and reports throughput, lock acquires per committed transaction,
    the validation-abort rate, and how many sessions exhausted their
    streak and fell back to 2PL."""
    from repro.bench.multiclient import OCC_MIXES, run_isolation_cell

    items = max(5, min(25, (ops or default_ops()) // 60))
    rows = []
    data = {}
    for scheme in SCHEMES:
        for mix, read_ratio, key_space in OCC_MIXES:
            for isolation in ("locked", "occ"):
                result = run_isolation_cell(
                    scheme, isolation=isolation, clients=8,
                    read_ratio=read_ratio, key_space=key_space,
                    items=items,
                )
                rows.append([
                    scheme, mix, isolation,
                    round(result["throughput_tps"] / 1000.0, 1),
                    round(result["lock_acquires_per_commit"], 2),
                    "%.1f%%" % (100.0 * result["occ_abort_rate"]),
                    result["occ_fallbacks"],
                ])
                data[(scheme, mix, isolation)] = (
                    result["throughput_tps"],
                    result["lock_acquires_per_commit"],
                )
    table = format_table(
        "Extension: OCC vs strict 2PL at 8 clients across conflict "
        "mixes (identical workloads per pair)",
        ["scheme", "mix", "writers", "ktps", "locks/txn", "abort rate",
         "2PL fallbacks"],
        rows,
        note="OCC writers read at a pinned snapshot and lock only to "
             "install the validated write set, so locks per committed "
             "txn collapse toward the write-set size on read-mostly "
             "mixes; as conflicts rise, validation aborts and 2PL "
             "fallbacks pay for the optimism.",
    )
    return {"table": table, "data": data}


def fig15(ops=None):
    """Extension: tiered DRAM page cache in front of the PM arena —
    cache capacity x PM read latency over the read-mostly MVCC cell.

    The paper's design point is PM-as-the-buffer-cache (no DRAM copy
    of any page); this figure quantifies what a hybrid tier buys back.
    1 writer + 7 MVCC snapshot readers run byte-identical workloads at
    every (cache_pages, read_ns) cell; ``cache_pages=0`` is the paper's
    configuration and each latency's speedup baseline.  An undersized
    cache (8 pages, hit ratio well under 0.8) can *lose* — fills read
    whole pages through PM and invalidations keep discarding them —
    while a cache that holds the read-hot set crosses over and the win
    grows with the PM read latency each DRAM hit hides."""
    from repro.bench.multiclient import sweep_cache

    items = max(10, min(40, (ops or default_ops()) // 37))
    rows = []
    data = {}
    for scheme in ("fast", "fastplus"):
        for row in sweep_cache(
            scheme, cache_sizes=(0, 8, 64),
            read_lats=(300.0, 900.0, 1200.0), items=items,
        ):
            rows.append([
                scheme, row["cache_pages"], int(row["read_ns"]),
                round(row["cache_hit_ratio"], 3),
                round(row["throughput_tps"] / 1000.0, 1),
                "%.2fx" % row["speedup_vs_uncached"],
                row["counters"]["cache.invalidate"],
            ])
            data[(scheme, row["cache_pages"], row["read_ns"])] = (
                row["throughput_tps"], row["cache_hit_ratio"],
            )
    table = format_table(
        "Extension: DRAM page cache capacity x PM read latency, "
        "read-mostly MVCC (1 writer + 7 readers; 0 pages = paper's "
        "PM-only design)",
        ["scheme", "pages", "read_ns", "hit ratio", "ktps", "speedup",
         "invals"],
        rows,
        note="Reads served from a coherent DRAM frame cost dram_ns per "
             "line instead of read_ns; every committed install "
             "invalidates its page's frame, so the cache only pays off "
             "once the hit ratio amortizes fills — the crossover "
             "sharpens as PM latency grows.",
    )
    return {"table": table, "data": data}


FIGURES = {
    "fig1": fig1,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "ablation_atomicity": ablation_atomicity,
    "ablation_checkpoint": ablation_checkpoint,
    "ablation_rtm": ablation_rtm,
    "ablation_defrag": ablation_defrag,
    "ablation_index_maintenance": ablation_index_maintenance,
    "ablation_flush_instruction": ablation_flush_instruction,
    "extension_recovery_scaling": extension_recovery_scaling,
}
