"""Plain-text table rendering for benchmark reports."""


def format_table(title, headers, rows, *, note=None):
    """Render an aligned ASCII table."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)


def table_to_csv(table_text):
    """Convert a ``format_table`` rendering to CSV.

    The dash ruler row defines the column spans, so cells are sliced
    positionally — robust to spaces inside header labels.
    """
    lines = table_text.splitlines()
    ruler_index = next(
        i for i, line in enumerate(lines)
        if line and set(line.replace("  ", "")) == {"-"}
    )
    spans = []
    position = 0
    for segment in lines[ruler_index].split("  "):
        spans.append((position, position + len(segment)))
        position += len(segment) + 2
    body = [lines[ruler_index - 1]]  # header row
    for line in lines[ruler_index + 1 :]:
        if not line.strip():
            break  # blank line precedes the optional note
        body.append(line)
    out = []
    for line in body:
        cells = [line[lo:hi].strip() for lo, hi in spans]
        out.append(",".join(_csv_escape(cell) for cell in cells))
    return "\n".join(out) + "\n"


def _csv_escape(cell):
    if "," in cell or '"' in cell:
        return '"%s"' % cell.replace('"', '""')
    return cell
