"""CLI: regenerate any paper figure.

Usage::

    python -m repro.bench fig6 fig8
    python -m repro.bench all --ops 5000
    python -m repro.bench --parallel fig6 fig9

``--parallel`` fans the grid cells of a figure out over worker
processes (one simulation per cell); results are merged in declared
grid order, so the output is byte-identical to a serial run.
"""

import argparse
import sys
import time

from repro.bench import parallel
from repro.bench.figures import FIGURES


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures "
                    "(simulated-time results).",
    )
    parser.add_argument(
        "figures", nargs="+",
        help="figure names (%s) or 'all'" % ", ".join(sorted(FIGURES)),
    )
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per data point (default: "
                             "REPRO_BENCH_OPS or 1500)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write <DIR>/<figure>.txt and .csv")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--parallel", action="store_true",
                      help="run each grid cell in its own worker process "
                           "(output is byte-identical to --serial)")
    mode.add_argument("--serial", action="store_true",
                      help="run grid cells in-process (the default)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for --parallel "
                             "(default: all CPUs)")
    args = parser.parse_args(argv)
    parallel.configure(
        parallel=True if args.parallel else (False if args.serial else None),
        jobs=args.jobs,
    )
    names = sorted(FIGURES) if "all" in args.figures else args.figures
    for name in names:
        generator = FIGURES.get(name)
        if generator is None:
            parser.error("unknown figure %r" % name)
        started = time.time()
        try:
            result = generator(args.ops) if _takes_ops(name) else generator()
        except TypeError:
            result = generator()
        print(result["table"])
        print("[%s generated in %.1fs wall time]" % (name, time.time() - started))
        print()
        if args.out:
            import pathlib

            from repro.bench.report import table_to_csv

            directory = pathlib.Path(args.out)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / ("%s.txt" % name)).write_text(result["table"] + "\n")
            (directory / ("%s.csv" % name)).write_text(
                table_to_csv(result["table"])
            )
    return 0


def _takes_ops(name):
    return name not in ("ablation_atomicity",)


if __name__ == "__main__":
    sys.exit(main())
