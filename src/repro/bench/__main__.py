"""CLI: regenerate any paper figure.

Usage::

    python -m repro.bench fig6 fig8
    python -m repro.bench all --ops 5000
"""

import argparse
import sys
import time

from repro.bench.figures import FIGURES


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures "
                    "(simulated-time results).",
    )
    parser.add_argument(
        "figures", nargs="+",
        help="figure names (%s) or 'all'" % ", ".join(sorted(FIGURES)),
    )
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per data point (default: "
                             "REPRO_BENCH_OPS or 1500)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write <DIR>/<figure>.txt and .csv")
    args = parser.parse_args(argv)
    names = sorted(FIGURES) if "all" in args.figures else args.figures
    for name in names:
        generator = FIGURES.get(name)
        if generator is None:
            parser.error("unknown figure %r" % name)
        started = time.time()
        try:
            result = generator(args.ops) if _takes_ops(name) else generator()
        except TypeError:
            result = generator()
        print(result["table"])
        print("[%s generated in %.1fs wall time]" % (name, time.time() - started))
        print()
        if args.out:
            import pathlib

            from repro.bench.report import table_to_csv

            directory = pathlib.Path(args.out)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / ("%s.txt" % name)).write_text(result["table"] + "\n")
            (directory / ("%s.csv" % name)).write_text(
                table_to_csv(result["table"])
            )
    return 0


def _takes_ops(name):
    return name not in ("ablation_atomicity",)


if __name__ == "__main__":
    sys.exit(main())
