"""Benchmark runners: build an engine, drive a workload, collect the
per-phase simulated times and event counters.

The measurement boundaries follow the paper's Section 5: engine-level
runs report Search / Page Update / Commit (pager + B-tree time only),
while SQL-level runs additionally include parsing and execution
(Figures 11-12).  NVWAL's lazy checkpoint is reported separately, as
the paper does.

Everything reported here comes from the shared observability layer
(``engine.obs``): phase times are the ``phase.<segment>`` histogram
deltas, counters are the registry's counter deltas.  The historical
counter names (``clflushes``, ``fences``, ...) are kept as aliases of
their registry counterparts in ``RunResult.counters``.
"""

from dataclasses import dataclass, field

from repro.bench.workloads import random_keys, sized_payload
from repro.core import SystemConfig, open_engine
from repro.pm.latency import LatencyProfile
from repro.pm.stats import _LEGACY_FIELDS

#: Engine-level phases whose sum is the per-operation time the paper
#: plots in Figure 6.
PHASES = ("search", "page_update", "commit")


@dataclass
class RunResult:
    """Aggregated outcome of one benchmark run."""

    scheme: str
    ops: int
    params: dict
    segments_us: dict            # average per op, by clock segment
    counters: dict               # event deltas over the whole run
    extras: dict = field(default_factory=dict)

    @property
    def op_us(self):
        """Average engine-level time per operation (Search + Page
        Update + Commit)."""
        return sum(self.segments_us.get(phase, 0.0) for phase in PHASES)

    @property
    def sql_op_us(self):
        """Average full response time per operation (adds the SQL
        layer)."""
        return self.op_us + self.segments_us.get("sql", 0.0)

    def per_op(self, counter):
        return self.counters.get(counter, 0) / max(1, self.ops)


def build_config(scheme, *, read_ns=300.0, write_ns=300.0, page_size=4096,
                 ops=2000, record_size=64, atomic_granularity=64,
                 cache_lines=4096, min_dram_pages=8):
    """A ``SystemConfig`` sized for the requested workload.

    The arena, slot-header log, NVWAL heap, and DRAM buffer cache are
    all provisioned from the expected data volume so that no run fails
    on capacity and NVWAL enjoys a fully cached working set (as the
    paper's DRAM+PM configuration does).
    """
    data_bytes = ops * (record_size + 64) * 3
    npages = max(128, data_bytes // page_size + 64)
    # NVWAL checkpoints lazily but regularly enough to bound the
    # per-page delta chains a buffer-cache miss must replay: a few
    # checkpoints per run at any benchmark scale.
    checkpoint = max(192 * 1024, ops * (record_size + 256) // 8)
    # NVWAL's volatile buffer cache is bounded like SQLite's page
    # cache, and the paper's working set exceeds it: about half the
    # *actually used* leaf pages fit, so page fetches from PM occur at
    # every benchmark scale (the regime the paper's NVWAL runs in).
    leaf_estimate = max(4, ops * (record_size + 24) // int(page_size * 0.7))
    # The lower bound must cover the pinned working set of one
    # transaction (multi-record runs raise it).
    dram_pages = max(min_dram_pages, leaf_estimate // 2)
    return SystemConfig(
        scheme=scheme,
        page_size=page_size,
        npages=npages,
        log_bytes=max(1 << 16, 4 * page_size),
        heap_bytes=checkpoint * 2 + (1 << 20),
        dram_bytes=dram_pages * page_size,
        nvwal_checkpoint_bytes=checkpoint,
        latency=LatencyProfile(read_ns=read_ns, write_ns=write_ns),
        atomic_granularity=atomic_granularity,
        cache_lines=cache_lines,
    )


def _collect(engine, ops, params, obs_snapshot, **extras):
    delta = engine.obs.since(obs_snapshot)
    registry_delta = delta["registry"]
    segments_us = {
        name[len("phase."):]: hist["sum_ns"] / ops / 1000.0
        for name, hist in registry_delta["histograms"].items()
        if name.startswith("phase.")
    }
    counters = dict(registry_delta["counters"])
    # Historical names stay available as aliases of the registry
    # counters ("clflushes" == "pm.flush", ...).
    for legacy, metric in _LEGACY_FIELDS.items():
        counters[legacy] = counters.get(metric, 0)
    extras.setdefault("total_us_per_op", delta["elapsed_ns"] / ops / 1000.0)
    return RunResult(
        scheme=engine.scheme,
        ops=ops,
        params=params,
        segments_us=segments_us,
        counters=counters,
        extras=extras,
    )


def run_single_inserts(scheme, *, ops=2000, record_size=64, read_ns=300.0,
                       write_ns=300.0, seed=7, config=None,
                       atomic_granularity=64):
    """The paper's main workload: ``ops`` single-record INSERT
    transactions with random keys (engine level, no SQL)."""
    config = config or build_config(
        scheme, read_ns=read_ns, write_ns=write_ns, ops=ops,
        record_size=record_size, atomic_granularity=atomic_granularity,
    )
    engine = open_engine(config, scheme=scheme)
    keys = random_keys(ops, seed=seed)
    payload = sized_payload(record_size)
    snapshot = engine.obs.snapshot()
    inplace_before = getattr(engine, "inplace_commits", 0)
    logged_before = getattr(engine, "logged_commits", 0)
    for key in keys:
        engine.insert(key, payload)
    params = dict(read_ns=read_ns, write_ns=write_ns, record_size=record_size)
    extras = {}
    if hasattr(engine, "inplace_commits"):
        extras["inplace_commits"] = engine.inplace_commits - inplace_before
        extras["logged_commits"] = engine.logged_commits - logged_before
    if hasattr(engine, "checkpoints"):
        extras["checkpoints"] = engine.checkpoints
    if hasattr(engine, "commit_page_counts"):
        extras["commit_page_counts"] = engine.commit_page_counts
    return _collect(engine, ops, params, snapshot, **extras)


def run_multi_insert(scheme, *, txns=400, per_txn=4, record_size=64,
                     read_ns=300.0, write_ns=300.0, seed=7):
    """Transactions inserting ``per_txn`` records each (the regime
    where slot-header logging matters; paper Section 3.3)."""
    ops = txns * per_txn
    config = build_config(scheme, read_ns=read_ns, write_ns=write_ns,
                          ops=ops, record_size=record_size,
                          min_dram_pages=max(48, per_txn * 3))
    engine = open_engine(config, scheme=scheme)
    keys = random_keys(ops, seed=seed)
    payload = sized_payload(record_size)
    snapshot = engine.obs.snapshot()
    for txn_no in range(txns):
        with engine.transaction() as txn:
            for key in keys[txn_no * per_txn : (txn_no + 1) * per_txn]:
                txn.insert(key, payload)
    params = dict(per_txn=per_txn, read_ns=read_ns, write_ns=write_ns)
    return _collect(engine, ops, params, snapshot)


def run_sql_statements(scheme, *, ops=1000, kind="insert", read_ns=300.0,
                       write_ns=300.0, seed=7, read_ratio=None):
    """Full SQL response-time workload (Figures 11-12 surface).

    ``kind`` is one of "insert", "update", "delete", "select", or
    "mixed" (with ``read_ratio``).
    """
    from repro.bench.workloads import mixed_ops
    from repro.db import Database

    config = build_config(scheme, read_ns=read_ns, write_ns=write_ns,
                          ops=max(ops, 512), record_size=96)
    db = Database.open(config, scheme=scheme)
    db.execute("CREATE TABLE bench (k TEXT PRIMARY KEY, v TEXT)")
    keys = [k.decode() for k in random_keys(ops, seed=seed)]
    value = "v" * 64

    if kind in ("update", "delete", "select"):
        for key in keys:  # preload outside the measured window
            db.execute("INSERT INTO bench VALUES (?, ?)", (key, value))

    engine = db.engine
    snapshot = engine.obs.snapshot()
    if kind == "insert":
        for key in keys:
            db.execute("INSERT INTO bench VALUES (?, ?)", (key, value))
    elif kind == "update":
        for key in keys:
            db.execute("UPDATE bench SET v = ? WHERE k = ?", (value + "!", key))
    elif kind == "delete":
        for key in keys:
            db.execute("DELETE FROM bench WHERE k = ?", (key,))
    elif kind == "select":
        for key in keys:
            db.execute("SELECT v FROM bench WHERE k = ?", (key,))
    elif kind == "mixed":
        stream = mixed_ops(ops, read_ratio=read_ratio or 0.5,
                           key_pool=keys, seed=seed)
        for op, key in stream:
            if op == "read":
                db.execute("SELECT v FROM bench WHERE k = ?", (key,))
            else:
                db.execute("INSERT INTO bench VALUES (?, ?)", (key, value))
    else:
        raise ValueError("unknown workload kind %r" % kind)
    params = dict(kind=kind, read_ns=read_ns, write_ns=write_ns,
                  read_ratio=read_ratio)
    return _collect(engine, ops, params, snapshot)
