"""Benchmark harness: workloads, runners, and paper-figure generators.

Every figure of the paper's evaluation has a generator in
``repro.bench.figures`` (also runnable as ``python -m repro.bench
fig6``); the pytest-benchmark files under ``benchmarks/`` call the same
functions.  All reported times are *simulated* microseconds from the
engines' cost-accounted clocks — deterministic for a given seed and
independent of the host machine.
"""

from repro.bench.harness import (
    RunResult,
    build_config,
    run_multi_insert,
    run_single_inserts,
    run_sql_statements,
)
from repro.bench.workloads import random_keys, sized_payload

__all__ = [
    "RunResult",
    "build_config",
    "random_keys",
    "run_multi_insert",
    "run_single_inserts",
    "run_sql_statements",
    "sized_payload",
]
