"""Sessions: independently-owned transaction scopes over one engine.

The paper's host system (SQLite) serializes writers, and this
reproduction historically did the same — ``Engine`` owned one implicit
transaction at a time.  A :class:`Session` generalizes that: each
session owns at most one open transaction, its own clock-segment
attribution (all simulated time spent inside its operations lands in
the ``session.<name>`` segment) and obs labels
(``session.<name>.commit`` / ``.abort`` counters), and — when the
engine hands out lock-managed sessions — a :class:`LockingContext`
that serializes conflicting page/root access against the other
sessions (strict 2PL).

The *default* single-session path (``engine.transaction()``,
``engine.insert()``, every existing benchmark and golden-counter test)
does not construct sessions and is byte-for-byte unchanged.

Sessions are cooperative, not threaded: at most one session executes
host code at any instant.  The deterministic interleaving of many
sessions is the scheduler's job (:mod:`repro.core.scheduler`).
"""

from repro.core.locking import LockingContext
from repro.obs import trace as ev


class Session:
    """One client's transaction scope on a shared engine."""

    def __init__(self, engine, sid, name, *, lock_manager=None,
                 read_only=False, isolation=None, quiet=False,
                 resource_namespace=0):
        self.engine = engine
        self.sid = sid
        self.name = name
        self.lock_manager = lock_manager
        #: The session's isolation mode — the state machine every
        #: transaction's lifecycle dispatches on:
        #:
        #: ``"locked"``
        #:     classic strict 2PL (IS/IX/S/X held to commit).
        #: ``"read_only"``
        #:     MVCC snapshot reads: no lock manager, zero locks,
        #:     reads resolve against version chains.
        #: ``"occ"``
        #:     snapshot-isolation writes: reads at a pinned tracked
        #:     snapshot, writes buffered, commit-time validation +
        #:     install under short X locks — falling back to
        #:     ``"locked"`` for one transaction after
        #:     ``config.occ_max_validation_failures`` consecutive
        #:     failed validations (a success resets the streak).
        if isolation is None:
            isolation = "read_only" if read_only else "locked"
        self.isolation = isolation
        #: Read-only sessions run MVCC snapshot transactions: they
        #: carry no lock manager and acquire zero locks (no IS/S
        #: traffic at all) — reads resolve against version chains.
        self.read_only = isolation == "read_only"
        #: Consecutive failed OCC validations (the 2PL-fallback streak).
        self._occ_failures = 0
        #: Sharded OCC legs: the router decides fallback globally (one
        #: policy per sharded transaction) and forces its quiet inner
        #: sessions locked through this flag instead of their own
        #: streaks.
        self.force_locked = False
        #: Quiet sessions are inner per-shard legs of a sharded
        #: transaction: the router emits one *global* TXN event and
        #: outcome counter per transaction, so the legs suppress
        #: theirs (lock events still flow — they are per shard).
        self.quiet = quiet
        #: OR-ed into every lock resource id this session constructs,
        #: so per-shard resources stay distinct in the global
        #: wait-for graph (0 = unsharded, ids unchanged).
        self.resource_namespace = resource_namespace
        self.segment_name = "session.%s" % name
        #: Per-session obs labels ("session.<name>.commit" ...).
        self.obs = engine.obs.labeled("session.%s" % name)
        self._clock = engine.clock
        self._txn = None
        #: Log sequence of the last committed transaction (None until
        #: one commits, or when the scheme doesn't stamp contexts) —
        #: what ``commit_durable`` checks against the open epoch.
        self._last_commit_seq = None
        self.closed = False

    # -- transactions ------------------------------------------------------

    @property
    def locking(self):
        return self.lock_manager is not None

    def _begin_mode(self):
        """The mode the *next* transaction runs in — where the OCC
        fallback policy lives.  An OCC session that failed validation
        ``config.occ_max_validation_failures`` times in a row runs its
        next transaction under classic 2PL (guaranteed lock-managed
        progress); its success resets the streak and the session
        returns to optimistic mode."""
        if self.isolation == "read_only":
            return "read_only"
        if self.isolation == "occ":
            if self.force_locked or (
                self._occ_failures
                >= self.engine.config.occ_max_validation_failures
            ):
                if not self.quiet:
                    self.engine.obs.inc("occ.fallback")
                    self.engine.obs.event(
                        ev.OCC_FALLBACK, self.sid, self._occ_failures
                    )
                return "locked"
            return "occ"
        return "locked"

    def _occ_failed(self):
        """Count one failed validation/install toward the fallback."""
        self._occ_failures += 1

    @property
    def in_transaction(self):
        return self._txn is not None

    @property
    def commit_durable(self):
        """Is this session's last committed transaction durable?

        With grouping off every commit fences before returning, so
        this is always True.  With ``SystemConfig.group_commit`` on, a
        commit is *committed* (visible to every later transaction) the
        moment it joins the open epoch but *durable* only once the
        epoch closes and the shared group mark persists — until then
        this reports False.  ``engine.drain_group_commit()`` forces
        the close (a durability barrier).
        """
        group = getattr(self.engine, "group", None)
        if group is None or self._last_commit_seq is None:
            return True
        return not group.contains_seq(self._last_commit_seq)

    @property
    def transaction_ctx(self):
        """The open transaction's *inner* scheme context (None when
        idle) — what the engine consults to protect this session's
        uncommitted pages from garbage collection."""
        if self._txn is None:
            return None
        return self._txn.inner_ctx

    def transaction(self):
        """Begin this session's transaction (one at a time)."""
        from repro.core.base import Transaction, TransactionError

        if self.closed:
            raise TransactionError("session %r is closed" % self.name)
        if self._txn is not None:
            raise TransactionError(
                "session %r already has an open transaction" % self.name
            )
        txn = Transaction(self.engine, session=self)
        self._txn = txn
        if not self.quiet:
            self.engine.obs.inc("engine.txn.begin")
            self.engine.obs.event(ev.TXN_BEGIN, self.sid)
        return txn

    def _wrap_context(self, ctx):
        """Interpose the lock manager (when this session locks)."""
        if self.lock_manager is None:
            return ctx
        return LockingContext(ctx, self)

    def op_segment(self):
        """Clock segment attributing an operation's simulated time to
        this session (nested inside it, the usual phase segments keep
        accumulating exactly as before)."""
        return self._clock.segment(self.segment_name)

    def _txn_finished(self, txn, committed):
        """Transaction epilogue: drop lock state, count the outcome.

        The lock releases are emitted into the trace *before* the
        TXN_COMMIT/TXN_ABORT event, so the dynamic checker's "all
        locks released at transaction end" invariant reads straight
        off the event order (strict 2PL releases in one step)."""
        if self._txn is txn:
            self._txn = None
        if committed:
            self._last_commit_seq = getattr(
                txn.inner_ctx, "commit_seq", None
            )
            if self.isolation == "occ":
                self._occ_failures = 0
        if self.lock_manager is not None:
            self.lock_manager.release_all(self.sid)
        snapshot = txn.pinned_snapshot
        if snapshot is not None:
            # Unpin the snapshot (emits SNAPSHOT_END before the
            # TXN_COMMIT/TXN_ABORT event, mirroring the lock-release
            # ordering) and let the watermark GC reclaim versions.
            # Both read-only and OCC transactions pin one; a committed
            # OCC install already unpinned it (no-op here).
            self.engine.version_manager.end_snapshot(snapshot)
        if self.quiet:
            return
        self.obs.inc("commit" if committed else "abort")
        self.engine.obs.event(
            ev.TXN_COMMIT if committed else ev.TXN_ABORT, self.sid
        )

    # -- autocommit conveniences ------------------------------------------

    def insert(self, key, value, *, root_slot=0, replace=False):
        with self.transaction() as txn:
            txn.insert(key, value, root_slot=root_slot, replace=replace)

    def update(self, key, value, *, root_slot=0):
        with self.transaction() as txn:
            return txn.update(key, value, root_slot=root_slot)

    def delete(self, key, *, root_slot=0):
        with self.transaction() as txn:
            return txn.delete(key, root_slot=root_slot)

    def search(self, key, *, root_slot=0):
        with self.transaction() as txn:
            return txn.search(key, root_slot=root_slot)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Roll back any open transaction and detach from the engine."""
        if self.closed:
            return
        if self._txn is not None:
            self._txn.rollback()
        if self.lock_manager is not None:
            self.lock_manager.release_all(self.sid)
        self.closed = True
        self.engine._session_closed(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        state = "txn open" if self._txn is not None else "idle"
        return "Session(%r, %s)" % (self.name, state)
