"""System configuration and arena layout.

One ``SystemConfig`` fully describes a simulated machine + engine: PM
geometry and latencies, the crash model's atomic-write granularity,
page geometry, log/heap sizing, and which commit scheme runs on top.
The benchmark harnesses sweep ``latency`` exactly as the paper sweeps
Quartz.
"""

from dataclasses import dataclass, field, replace

from repro.pm.latency import CostModel, LatencyProfile
from repro.pm.memory import CACHE_LINE

#: Leaf slot-header budget for the in-place commit: one cache line
#: (the paper's 28-record bound comes from (64 - 8) / 2).
FASTPLUS_LEAF_CAPACITY = (CACHE_LINE - 8) // 2


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build an engine on a fresh arena.

    Attributes:
        scheme: default engine for ``open_engine`` ("fast", "fastplus",
            "nvwal", "naive").
        page_size: database page size (SQLite default 4096).
        npages: pages in the database arena (page 0 is the header).
        log_bytes: slot-header log region (FAST/FAST⁺).
        heap_bytes: persistent heap for NVWAL's WAL frames.
        dram_bytes: NVWAL's volatile buffer cache size.
        nvwal_checkpoint_bytes: WAL occupancy that triggers NVWAL's
            lazy checkpoint.
        latency / cost: see ``repro.pm.latency``.
        atomic_granularity: 64 (failure-atomic cache-line writes — the
            paper's HTM-era assumption) or 8 (word-atomic only).
        cache_lines: CPU-cache residency model capacity.
        flush_instruction: "clflush" (evicting, the paper's testbed) or
            "clwb" (keeps lines cached; shown in the paper's Figure 3).
    """

    scheme: str = "fastplus"
    page_size: int = 4096
    npages: int = 1024
    log_bytes: int = 64 * 1024
    heap_bytes: int = 4 * 1024 * 1024
    dram_bytes: int = 4 * 1024 * 1024
    nvwal_checkpoint_bytes: int = 2 * 1024 * 1024
    latency: LatencyProfile = field(default_factory=LatencyProfile)
    cost: CostModel = field(default_factory=CostModel)
    atomic_granularity: int = CACHE_LINE
    cache_lines: int = 4096
    flush_instruction: str = "clflush"
    #: Run garbage collection (reclaiming pages leaked by the crash)
    #: eagerly during recovery.  With False, recovery is O(log size) —
    #: replay the committed slot-header frames and go — and leaked
    #: pages wait for an explicit ``engine.garbage_collect()``
    #: (free-list staleness is always corrected lazily on use).
    eager_recovery_gc: bool = True
    #: Concurrency policy (sessions + scheduler, simulated time):
    #: how long a session waits on a lock before timing out, how far
    #: an aborted transaction backs off before retrying, and how many
    #: retries it gets before the scheduler gives up on the item.
    lock_timeout_ns: float = 2_000_000.0
    lock_retry_backoff_ns: float = 50_000.0
    max_txn_retries: int = 64
    #: OCC sessions (``isolation="occ"``): consecutive failed
    #: commit-time validations before the session falls back to
    #: classic 2PL for its next transaction.  A successful optimistic
    #: commit resets the streak.
    occ_max_validation_failures: int = 3
    #: Shard support: a sharded deployment carves one PM arena into N
    #: per-shard sub-arenas, each described by a copy of this config
    #: with ``base_offset`` pointing at its slice.  The default (0)
    #: keeps every existing single-engine layout byte-identical.
    base_offset: int = 0
    #: Size of the per-shard two-phase-commit prepare region appended
    #: after the heap (0 = absent; only sharded engines allocate one).
    twopc_bytes: int = 0
    #: Group commit (epoch-pipelined durability): committing sessions
    #: stage + flush their frames, then *join* the current epoch
    #: instead of fencing individually; the epoch closes with ONE
    #: sfence and ONE ≤8B group commit mark covering every member.
    #: Off by default — grouping-off runs are byte-identical to the
    #: per-txn commit path.
    group_commit: bool = False
    #: Members that force an epoch close at the join that reaches it.
    group_commit_size: int = 4
    #: Simulated-ns age at which a joining commit closes the epoch
    #: even below ``group_commit_size`` (0 = size-threshold only).
    #: Evaluated at commit boundaries only, so scheduling stays
    #: deterministic under the cooperative scheduler.
    group_commit_window_ns: float = 0.0
    #: Tiered DRAM page cache (``repro.storage.cache``): committed
    #: reads of read-hot pages are served from clock/second-chance
    #: DRAM copies at ``latency.dram_ns`` instead of ``read_ns``,
    #: invalidated at every committed install point.  0 (the default)
    #: builds no cache at all — byte-identical to pre-cache builds.
    dram_cache_pages: int = 0

    # ------------------------------------------------------------------
    # Arena layout: [page store | slot-header log | NVWAL heap | 2PC]
    # ------------------------------------------------------------------

    @property
    def store_base(self):
        return self.base_offset

    @property
    def store_bytes(self):
        return self.npages * self.page_size

    @property
    def log_base(self):
        return self.base_offset + self.store_bytes

    @property
    def heap_base(self):
        return self.base_offset + self.store_bytes + self.log_bytes

    @property
    def twopc_base(self):
        return self.heap_base + self.heap_bytes

    @property
    def arena_bytes(self):
        return (
            self.store_bytes + self.log_bytes + self.heap_bytes
            + self.twopc_bytes
        )

    def with_latency(self, read_ns=None, write_ns=None):
        """A copy with overridden PM latencies (sweep helper)."""
        return replace(self, latency=self.latency.with_pm(read_ns, write_ns))

    def with_scheme(self, scheme):
        return replace(self, scheme=scheme)
