"""Deterministic cooperative scheduler for N simulated clients.

Concurrency in this reproduction is *simulated*, like everything else:
there are no host threads.  Each client is a :class:`repro.core.session.Session`
plus a workload (a list of transaction items), and the scheduler
interleaves them one operation at a time on the shared
:class:`repro.pm.clock.SimClock`:

* every client carries a ``ready_at_ns`` instant (the simulated time
  at which its next operation may start — right after its previous
  operation, or later when it is backing off after an abort);
* each step runs the runnable client with the smallest
  ``(ready_at_ns, client index)`` — round-robin *by simulated time*,
  which is exactly how concurrent clients interleave on real hardware,
  and byte-reproducible because nothing depends on host time, host
  threads, or hash order;
* a step executes ONE operation (insert/update/delete/search/think) of
  the client's current transaction, so transactions genuinely
  interleave and conflict through the shared
  :class:`repro.core.locking.LockManager`.

Conflict policy (the timeout/abort-retry policy of the lock manager):

* a :class:`LockConflict` before the operation mutated anything
  (``ctx.op_mutated`` False — only reads happened) parks the client in
  WAITING: its wait is registered in the wait-for graph, and it wakes
  as soon as a blocker commits or aborts.  A wait-for cycle found at
  park time aborts the requester immediately (deadlock victim);
* a conflict *after* the operation mutated transaction state cannot be
  waited out — the half-applied operation cannot be re-issued — so the
  transaction aborts and the whole item retries after a deterministic
  exponential backoff;
* a wait that outlives ``lock_timeout_ns`` simulated nanoseconds times
  out: the transaction aborts and retries the same way.

Aborted items retry up to ``max_txn_retries`` times (then the run
fails loudly — livelock is a bug in the policy, not something to paper
over).  Committed items are recorded in ``commit_order``; because of
strict two-phase locking the interleaving is serializable *in that
order*, which is what the crash harness validates against.

Workload items use the same shapes as :mod:`repro.testing.crashsim`:
``("txn", [ops])`` for a multi-operation transaction or a bare
``(kind, key, value)`` tuple for a single-operation transaction, with
kinds ``insert`` / ``update`` / ``delete`` / ``search`` / ``think``
(think's ``key`` is simulated nanoseconds to hold the transaction open).
"""

from repro.core.locking import DeadlockError, LockConflict
from repro.core.occ import OCCConflict
from repro.obs import trace as ev

READY = "ready"
WAITING = "waiting"
DONE = "done"


class SchedulerError(Exception):
    """The scheduler cannot make progress (retry budget exhausted)."""


class RetriesExhausted(SchedulerError):
    """One client aborted past ``max_retries``.  Distinguished from
    other scheduler failures because it is a *liveness* cap, not a
    safety violation: an adversarial pick strategy can starve any
    client indefinitely, so the schedule-space explorer treats this as
    schedule truncation rather than a finding."""


class _Client:
    """One simulated client: a session plus its workload cursor."""

    __slots__ = (
        "index", "name", "session", "items", "item_idx", "ops", "op_idx",
        "txn", "state", "ready_at_ns", "wait_deadline_ns", "retries",
        "commits", "aborts", "deadlocks", "timeouts", "total_retries",
        "reads", "steps", "last_step",
    )

    def __init__(self, index, name, session, items):
        self.index = index
        self.name = name
        self.session = session
        self.items = list(items)
        self.item_idx = 0
        self.ops = None          # current item's op list (txn open)
        self.op_idx = 0
        self.txn = None
        self.state = READY
        self.ready_at_ns = 0.0
        self.wait_deadline_ns = None
        self.retries = 0         # of the current item
        self.commits = 0
        self.aborts = 0
        self.deadlocks = 0
        self.timeouts = 0
        self.total_retries = 0
        self.reads = 0
        self.steps = 0
        self.last_step = 0   # global step sequence of the last run

    @property
    def finished(self):
        return self.item_idx >= len(self.items)

    def summary(self):
        return {
            "name": self.name,
            "items": len(self.items),
            "commits": self.commits,
            "aborts": self.aborts,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
            "retries": self.total_retries,
            "reads": self.reads,
            "steps": self.steps,
        }


def _ops_of(item):
    """Normalize a workload item to its operation list."""
    if item and item[0] == "txn":
        return list(item[1])
    return [item]


class Scheduler:
    """Interleaves N client sessions deterministically (see module doc)."""

    def __init__(self, engine, *, lock_timeout_ns=None,
                 retry_backoff_ns=None, max_retries=None,
                 cleanup_on_error=True, on_step=None, pick_strategy=None):
        if not engine.supports_sessions:
            raise SchedulerError(
                "the %r scheme does not support concurrent sessions"
                % engine.scheme
            )
        self.engine = engine
        self.obs = engine.obs
        self.clock = engine.clock
        config = engine.config
        self.lock_timeout_ns = (
            config.lock_timeout_ns if lock_timeout_ns is None
            else lock_timeout_ns
        )
        self.retry_backoff_ns = (
            config.lock_retry_backoff_ns if retry_backoff_ns is None
            else retry_backoff_ns
        )
        self.max_retries = (
            config.max_txn_retries if max_retries is None else max_retries
        )
        #: Roll back open transactions and close sessions when an
        #: unexpected (non-LockConflict) exception escapes the run loop,
        #: so a failed operation can never leak held locks.  Crash
        #: harnesses set this False: a simulated power failure must
        #: leave the engine exactly as the crash found it (no post-crash
        #: rollback writes).
        self.cleanup_on_error = cleanup_on_error
        #: Optional callback invoked after every completed step with the
        #: stepped client — the trace-checker harness drains the event
        #: ring here so the ring never wraps mid-run.
        self.on_step = on_step
        #: Optional scheduling hook: ``pick_strategy(scheduler,
        #: ready_clients)`` is called whenever at least one client is
        #: READY, with the candidates sorted by the default pick key
        #: ``(ready_at_ns, last_step, index)``, and must return one of
        #: them.  The schedule-space explorer drives interleavings
        #: through this hook; with it unset (the default) scheduling is
        #: byte-identical to the historical deterministic policy, and
        #: no extra trace events are emitted.
        self.pick_strategy = pick_strategy
        self.clients = []
        self._step_seq = 0
        #: The client whose operation is (or was last) executing — at a
        #: simulated crash, the only client that can have an in-flight
        #: commit (cooperative scheduling: one session runs at a time).
        self.running_client = None
        #: (client name, item index) per committed transaction — the
        #: serialization order (strict 2PL commits in lock order).
        self.commit_order = []

    def add_client(self, items, *, name=None, read_only=False,
                   isolation=None):
        """Register one client with its workload; returns the client.

        ``isolation`` picks the session's concurrency mode
        (``"locked"`` / ``"read_only"`` / ``"occ"``, see
        ``Engine.session``); ``read_only=True`` is the historical
        spelling of ``isolation="read_only"``.  Read-only clients run
        MVCC snapshot transactions: their session carries no lock
        manager, so their workloads may contain only ``search`` and
        ``think`` operations (validated here — failing at add time
        beats a mid-run surprise).
        """
        if isolation is None:
            isolation = "read_only" if read_only else "locked"
        if isolation == "read_only":
            for item in items:
                for op in _ops_of(item):
                    if op and op[0] not in ("search", "think"):
                        raise SchedulerError(
                            "read-only client workload contains %r "
                            "(only search/think allowed)" % (op[0],)
                        )
        index = len(self.clients)
        name = name or ("c%d" % index)
        session = self.engine.session(name, isolation=isolation)
        client = _Client(index, name, session, items)
        client.ready_at_ns = self.clock.now_ns
        self.clients.append(client)
        return client

    # -- the run loop ------------------------------------------------------

    def run(self):
        """Interleave all clients to completion; returns the report."""
        start_ns = self.clock.now_ns
        try:
            while True:
                client = self._next_client()
                if client is None:
                    break
                self._step(client)
                if self.on_step is not None:
                    self.on_step(client)
        except LockConflict:
            # ``_step`` handles conflicts (wait/abort/retry); one
            # escaping means a non-operation path raised it — never
            # swallow, but still release what the clients hold.
            if self.cleanup_on_error:
                self._cleanup_after_error()
            raise
        except Exception:
            # An operation failed for a non-conflict reason (engine
            # error, bad workload item...).  Without cleanup the failed
            # client's transaction would stay open with its locks held
            # and every session would leak.  Roll back and close, then
            # re-raise the original error.
            if self.cleanup_on_error:
                self._cleanup_after_error()
            raise
        # End-of-run durability barrier: close any open group-commit
        # epoch so the report's counts cover every member's shared
        # fence + mark (no-op with grouping off).
        drain = getattr(self.engine, "drain_group_commit", None)
        if drain is not None:
            drain()
        report = self._report(start_ns)
        for client in self.clients:
            client.session.close()
        return report

    def _cleanup_after_error(self):
        """Best-effort teardown after an unexpected error: roll back
        every open transaction (releasing its locks) and close every
        session.  Lock release is guaranteed even when a rollback
        itself fails mid-way."""
        locks = self.engine.lock_manager
        for client in self.clients:
            if client.txn is not None:
                try:
                    client.txn.rollback()
                # repro: allow[PM005] failed-rollback cleanup: the original error re-raises; lock release below must still run
                except Exception:
                    pass
                finally:
                    locks.release_all(client.session.sid)
                client.txn = None
                client.ops = None
            try:
                client.session.close()
            except Exception:
                locks.release_all(client.session.sid)

    def _next_client(self):
        """The next event in simulated-time order: either a runnable
        client (returned) or the earliest lock-wait timeout (handled
        here, then re-evaluated)."""
        while True:
            if self.pick_strategy is not None:
                picked = self._pick_with_strategy()
                if picked is not None:
                    return picked
                if not any(c.state is WAITING for c in self.clients):
                    return None  # every client DONE
                # No runnable client: fall through to the default
                # timeout handling below (wait deadlines still fire).
            # Ties on ready_at (common right after a wake) go to the
            # least-recently-run client, so releases hand the lock over
            # instead of letting the low-index client streak (convoy).
            ready = min(
                (
                    (c.ready_at_ns, c.last_step, c.index, c)
                    for c in self.clients if c.state is READY
                ),
                default=None,
            )
            waiting = min(
                (
                    (c.wait_deadline_ns, c.last_step, c.index, c)
                    for c in self.clients if c.state is WAITING
                ),
                default=None,
            )
            if ready is not None and (
                waiting is None or ready[0] <= waiting[0]
            ):
                client = ready[3]
                self.clock.advance_to(client.ready_at_ns)
                return client
            if waiting is None:
                return None  # every client DONE
            deadline, _, _, client = waiting
            self.clock.advance_to(deadline)
            self._time_out(client)

    def _pick_with_strategy(self):
        """Let ``pick_strategy`` choose among the READY clients
        (sorted by the default pick key); returns None when no client
        is READY.  Runnable clients take priority over pending wait
        timeouts here: the explorer must be able to exercise any
        runnable interleaving, and a deferred timeout only means the
        waiter waits a little longer in simulated time."""
        ready = sorted(
            (c for c in self.clients if c.state is READY),
            key=lambda c: (c.ready_at_ns, c.last_step, c.index),
        )
        if not ready:
            return None
        client = self.pick_strategy(self, ready)
        if client is None or client.state is not READY:
            raise SchedulerError(
                "pick_strategy returned %r (must return a READY client)"
                % (client,)
            )
        self.clock.advance_to(client.ready_at_ns)
        return client

    def _step(self, client):
        """Run one operation of ``client``'s current transaction."""
        client.steps += 1
        self._step_seq += 1
        client.last_step = self._step_seq
        self.running_client = client
        self.obs.inc("sched.step")
        if self.pick_strategy is not None:
            # Stamp the stream with the stepping session so per-step
            # event attribution (the lockset race detector's actor)
            # reads straight off the trace.  Never emitted on the
            # default path — replay/golden traces stay byte-identical.
            self.obs.event(ev.SCHED_PICK, client.session.sid, client.index)
        if client.txn is None:
            client.ops = _ops_of(client.items[client.item_idx])
            client.op_idx = 0
            client.txn = client.session.transaction()
        kind, key, value = client.ops[client.op_idx]
        txn = client.txn
        if kind == "think":
            # A sleep, not work: the client (with any locks it holds)
            # parks until now + key ns of simulated time; other clients
            # run in the meantime.  A terminal think falls through to
            # the commit below.
            client.op_idx += 1
            if client.op_idx < len(client.ops):
                client.ready_at_ns = self.clock.now_ns + key
                return
        else:
            try:
                if kind == "insert":
                    txn.insert(key, value, replace=True)
                elif kind == "update":
                    txn.update(key, value)
                elif kind == "delete":
                    txn.delete(key)
                elif kind == "search":
                    txn.search(key)
                    client.reads += 1
                else:
                    raise SchedulerError("unknown op kind %r" % (kind,))
            except LockConflict as conflict:
                self._on_conflict(client, conflict)
                return
            client.op_idx += 1
        if client.op_idx >= len(client.ops):
            try:
                txn.commit()
            except OCCConflict:
                # Commit-time optimistic failure (stale read set, or
                # the install lost a lock race): the transaction is
                # still open — abort it and retry the item, eventually
                # under the session's 2PL fallback.
                self._abort(client, "sched.abort.occ")
                return
            self.commit_order.append((client.name, client.item_idx))
            client.txn = None
            client.ops = None
            client.commits += 1
            client.retries = 0
            client.item_idx += 1
            if client.finished:
                client.state = DONE
        client.ready_at_ns = self.clock.now_ns
        # A snapshot client's commit releases no locks, so it can never
        # unblock a waiter — and a pure-reader mix must not lazily
        # instantiate the lock manager just to scan an empty table.
        if client.session.locking:
            self._wake_waiters()

    # -- conflicts, deadlock, timeout --------------------------------------

    def _on_conflict(self, client, conflict):
        locks = self.engine.lock_manager
        if client.txn.ctx.op_mutated:
            # The operation already changed transaction state; it
            # cannot simply be re-issued, so the transaction aborts
            # and the whole item retries after backoff.
            self._abort(client, "sched.abort.mutated")
            return
        # Only reads happened: park and retry the operation when a
        # blocker releases.  Deadlock check at park time — the new
        # wait edge is the only one that can have closed a cycle.
        locks.start_wait(client.session.sid, conflict.resource, conflict.mode)
        cycle = locks.find_deadlock(client.session.sid)
        if cycle is not None:
            locks.stop_wait(client.session.sid)
            client.deadlocks += 1
            self.obs.inc("sched.deadlock")
            self._abort(client, "sched.abort.deadlock")
            return
        client.state = WAITING
        client.wait_deadline_ns = self.clock.now_ns + self.lock_timeout_ns
        self.obs.inc("sched.wait")

    def _time_out(self, client):
        """A parked client's wait deadline arrived."""
        locks = self.engine.lock_manager
        wait = locks.waiting(client.session.sid)
        if wait is not None and not locks.blockers(
            client.session.sid, wait[0], wait[1]
        ):
            # The blockers vanished without a wake (defensive; wakes
            # normally happen eagerly at release time).
            self._wake(client)
            return
        locks.stop_wait(client.session.sid)
        client.state = READY
        client.wait_deadline_ns = None
        client.timeouts += 1
        self.obs.inc("sched.timeout")
        self._abort(client, "sched.abort.timeout")

    def _abort(self, client, counter):
        """Roll back the client's transaction and schedule the retry."""
        client.txn.rollback()
        client.txn = None
        client.ops = None
        client.aborts += 1
        self.obs.inc("sched.abort")
        self.obs.inc(counter)
        client.retries += 1
        if client.retries > self.max_retries:
            raise RetriesExhausted(
                "client %r exhausted %d retries on item %d"
                % (client.name, self.max_retries, client.item_idx)
            )
        client.total_retries += 1
        self.obs.inc("sched.retry")
        # Deterministic exponential backoff, staggered per client so
        # simultaneous aborters do not collide forever.
        delay = self.retry_backoff_ns * (
            1 << min(client.retries - 1, 8)
        ) + client.index * (self.retry_backoff_ns / 16.0)
        client.ready_at_ns = self.clock.now_ns + delay
        client.state = READY
        self._wake_waiters()

    def _wake_waiters(self):
        """Wake every parked client whose blockers released their locks."""
        locks = self.engine.lock_manager
        for client in self.clients:
            if client.state is not WAITING:
                continue
            wait = locks.waiting(client.session.sid)
            if wait is None or not locks.blockers(
                client.session.sid, wait[0], wait[1]
            ):
                self._wake(client)

    def _wake(self, client):
        self.engine.lock_manager.stop_wait(client.session.sid)
        client.state = READY
        client.wait_deadline_ns = None
        client.ready_at_ns = self.clock.now_ns
        self.obs.inc("sched.wake")

    # -- reporting ---------------------------------------------------------

    def _report(self, start_ns):
        elapsed_ns = self.clock.now_ns - start_ns
        commits = sum(c.commits for c in self.clients)
        return {
            "scheme": self.engine.scheme,
            "clients": len(self.clients),
            "simulated_ns": self.clock.now_ns,
            "elapsed_ns": elapsed_ns,
            "commits": commits,
            "aborts": sum(c.aborts for c in self.clients),
            "deadlocks": sum(c.deadlocks for c in self.clients),
            "timeouts": sum(c.timeouts for c in self.clients),
            "retries": sum(c.total_retries for c in self.clients),
            "steps": sum(c.steps for c in self.clients),
            "throughput_tps": (
                commits / (elapsed_ns / 1e9) if elapsed_ns else 0.0
            ),
            "commit_order": list(self.commit_order),
            "per_client": [c.summary() for c in self.clients],
        }


__all__ = ["Scheduler", "SchedulerError", "RetriesExhausted", "DeadlockError"]
